package evalharness

import (
	"fmt"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
)

// fleetScale is the default stack-sample volume per step, the harness's
// stand-in for "the whole fleet is profiled": at p ≈ 1% gCPU the binomial
// noise floor is sqrt(p(1-p)/n) ≈ 4.5e-6, low enough that even a 0.002%
// injection is a few sigma — the paper's point that tiny regressions only
// become visible with fleet-scale aggregation (§2, Figures 2-3).
const fleetScale = 5e8

// scenarioTree builds the harness's standard call tree with the injection
// target at the given depth (1-3). The target always starts at ~1% gCPU
// (the paper's "non-trivial subroutine" scale); its ancestors form the
// chain root -> outer -> inner so depth sweeps exercise detection on
// leaves and on mid-tree subroutines alike.
//
// Every node name is prefixed with the scenario's slug so subroutines are
// globally unique across the suite. Scenarios are separate services with
// unrelated code; reusing one subroutine name everywhere would make
// PairwiseDedup's text-similarity and stack-overlap features legitimately
// merge distinct injected regressions into a single cross-service group,
// which is correct pipeline behavior but wrong ground truth.
func scenarioTree(slug string, depth int) (*fleet.Tree, string, error) {
	target := &fleet.Node{Name: slug + "hot", SelfWeight: 1}
	stage2 := &fleet.Node{Name: slug + "inner", SelfWeight: 24}
	stage1 := &fleet.Node{Name: slug + "outer", SelfWeight: 24}
	root := &fleet.Node{Name: slug + "main", SelfWeight: 2}
	filler := &fleet.Node{Name: slug + "steady", SelfWeight: 49}
	switch depth {
	case 1:
		root.Children = []*fleet.Node{target, stage1, filler}
		stage1.Children = []*fleet.Node{stage2}
	case 2:
		root.Children = []*fleet.Node{stage1, filler}
		stage1.Children = []*fleet.Node{target, stage2}
	default:
		root.Children = []*fleet.Node{stage1, filler}
		stage1.Children = []*fleet.Node{stage2}
		stage2.Children = []*fleet.Node{target}
	}
	tree, err := fleet.NewTree(root)
	if err != nil {
		return nil, "", err
	}
	return tree, target.Name, nil
}

// scaleForDelta returns the self-weight factor that raises the named
// subroutine's gCPU by exactly delta. gCPU is a fraction, so adding self
// weight x raises it to (subtree+x)/(total+x); solving for the target
// delta gives x = total*delta/(1-p-delta).
func scaleForDelta(tree *fleet.Tree, name string, delta float64) (float64, error) {
	n := tree.Node(name)
	if n == nil {
		return 0, fmt.Errorf("evalharness: unknown subroutine %q", name)
	}
	if n.SelfWeight <= 0 {
		return 0, fmt.Errorf("evalharness: %q has no self weight to scale", name)
	}
	p := tree.GCPU(name)
	if p+delta >= 1 {
		return 0, fmt.Errorf("evalharness: delta %v overflows gCPU from %v", delta, p)
	}
	x := tree.TotalWeight() * delta / (1 - p - delta)
	return 1 + x/n.SelfWeight, nil
}

// baseService is the service configuration the scenarios share; noise
// levels follow the fleet simulator's production-shaped defaults.
func baseService(name string, env Env, tree *fleet.Tree, samples float64, emit []string) fleet.Config {
	return fleet.Config{
		Name: name, Servers: 50000, Step: env.Step,
		SamplesPerStep:  samples,
		BaseCPU:         0.5, CPUNoise: 0.05,
		BaseThroughput:  2e5, ThroughputNoise: 400,
		Tree:            tree,
		Seed:            env.Seed,
		EmitSubroutines: emit,
	}
}

// StepRegression injects a persistent step of the given gCPU delta into
// the target subroutine at env.Start+onset, recording the causing change
// so root-cause ranking can be scored. samples controls the profiling
// volume (fleet size proxy); depth places the target in the call tree.
func StepRegression(name, slug string, delta float64, depth int, onset time.Duration, samples float64) Scenario {
	return Scenario{Name: name, Class: ClassRegression,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, depth)
			if err != nil {
				return nil, nil, err
			}
			factor, err := scaleForDelta(tree, target, delta)
			if err != nil {
				return nil, nil, err
			}
			svc, err := fleet.NewService(baseService(name, env, tree, samples, []string{target}))
			if err != nil {
				return nil, nil, err
			}
			at := env.Start.Add(onset)
			changeID := name + "-change"
			svc.ScheduleChange(fleet.ScheduledChange{
				At:     at,
				Effect: func(t *fleet.Tree) error { return t.ScaleSelfWeight(target, factor) },
				Record: &changelog.Change{ID: changeID,
					Title:       "slow down " + target,
					Subroutines: []string{target}},
			})
			return svc, []Label{{
				Scenario: name, Class: ClassRegression, Service: name,
				Entities: pathEntities(tree, target),
				Onset:    at, Magnitude: delta, Expect: true,
				ChangeID: changeID, AffectedSeries: 1,
			}}, nil
		}}
}

// CorrelatedDuplicates injects one regression that visibly moves several
// series at once — the target plus its enclosing subroutines all emit gCPU
// — so the deduplication stages must collapse the event to one report.
func CorrelatedDuplicates(name, slug string, delta float64, onset time.Duration) Scenario {
	return Scenario{Name: name, Class: ClassDuplicate,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, 3)
			if err != nil {
				return nil, nil, err
			}
			factor, err := scaleForDelta(tree, target, delta)
			if err != nil {
				return nil, nil, err
			}
			emit := []string{target, slug + "inner", slug + "outer"}
			svc, err := fleet.NewService(baseService(name, env, tree, fleetScale, emit))
			if err != nil {
				return nil, nil, err
			}
			at := env.Start.Add(onset)
			changeID := name + "-change"
			svc.ScheduleChange(fleet.ScheduledChange{
				At:     at,
				Effect: func(t *fleet.Tree) error { return t.ScaleSelfWeight(target, factor) },
				Record: &changelog.Change{ID: changeID,
					Title:       "regress " + target + " under its enclosing stages",
					Subroutines: []string{target}},
			})
			return svc, []Label{{
				Scenario: name, Class: ClassDuplicate, Service: name,
				Entities: pathEntities(tree, target),
				Onset:    at, Magnitude: delta, Expect: true,
				ChangeID: changeID, AffectedSeries: len(emit),
			}}, nil
		}}
}

// TransientIssue schedules a production issue (load spike, maintenance,
// rolling update, ...) of the given duration; the issue perturbs the
// service-level metrics and fully recovers, so the went-away detector must
// suppress it.
func TransientIssue(name, slug string, typ fleet.IssueType, onset, dur time.Duration) Scenario {
	return Scenario{Name: name, Class: ClassTransient,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, 2)
			if err != nil {
				return nil, nil, err
			}
			svc, err := fleet.NewService(baseService(name, env, tree, fleetScale, []string{target}))
			if err != nil {
				return nil, nil, err
			}
			at := env.Start.Add(onset)
			svc.ScheduleIssue(fleet.DefaultIssue(typ, at, dur))
			return svc, []Label{{
				Scenario: name, Class: ClassTransient, Service: name,
				Onset: at, Expect: false,
			}}, nil
		}}
}

// TransientGCPU injects a gCPU step that reverts after dur — a transient
// in the subroutine domain (a bad deploy rolled back), which the
// went-away detector must also suppress.
func TransientGCPU(name, slug string, delta float64, onset, dur time.Duration) Scenario {
	return Scenario{Name: name, Class: ClassTransient,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, 2)
			if err != nil {
				return nil, nil, err
			}
			factor, err := scaleForDelta(tree, target, delta)
			if err != nil {
				return nil, nil, err
			}
			svc, err := fleet.NewService(baseService(name, env, tree, fleetScale, []string{target}))
			if err != nil {
				return nil, nil, err
			}
			at := env.Start.Add(onset)
			svc.ScheduleChange(fleet.ScheduledChange{At: at,
				Effect: func(t *fleet.Tree) error { return t.ScaleSelfWeight(target, factor) }})
			svc.ScheduleChange(fleet.ScheduledChange{At: at.Add(dur),
				Effect: func(t *fleet.Tree) error { return t.ScaleSelfWeight(target, 1/factor) }})
			return svc, []Label{{
				Scenario: name, Class: ClassTransient, Service: name,
				Onset: at, Expect: false,
			}}, nil
		}}
}

// CostShift moves self weight between two subroutines of the same class
// at onset — total cost is unchanged, so cost-shift analysis over the
// class (and commit) domains must suppress the apparent regression in the
// receiving subroutine (paper Figure 1(b)).
func CostShift(name, slug string, amount float64, onset time.Duration) Scenario {
	return Scenario{Name: name, Class: ClassCostShift,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			donor := &fleet.Node{Name: slug + "cacheget", Class: slug + "Cache", SelfWeight: 1.6}
			recipient := &fleet.Node{Name: slug + "cacheput", Class: slug + "Cache", SelfWeight: 0.9}
			root := &fleet.Node{Name: slug + "main", SelfWeight: 2, Children: []*fleet.Node{
				{Name: slug + "outer", SelfWeight: 46, Children: []*fleet.Node{donor, recipient}},
				{Name: slug + "steady", SelfWeight: 49.5},
			}}
			tree, err := fleet.NewTree(root)
			if err != nil {
				return nil, nil, err
			}
			shift := amount * tree.TotalWeight()
			svc, err := fleet.NewService(baseService(name, env, tree, fleetScale,
				[]string{donor.Name, recipient.Name}))
			if err != nil {
				return nil, nil, err
			}
			at := env.Start.Add(onset)
			svc.ScheduleChange(fleet.ScheduledChange{
				At:     at,
				Effect: func(t *fleet.Tree) error { return t.ShiftWeight(donor.Name, recipient.Name, shift) },
				Record: &changelog.Change{ID: name + "-refactor",
					Title:       "move work from " + donor.Name + " into " + recipient.Name,
					Subroutines: []string{donor.Name, recipient.Name}},
			})
			return svc, []Label{{
				Scenario: name, Class: ClassCostShift, Service: name,
				Onset: at, Expect: false,
			}}, nil
		}}
}

// Seasonal runs a service with a pronounced diurnal pattern and no
// injected change; the STL-based seasonality filter must keep its rising
// phases out of the reports.
func Seasonal(name, slug string, amp float64, period time.Duration) Scenario {
	return Scenario{Name: name, Class: ClassSeasonal,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, 2)
			if err != nil {
				return nil, nil, err
			}
			cfg := baseService(name, env, tree, fleetScale, []string{target})
			cfg.SeasonalAmp = amp
			cfg.SeasonalPeriod = period
			svc, err := fleet.NewService(cfg)
			if err != nil {
				return nil, nil, err
			}
			return svc, []Label{{
				Scenario: name, Class: ClassSeasonal, Service: name,
				Onset: env.Start, Expect: false,
			}}, nil
		}}
}

// Control is a clean service with nothing injected; any report on it is a
// false positive.
func Control(name, slug string) Scenario {
	return Scenario{Name: name, Class: ClassControl,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, 2)
			if err != nil {
				return nil, nil, err
			}
			svc, err := fleet.NewService(baseService(name, env, tree, fleetScale, []string{target}))
			if err != nil {
				return nil, nil, err
			}
			return svc, []Label{{
				Scenario: name, Class: ClassControl, Service: name,
				Onset: env.Start, Expect: false,
			}}, nil
		}}
}

// DefaultScenarios is the standard labeled workload: injected step
// regressions swept across magnitude (0.002%-1% gCPU), subroutine depth,
// and onset time, plus the four labeled-negative families. Onsets are
// staggered so concurrent scenarios cannot merge in cross-service
// deduplication.
func DefaultScenarios() []Scenario {
	const m = time.Minute
	return []Scenario{
		// Magnitude sweep at fleet scale, mid-window onset, depth 3.
		StepRegression("reg-0.002pct", "alder", 0.00002, 3, 780*m, fleetScale),
		StepRegression("reg-0.005pct", "birch", 0.00005, 3, 793*m, fleetScale),
		StepRegression("reg-0.02pct", "cedar", 0.0002, 3, 806*m, fleetScale),
		StepRegression("reg-0.05pct", "doyen", 0.0005, 3, 819*m, fleetScale),
		StepRegression("reg-0.2pct", "ember", 0.002, 3, 832*m, fleetScale),
		StepRegression("reg-1pct", "fjord", 0.01, 3, 845*m, fleetScale),
		// Below fleet scale the smallest magnitudes sit inside the noise
		// floor; these two chart the detection floor from the labeled side.
		StepRegression("reg-0.005pct-smallfleet", "gable", 0.00005, 3, 858*m, 1e6),
		StepRegression("reg-0.2pct-smallfleet", "heron", 0.002, 3, 871*m, 1e6),
		// Subroutine depth sweep.
		StepRegression("reg-depth1", "ivory", 0.001, 1, 884*m, fleetScale),
		StepRegression("reg-depth2", "jumbo", 0.001, 2, 897*m, fleetScale),
		// Onset sweep: just after warmup, and late in the run.
		StepRegression("reg-early", "kudos", 0.001, 3, 700*m, fleetScale),
		StepRegression("reg-late", "lemur", 0.001, 3, 950*m, fleetScale),
		// One underlying event moving several series at once.
		CorrelatedDuplicates("dup-chain", "maple", 0.002, 760*m),
		CorrelatedDuplicates("dup-chain-late", "nylon", 0.004, 910*m),
		// Labeled negatives.
		TransientIssue("transient-loadspike", "ochre", fleet.LoadSpike, 770*m, 45*m),
		TransientIssue("transient-maintenance", "piano", fleet.Maintenance, 810*m, 40*m),
		TransientIssue("transient-rollout", "quill", fleet.RollingUpdate, 860*m, 45*m),
		TransientGCPU("transient-gcpu-small", "rosin", 0.001, 790*m, 40*m),
		TransientGCPU("transient-gcpu-large", "sable", 0.005, 840*m, 45*m),
		CostShift("costshift-cache", "tulip", 0.004, 800*m),
		CostShift("costshift-cache-large", "umbra", 0.008, 870*m),
		// Periods short enough that the 660-minute full window holds several
		// complete cycles, which the STL period detector needs.
		Seasonal("seasonal-2h", "vigor", 0.08, 2*time.Hour),
		Seasonal("seasonal-90m", "wharf", 0.1, 90*time.Minute),
		Control("control-a", "xenon"),
		Control("control-b", "yucca"),
		// Population mix shifts: aggregates move, per-stratum behavior does
		// not. Pure shifts must come out as population-shift verdicts...
		PopulationMixShift("popshift-rollout", "zesty", generationRollout(1.3), 707*m, 90*m),
		PopulationMixShift("popshift-failover", "onyx", regionalFailover, 721*m, 0),
		PopulationMixShift("popshift-migration", "topaz", classMigration, 917*m, 60*m),
		PopulationMixShift("popshift-rollout-steep", "raven", generationRollout(1.5), 735*m, 120*m),
		PopulationMixShift("popshift-multiway", "sepia", multiwayRebalance, 929*m, 0),
		// ...while a real regression riding on a shift must still report:
		// simultaneous onset (hardest), then staggered. The staggered
		// shift's ramp ends before minute 760 so no 200-minute analysis
		// window straddles both the ramp and the late regression.
		MixShiftWithRegression("popshift-with-regression", "wren", regionalFailover,
			748*m, 0, 0.001, 748*m),
		MixShiftWithRegression("popshift-then-regression", "coral", generationRollout(1.35),
			685*m, 60*m, 0.001, 926*m),
	}
}
