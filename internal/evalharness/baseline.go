package evalharness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the committed accuracy floor (EVAL_baseline.json): the
// minimum detection quality every change must preserve. The gate compares
// a fresh Report against it and fails on any violated floor — the
// accuracy counterpart of the benchdiff performance gate.
type Baseline struct {
	// Precision is the minimum overall report precision.
	Precision float64 `json:"precision"`
	// RecallFleetScale is the minimum recall over injected regressions
	// with magnitude >= MinMagnitude (the gate's headline: regressions of
	// at least 0.05% gCPU at fleet scale must be caught).
	RecallFleetScale float64 `json:"recall_fleet_scale"`
	MinMagnitude     float64 `json:"min_magnitude"`
	// Suppression is the minimum per-class suppression rate for the
	// labeled-negative classes.
	Suppression map[Class]float64 `json:"suppression"`
	// TopKRootCause is the minimum top-k root-cause hit rate (0 disables).
	TopKRootCause float64 `json:"topk_root_cause,omitempty"`
	// DedupCollapse is the minimum deduplication collapse rate on
	// correlated-duplicate scenarios (0 disables).
	DedupCollapse float64 `json:"dedup_collapse,omitempty"`
	// MaxMeanTimeToDetectMinutes bounds the mean time-to-detect across
	// detected regressions (0 disables).
	MaxMeanTimeToDetectMinutes float64 `json:"max_mean_time_to_detect_minutes,omitempty"`
}

// ReadBaseline loads a committed baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("evalharness: parsing %s: %w", path, err)
	}
	return &b, nil
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Violation is one floor a gate found violated. The structured fields
// (which floor, measured vs limit, signed distance) let CI logs show a
// per-floor diff instead of one aggregate failure line; Detail carries
// the human sentence.
type Violation struct {
	// Floor names the violated floor (e.g. "precision", "transient
	// suppression").
	Floor string `json:"floor"`
	// Measured is the report's value; Limit the committed floor (or
	// ceiling); Diff the signed distance from the allowed side, always
	// negative by the amount of the violation.
	Measured float64 `json:"measured"`
	Limit    float64 `json:"limit"`
	Diff     float64 `json:"diff"`
	// Detail is the full human-readable sentence.
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Detail }

// floorViolation builds a Violation for a measured value that fell below
// its floor; ceilingViolation for one that rose above its ceiling.
func floorViolation(name string, measured, floor float64, format string, args ...any) Violation {
	return Violation{Floor: name, Measured: measured, Limit: floor,
		Diff: measured - floor, Detail: fmt.Sprintf(format, args...)}
}

func ceilingViolation(name string, measured, ceiling float64, format string, args ...any) Violation {
	return Violation{Floor: name, Measured: measured, Limit: ceiling,
		Diff: ceiling - measured, Detail: fmt.Sprintf(format, args...)}
}

// Check returns one violation per floor the report fails to clear; empty
// means the gate passes.
func (b *Baseline) Check(r *Report) []Violation {
	var bad []Violation
	if r.Precision < b.Precision {
		bad = append(bad, floorViolation("precision", r.Precision, b.Precision,
			"precision %.3f below floor %.3f", r.Precision, b.Precision))
	}
	recall, found := r.Recall, b.MinMagnitude <= 0
	if !found {
		for _, band := range r.RecallByMagnitude {
			if band.MinMagnitude == b.MinMagnitude {
				recall, found = band.Recall, true
				break
			}
		}
	}
	if !found {
		bad = append(bad, Violation{Floor: "recall_fleet_scale",
			Limit: b.RecallFleetScale,
			Detail: fmt.Sprintf("report has no recall band at magnitude >= %g (suite ran with %g)",
				b.MinMagnitude, r.FleetScaleMagnitude)})
	} else if recall < b.RecallFleetScale {
		bad = append(bad, floorViolation("recall_fleet_scale", recall, b.RecallFleetScale,
			"recall %.3f (magnitude >= %g) below floor %.3f",
			recall, b.MinMagnitude, b.RecallFleetScale))
	}
	classes := make([]Class, 0, len(b.Suppression))
	for class := range b.Suppression {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		floor := b.Suppression[class]
		cr := r.Classes[class]
		if cr == nil || cr.Scenarios == 0 {
			bad = append(bad, Violation{Floor: string(class) + " suppression", Limit: floor,
				Detail: fmt.Sprintf("no %s scenarios ran (suppression floor %.2f unverifiable)", class, floor)})
			continue
		}
		if cr.SuppressionRate < floor {
			bad = append(bad, floorViolation(string(class)+" suppression", cr.SuppressionRate, floor,
				"%s suppression %.3f below floor %.3f (leaks: %v)",
				class, cr.SuppressionRate, floor, cr.Leaks))
		}
	}
	if b.TopKRootCause > 0 && r.TopKRootCause < b.TopKRootCause {
		bad = append(bad, floorViolation("topk_root_cause", r.TopKRootCause, b.TopKRootCause,
			"top-%d root-cause rate %.3f below floor %.3f",
			r.TopK, r.TopKRootCause, b.TopKRootCause))
	}
	if b.DedupCollapse > 0 && r.DedupCollapseRate < b.DedupCollapse {
		bad = append(bad, floorViolation("dedup_collapse", r.DedupCollapseRate, b.DedupCollapse,
			"dedup collapse rate %.3f below floor %.3f",
			r.DedupCollapseRate, b.DedupCollapse))
	}
	if b.MaxMeanTimeToDetectMinutes > 0 && r.MeanTimeToDetect > b.MaxMeanTimeToDetectMinutes {
		bad = append(bad, ceilingViolation("mean_time_to_detect", r.MeanTimeToDetect, b.MaxMeanTimeToDetectMinutes,
			"mean time-to-detect %.1f min above ceiling %.1f min",
			r.MeanTimeToDetect, b.MaxMeanTimeToDetectMinutes))
	}
	return bad
}

// BaselineFromReport derives a committed baseline from a measured report,
// backing each floor off by the given relative margin (e.g. 0.05) so
// run-to-run jitter does not trip the gate, while never dropping below
// the repository's hard floors (precision/recall 0.9, suppression 0.8).
func BaselineFromReport(r *Report, margin float64) *Baseline {
	relax := func(v, hard float64) float64 {
		v *= 1 - margin
		if v < hard {
			v = hard
		}
		return v
	}
	b := &Baseline{
		Precision:        relax(r.Precision, 0.9),
		RecallFleetScale: relax(r.RecallFleetScale, 0.9),
		MinMagnitude:     r.FleetScaleMagnitude,
		Suppression:      map[Class]float64{},
		TopKRootCause:    relax(r.TopKRootCause, 0.5),
		DedupCollapse:    relax(r.DedupCollapseRate, 0.5),
	}
	for _, class := range []Class{ClassTransient, ClassCostShift, ClassSeasonal, ClassPopShift, ClassControl} {
		if cr := r.Classes[class]; cr != nil && cr.Scenarios > 0 {
			b.Suppression[class] = relax(cr.SuppressionRate, 0.8)
		}
	}
	return b
}
