package evalharness

import (
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/fleet"
)

// Mix-shift scenarios: the fleet's population composition changes while
// every stratum keeps behaving the same, so the aggregate (fleet-averaged)
// metrics step or ramp without any code regressing — the false-positive
// family the population-shift diagnosis stage exists to suppress. Each
// pure-shift scenario is a labeled negative (ClassPopShift, Expect
// false); the composite scenarios additionally inject a genuine
// per-stratum regression riding on the shift and are labeled positive,
// pinning that the stage does not over-suppress.

// A mixFunc builds a scenario's stratified population: the initial strata
// (tag values prefixed with the scenario slug so they read distinctly in
// reports) and the target fractions the scheduled shift moves to.
type mixFunc func(slug string) ([]fleet.Stratum, []float64)

// PopulationMixShift runs a stratified service whose mix moves to the
// target fractions at env.Start+onset (linearly over ramp when ramp > 0,
// instantly otherwise). Per-stratum behavior never changes, so every
// aggregate movement is pure composition and must come out as a
// population-shift verdict, not a report.
func PopulationMixShift(name, slug string, mix mixFunc, onset, ramp time.Duration) Scenario {
	return Scenario{Name: name, Class: ClassPopShift,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, 2)
			if err != nil {
				return nil, nil, err
			}
			strata, fractions := mix(slug)
			cfg := baseService(name, env, tree, fleetScale, []string{target})
			at := env.Start.Add(onset)
			cfg.Population = &fleet.Population{
				Strata: strata,
				Shifts: []fleet.MixShift{{At: at, Ramp: ramp, Fractions: fractions}},
			}
			svc, err := fleet.NewService(cfg)
			if err != nil {
				return nil, nil, err
			}
			return svc, []Label{{
				Scenario: name, Class: ClassPopShift, Service: name,
				Onset: at, Expect: false,
			}}, nil
		}}
}

// MixShiftWithRegression overlays a genuine step regression (a real
// per-stratum behavior change of the given gCPU delta) on a population
// mix shift. The pop-shift stage must suppress the mix-induced movement
// yet still report the injected regression: the bias test sees the
// behavior term move in every stratum. The shift and the regression may
// coincide (the hardest case) or be staggered.
func MixShiftWithRegression(name, slug string, mix mixFunc,
	shiftOnset, ramp time.Duration, delta float64, regressionOnset time.Duration) Scenario {
	return Scenario{Name: name, Class: ClassRegression,
		Build: func(env Env) (*fleet.Service, []Label, error) {
			tree, target, err := scenarioTree(slug, 3)
			if err != nil {
				return nil, nil, err
			}
			factor, err := scaleForDelta(tree, target, delta)
			if err != nil {
				return nil, nil, err
			}
			strata, fractions := mix(slug)
			cfg := baseService(name, env, tree, fleetScale, []string{target})
			cfg.Population = &fleet.Population{
				Strata: strata,
				Shifts: []fleet.MixShift{{At: env.Start.Add(shiftOnset), Ramp: ramp, Fractions: fractions}},
			}
			svc, err := fleet.NewService(cfg)
			if err != nil {
				return nil, nil, err
			}
			at := env.Start.Add(regressionOnset)
			changeID := name + "-change"
			svc.ScheduleChange(fleet.ScheduledChange{
				At:     at,
				Effect: func(t *fleet.Tree) error { return t.ScaleSelfWeight(target, factor) },
				Record: &changelog.Change{ID: changeID,
					Title:       "slow down " + target + " during fleet rebalance",
					Subroutines: []string{target}},
			})
			return svc, []Label{{
				Scenario: name, Class: ClassRegression, Service: name,
				Entities: pathEntities(tree, target),
				Onset:    at, Magnitude: delta, Expect: true,
				ChangeID: changeID, AffectedSeries: 1,
			}}, nil
		}}
}

// generationRollout is a new-hardware rollout: denser hosts run the same
// code at newCost per-server cost, and the rollout moves most of the
// fleet onto them (0.9/0.1 to 0.3/0.7).
func generationRollout(newCost float64) mixFunc {
	return func(slug string) ([]fleet.Stratum, []float64) {
		return []fleet.Stratum{
			{Generation: slug + "G1", Fraction: 0.9, CostFactor: 1.0},
			{Generation: slug + "G2", Fraction: 0.1, CostFactor: newCost},
		}, []float64{0.3, 0.7}
	}
}

// regionalFailover drains a cheap region into a more expensive one in a
// single step (disaster-recovery drill: no ramp).
func regionalFailover(slug string) ([]fleet.Stratum, []float64) {
	return []fleet.Stratum{
		{Region: slug + "east", Fraction: 0.8, CostFactor: 1.0},
		{Region: slug + "west", Fraction: 0.2, CostFactor: 1.25},
	}, []float64{0.35, 0.65}
}

// classMigration moves traffic from a cheap batch class to a hotter
// interactive class.
func classMigration(slug string) ([]fleet.Stratum, []float64) {
	return []fleet.Stratum{
		{TrafficClass: slug + "bulk", Fraction: 0.7, CostFactor: 0.9},
		{TrafficClass: slug + "live", Fraction: 0.3, CostFactor: 1.2},
	}, []float64{0.3, 0.7}
}

// multiwayRebalance crosses generation and region features: three strata
// redistribute at once, exercising the diagnosis beyond the two-stratum
// case.
func multiwayRebalance(slug string) ([]fleet.Stratum, []float64) {
	return []fleet.Stratum{
		{Generation: slug + "G1", Region: slug + "east", Fraction: 0.5, CostFactor: 1.0},
		{Generation: slug + "G1", Region: slug + "west", Fraction: 0.3, CostFactor: 1.1},
		{Generation: slug + "G2", Region: slug + "east", Fraction: 0.2, CostFactor: 1.4},
	}, []float64{0.2, 0.25, 0.55}
}
