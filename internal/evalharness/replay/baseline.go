package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"fbdetect/internal/evalharness"
)

// FamilyFloors are one detector family's committed accuracy floors.
type FamilyFloors struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// MaxMeanTTDRuns bounds the mean detection lag in runs (0 disables).
	MaxMeanTTDRuns float64 `json:"max_mean_ttd_runs,omitempty"`
	// MinAttributed is the minimum number of true positives that must
	// carry a commit attribution (0 disables; only meaningful when the
	// dataset ships a push log).
	MinAttributed int `json:"min_attributed,omitempty"`
}

// Baseline is the committed replay floor set (REPLAY_baseline.json),
// keyed by detector family. Families present in the baseline but absent
// from the report fail the gate; families in the report but not the
// baseline are informational only.
type Baseline struct {
	// MinValidRegressions guards the dataset itself: the gate is
	// meaningless if the committed sample lost its positive labels.
	MinValidRegressions int                     `json:"min_valid_regressions"`
	Families            map[string]FamilyFloors `json:"families"`
}

// ReadBaseline loads a committed replay baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("replay: parsing %s: %w", path, err)
	}
	return &b, nil
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Check returns one violation per floor the report fails to clear, in
// deterministic (family, floor) order; empty means the gate passes. The
// violations share evalharness.Violation so fbdetect-eval prints the
// same per-floor diff for both gates.
func (b *Baseline) Check(r *Report) []evalharness.Violation {
	var bad []evalharness.Violation
	if r.ValidRegressions < b.MinValidRegressions {
		bad = append(bad, evalharness.Violation{
			Floor:    "valid_regressions",
			Measured: float64(r.ValidRegressions),
			Limit:    float64(b.MinValidRegressions),
			Diff:     float64(r.ValidRegressions - b.MinValidRegressions),
			Detail: fmt.Sprintf("dataset carries %d valid regression labels, floor %d",
				r.ValidRegressions, b.MinValidRegressions),
		})
	}
	families := make([]string, 0, len(b.Families))
	for name := range b.Families {
		families = append(families, name)
	}
	sort.Strings(families)
	for _, name := range families {
		floors := b.Families[name]
		fam := r.Family(name)
		if fam == nil {
			bad = append(bad, evalharness.Violation{
				Floor: name + ".missing",
				Detail: fmt.Sprintf("family %q in baseline but absent from report (floors unverifiable)",
					name),
			})
			continue
		}
		if fam.Precision < floors.Precision {
			bad = append(bad, evalharness.Violation{
				Floor: name + ".precision", Measured: fam.Precision, Limit: floors.Precision,
				Diff: fam.Precision - floors.Precision,
				Detail: fmt.Sprintf("%s precision %.3f below floor %.3f (tp=%d fp=%d)",
					name, fam.Precision, floors.Precision, fam.TruePositives, fam.FalsePositives),
			})
		}
		if fam.Recall < floors.Recall {
			bad = append(bad, evalharness.Violation{
				Floor: name + ".recall", Measured: fam.Recall, Limit: floors.Recall,
				Diff: fam.Recall - floors.Recall,
				Detail: fmt.Sprintf("%s recall %.3f below floor %.3f (tp=%d fn=%d)",
					name, fam.Recall, floors.Recall, fam.TruePositives, fam.FalseNegatives),
			})
		}
		if floors.MaxMeanTTDRuns > 0 && fam.MeanTTDRuns > floors.MaxMeanTTDRuns {
			bad = append(bad, evalharness.Violation{
				Floor: name + ".mean_ttd_runs", Measured: fam.MeanTTDRuns, Limit: floors.MaxMeanTTDRuns,
				Diff: floors.MaxMeanTTDRuns - fam.MeanTTDRuns,
				Detail: fmt.Sprintf("%s mean time-to-detect %.2f runs above ceiling %.2f",
					name, fam.MeanTTDRuns, floors.MaxMeanTTDRuns),
			})
		}
		if floors.MinAttributed > 0 && fam.Attributed < floors.MinAttributed {
			bad = append(bad, evalharness.Violation{
				Floor:    name + ".attributed",
				Measured: float64(fam.Attributed), Limit: float64(floors.MinAttributed),
				Diff: float64(fam.Attributed - floors.MinAttributed),
				Detail: fmt.Sprintf("%s attributed %d true positives to commits, floor %d",
					name, fam.Attributed, floors.MinAttributed),
			})
		}
	}
	return bad
}

// BaselineFromReport derives a committed baseline from a measured
// report, backing precision/recall floors off by the given relative
// margin and the TTD ceiling up by it, so run-to-run jitter does not
// trip the gate.
func BaselineFromReport(r *Report, margin float64) *Baseline {
	b := &Baseline{
		MinValidRegressions: r.ValidRegressions,
		Families:            map[string]FamilyFloors{},
	}
	for _, fam := range r.Families {
		f := FamilyFloors{
			Precision: fam.Precision * (1 - margin),
			Recall:    fam.Recall * (1 - margin),
		}
		if fam.MeanTTDRuns > 0 {
			f.MaxMeanTTDRuns = fam.MeanTTDRuns * (1 + margin)
		}
		if fam.Attributed > 0 {
			f.MinAttributed = fam.Attributed
		}
		b.Families[fam.Family] = f
	}
	return b
}

// WriteReport writes the replay report as indented JSON
// (REPLAY_report.json).
func WriteReport(r *Report, path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
