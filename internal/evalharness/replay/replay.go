// Package replay scores FBDetect's batch detector families against the
// Mozilla performance-alerts data artifact (arXiv:2503.16332) — the
// repository's first non-synthetic ground truth. The artifact pairs
// per-signature benchmark measurement series (one value per push a run
// landed on) with the alerts Mozilla's sheriffs triaged, each labeled as
// a valid regression, an improvement, or an invalid (noise) alert.
//
// The package parses the artifact's series (CSV or JSON), alerts (JSON
// or CSV), and optional push-log files into a Dataset, replays every
// series through each detector family (E-divisive means, CUSUM binary
// segmentation, DP normal-loss), attributes detected change points to
// candidate commits when a push log is present, and scores
// precision/recall/time-to-detect per family against the labeled alerts
// (REPLAY_report.json). A committed Baseline (REPLAY_baseline.json)
// turns the scores into a CI gate, mirroring the synthetic harness's
// EVAL gate one directory up.
package replay

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"fbdetect/internal/edivisive"
)

// Sample is one benchmark run: the push it measured and the value.
type Sample struct {
	Push  string    `json:"push_id"`
	Time  time.Time `json:"push_timestamp"`
	Value float64   `json:"value"`
}

// Series is one performance signature's commit-indexed history.
type Series struct {
	Signature string   `json:"signature_id"`
	Samples   []Sample `json:"samples"`
}

// Values returns the series values in run order.
func (s Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Value
	}
	return out
}

// Pushes returns the per-sample push IDs in run order.
func (s Series) Pushes() []string {
	out := make([]string, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Push
	}
	return out
}

// Alert is one sheriff-triaged alert from the artifact. Valid
// regressions (IsRegression && Status valid) are the positive labels;
// improvements and invalid alerts are "ignorable": a change point
// matching one counts neither as a hit nor as a false positive, since
// the series really does step there.
type Alert struct {
	ID           int     `json:"id"`
	Signature    string  `json:"signature_id"`
	Push         string  `json:"push_id"`
	IsRegression bool    `json:"is_regression"`
	Status       string  `json:"status,omitempty"`
	AmountPct    float64 `json:"amount_pct,omitempty"`
}

// Valid reports whether the alert was sheriff-confirmed (the artifact's
// untriaged/invalid/backed-out statuses all mean "not a real
// regression"). An empty status counts as valid.
func (a Alert) Valid() bool {
	switch strings.ToLower(a.Status) {
	case "", "valid", "acknowledged", "confirmed", "fixed":
		return true
	}
	return false
}

// Dataset is one parsed replay corpus.
type Dataset struct {
	Name   string
	Series []Series // sorted by signature
	Alerts []Alert
	Pushes []edivisive.Push // optional push log for commit attribution
}

// SeriesBySignature returns the signature's series, or nil.
func (d *Dataset) SeriesBySignature(sig string) *Series {
	for i := range d.Series {
		if d.Series[i].Signature == sig {
			return &d.Series[i]
		}
	}
	return nil
}

// Samples returns the total sample count across series.
func (d *Dataset) Samples() int {
	n := 0
	for _, s := range d.Series {
		n += len(s.Samples)
	}
	return n
}

// ReadDataset loads a replay dataset directory:
//
//	dir/
//	  *.csv            series measurements (except alerts.csv)
//	  series*.json     series measurements, JSON form
//	  series/*.{csv,json}  same, in a subdirectory
//	  alerts.json|alerts.csv   labeled alerts
//	  pushes.json      optional push log (enables commit attribution)
func ReadDataset(dir string) (*Dataset, error) {
	ds := &Dataset{Name: filepath.Base(filepath.Clean(dir))}
	var seriesFiles []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && name == "series":
			subs, err := os.ReadDir(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			for _, s := range subs {
				if !s.IsDir() && (strings.HasSuffix(s.Name(), ".csv") || strings.HasSuffix(s.Name(), ".json")) {
					seriesFiles = append(seriesFiles, filepath.Join(dir, name, s.Name()))
				}
			}
		case name == "alerts.json" || name == "alerts.csv" || name == "pushes.json":
			// handled below
		case strings.HasSuffix(name, ".csv"), strings.HasPrefix(name, "series") && strings.HasSuffix(name, ".json"):
			seriesFiles = append(seriesFiles, filepath.Join(dir, name))
		}
	}
	if len(seriesFiles) == 0 {
		return nil, fmt.Errorf("replay: no series files in %s", dir)
	}
	sort.Strings(seriesFiles)
	merged := map[string]*Series{}
	for _, path := range seriesFiles {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		var series []Series
		if strings.HasSuffix(path, ".json") {
			series, err = ParseSeriesJSON(f)
		} else {
			series, err = ParseSeriesCSV(f)
		}
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("replay: %s: %w", path, err)
		}
		for _, s := range series {
			if prev, ok := merged[s.Signature]; ok {
				prev.Samples = append(prev.Samples, s.Samples...)
			} else {
				cp := s
				merged[s.Signature] = &cp
			}
		}
	}
	for _, s := range merged {
		sortSamples(s.Samples)
		ds.Series = append(ds.Series, *s)
	}
	sort.Slice(ds.Series, func(i, j int) bool { return ds.Series[i].Signature < ds.Series[j].Signature })

	if f, err := os.Open(filepath.Join(dir, "alerts.json")); err == nil {
		ds.Alerts, err = ParseAlertsJSON(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("replay: alerts.json: %w", err)
		}
	} else if f, err := os.Open(filepath.Join(dir, "alerts.csv")); err == nil {
		ds.Alerts, err = ParseAlertsCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("replay: alerts.csv: %w", err)
		}
	}
	if f, err := os.Open(filepath.Join(dir, "pushes.json")); err == nil {
		ds.Pushes, err = ParsePushesJSON(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("replay: pushes.json: %w", err)
		}
	}
	return ds, nil
}

func sortSamples(samples []Sample) {
	sort.SliceStable(samples, func(i, j int) bool {
		return samples[i].Time.Before(samples[j].Time)
	})
}

// maxRecords bounds parsed rows so a hostile input cannot balloon memory
// (the artifact's real files are far smaller per signature).
const maxRecords = 1 << 20

// ParseSeriesCSV parses measurement rows. The header must name at least
// push and value columns; recognized names (case-insensitive):
//
//	signature_id | signature          series key ("" allowed: single-series file)
//	push_id | revision | push         push the run measured
//	push_timestamp | timestamp | time unix seconds (int/float) or RFC3339
//	value                             the measurement (must be finite)
//
// Rows are grouped by signature and sorted by timestamp.
func ParseSeriesCSV(r io.Reader) ([]Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.ToLower(strings.TrimSpace(h))] = i
	}
	pick := func(names ...string) int {
		for _, n := range names {
			if i, ok := col[n]; ok {
				return i
			}
		}
		return -1
	}
	sigCol := pick("signature_id", "signature")
	pushCol := pick("push_id", "revision", "push")
	timeCol := pick("push_timestamp", "timestamp", "time")
	valCol := pick("value")
	if pushCol < 0 || valCol < 0 {
		return nil, fmt.Errorf("header %v: need push_id and value columns", header)
	}

	bySig := map[string]*Series{}
	var order []string
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if len(rec) > 0 && len(rec) <= maxIndex(sigCol, pushCol, timeCol, valCol) {
			return nil, fmt.Errorf("line %d: %d fields, want at least %d", line, len(rec), maxIndex(sigCol, pushCol, timeCol, valCol)+1)
		}
		sig := ""
		if sigCol >= 0 {
			sig = strings.TrimSpace(rec[sigCol])
		}
		push := strings.TrimSpace(rec[pushCol])
		if push == "" {
			return nil, fmt.Errorf("line %d: empty push id", line)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rec[valCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: value: %w", line, err)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, fmt.Errorf("line %d: non-finite value", line)
		}
		var ts time.Time
		if timeCol >= 0 {
			ts, err = parseTimestamp(strings.TrimSpace(rec[timeCol]))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		}
		s, ok := bySig[sig]
		if !ok {
			s = &Series{Signature: sig}
			bySig[sig] = s
			order = append(order, sig)
			if len(order) > maxRecords {
				return nil, fmt.Errorf("too many signatures")
			}
		}
		if len(s.Samples) >= maxRecords {
			return nil, fmt.Errorf("signature %q: too many samples", sig)
		}
		s.Samples = append(s.Samples, Sample{Push: push, Time: ts, Value: val})
	}
	out := make([]Series, 0, len(order))
	for _, sig := range order {
		s := bySig[sig]
		sortSamples(s.Samples)
		out = append(out, *s)
	}
	return out, nil
}

func maxIndex(idx ...int) int {
	m := 0
	for _, i := range idx {
		if i > m {
			m = i
		}
	}
	return m
}

// parseTimestamp accepts unix seconds (integer or fractional) or
// RFC3339.
func parseTimestamp(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsNaN(secs) || math.IsInf(secs, 0) || math.Abs(secs) > 1e15 {
			return time.Time{}, fmt.Errorf("timestamp %q out of range", s)
		}
		sec := int64(secs)
		nsec := int64((secs - float64(sec)) * 1e9)
		return time.Unix(sec, nsec).UTC(), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("timestamp %q: want unix seconds or RFC3339", s)
	}
	return t.UTC(), nil
}

// flexID decodes a JSON string or number into its string form — the
// artifact uses numeric signature/push ids in some exports and string
// revisions in others. JSON null (or an absent field) leaves it empty.
type flexID string

func (f *flexID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		*f = flexID(s)
		return nil
	}
	var n json.Number
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*f = flexID(n.String())
	return nil
}

func (f flexID) String() string { return string(f) }

// jsonSample is the JSON measurement row shape (series*.json files).
type jsonSample struct {
	Signature flexID   `json:"signature_id"`
	Push      flexID   `json:"push_id"`
	Timestamp flexID   `json:"push_timestamp"`
	Value     *float64 `json:"value"`
}

// ParseSeriesJSON parses measurements as a JSON array of rows (or a
// {"measurements": [...]} wrapper) with the same fields as the CSV form.
func ParseSeriesJSON(r io.Reader) ([]Series, error) {
	data, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, err
	}
	var rows []jsonSample
	if err := json.Unmarshal(data, &rows); err != nil {
		var wrapper struct {
			Measurements []jsonSample `json:"measurements"`
		}
		if werr := json.Unmarshal(data, &wrapper); werr != nil || wrapper.Measurements == nil {
			return nil, fmt.Errorf("want a JSON array of measurements: %w", err)
		}
		rows = wrapper.Measurements
	}
	if len(rows) > maxRecords {
		return nil, fmt.Errorf("too many measurements")
	}
	bySig := map[string]*Series{}
	var order []string
	for i, row := range rows {
		if row.Value == nil {
			return nil, fmt.Errorf("measurement %d: missing value", i)
		}
		if math.IsNaN(*row.Value) || math.IsInf(*row.Value, 0) {
			return nil, fmt.Errorf("measurement %d: non-finite value", i)
		}
		push := row.Push.String()
		if push == "" || push == "null" {
			return nil, fmt.Errorf("measurement %d: missing push_id", i)
		}
		var ts time.Time
		if t := row.Timestamp.String(); t != "" && t != "null" {
			ts, err = parseTimestamp(t)
			if err != nil {
				return nil, fmt.Errorf("measurement %d: %w", i, err)
			}
		}
		sig := row.Signature.String()
		if sig == "null" {
			sig = ""
		}
		s, ok := bySig[sig]
		if !ok {
			s = &Series{Signature: sig}
			bySig[sig] = s
			order = append(order, sig)
		}
		s.Samples = append(s.Samples, Sample{Push: push, Time: ts, Value: *row.Value})
	}
	out := make([]Series, 0, len(order))
	for _, sig := range order {
		s := bySig[sig]
		sortSamples(s.Samples)
		out = append(out, *s)
	}
	return out, nil
}

// jsonAlert mirrors the artifact's alert records; numeric and string ids
// both appear in the wild.
type jsonAlert struct {
	ID           flexID `json:"id"`
	Signature    flexID `json:"signature_id"`
	Push         flexID `json:"push_id"`
	IsRegression *bool       `json:"is_regression"`
	Status       string      `json:"status"`
	AmountPct    float64     `json:"amount_pct"`
}

func (a jsonAlert) toAlert(i int) (Alert, error) {
	out := Alert{
		Signature: a.Signature.String(),
		Push:      a.Push.String(),
		Status:    a.Status,
		AmountPct: a.AmountPct,
	}
	if id, err := strconv.Atoi(a.ID.String()); err == nil {
		out.ID = id
	}
	if out.Signature == "" || out.Signature == "null" {
		return out, fmt.Errorf("alert %d: missing signature_id", i)
	}
	if out.Push == "" || out.Push == "null" {
		return out, fmt.Errorf("alert %d: missing push_id", i)
	}
	if a.IsRegression != nil {
		out.IsRegression = *a.IsRegression
	}
	return out, nil
}

// ParseAlertsJSON parses the labeled alerts: a JSON array of alert
// objects or an {"alerts": [...]} wrapper.
func ParseAlertsJSON(r io.Reader) ([]Alert, error) {
	data, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, err
	}
	var rows []jsonAlert
	if err := json.Unmarshal(data, &rows); err != nil {
		var wrapper struct {
			Alerts []jsonAlert `json:"alerts"`
		}
		if werr := json.Unmarshal(data, &wrapper); werr != nil || wrapper.Alerts == nil {
			return nil, fmt.Errorf("want a JSON array of alerts: %w", err)
		}
		rows = wrapper.Alerts
	}
	if len(rows) > maxRecords {
		return nil, fmt.Errorf("too many alerts")
	}
	out := make([]Alert, 0, len(rows))
	for i, row := range rows {
		a, err := row.toAlert(i)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ParseAlertsCSV parses alerts from CSV with columns id, signature_id,
// push_id, is_regression, status, amount_pct (header required; order
// free).
func ParseAlertsCSV(r io.Reader) ([]Alert, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[strings.ToLower(strings.TrimSpace(h))] = i
	}
	get := func(rec []string, name string) string {
		i, ok := col[name]
		if !ok || i >= len(rec) {
			return ""
		}
		return strings.TrimSpace(rec[i])
	}
	sigIdx, okSig := col["signature_id"]
	pushIdx, okPush := col["push_id"]
	if !okSig || !okPush {
		return nil, fmt.Errorf("header %v: need signature_id and push_id columns", header)
	}
	_ = sigIdx
	_ = pushIdx
	var out []Alert
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		a := Alert{
			Signature: get(rec, "signature_id"),
			Push:      get(rec, "push_id"),
			Status:    get(rec, "status"),
		}
		if a.Signature == "" || a.Push == "" {
			return nil, fmt.Errorf("line %d: missing signature_id or push_id", line)
		}
		if v := get(rec, "id"); v != "" {
			if a.ID, err = strconv.Atoi(v); err != nil {
				return nil, fmt.Errorf("line %d: id: %w", line, err)
			}
		}
		switch strings.ToLower(get(rec, "is_regression")) {
		case "true", "1", "t", "yes":
			a.IsRegression = true
		}
		if v := get(rec, "amount_pct"); v != "" {
			if a.AmountPct, err = strconv.ParseFloat(v, 64); err != nil {
				return nil, fmt.Errorf("line %d: amount_pct: %w", line, err)
			}
		}
		if len(out) >= maxRecords {
			return nil, fmt.Errorf("too many alerts")
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonPush mirrors pushes.json records.
type jsonPush struct {
	ID        flexID       `json:"push_id"`
	AltID     flexID       `json:"id"`
	Timestamp flexID       `json:"push_timestamp"`
	Commits   []jsonCommit `json:"commits"`
}

type jsonCommit struct {
	Revision string   `json:"revision"`
	AltID    string   `json:"id"`
	Author   string   `json:"author"`
	Desc     string   `json:"desc"`
	Title    string   `json:"title"`
	Merge    bool     `json:"merge"`
	Merged   []string `json:"merged"`
}

// ParsePushesJSON parses the push log: a JSON array of pushes or a
// {"pushes": [...]} wrapper, each push carrying its commits in
// application order.
func ParsePushesJSON(r io.Reader) ([]edivisive.Push, error) {
	data, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, err
	}
	var rows []jsonPush
	if err := json.Unmarshal(data, &rows); err != nil {
		var wrapper struct {
			Pushes []jsonPush `json:"pushes"`
		}
		if werr := json.Unmarshal(data, &wrapper); werr != nil || wrapper.Pushes == nil {
			return nil, fmt.Errorf("want a JSON array of pushes: %w", err)
		}
		rows = wrapper.Pushes
	}
	if len(rows) > maxRecords {
		return nil, fmt.Errorf("too many pushes")
	}
	out := make([]edivisive.Push, 0, len(rows))
	seen := map[string]bool{}
	for i, row := range rows {
		id := row.ID.String()
		if id == "" || id == "null" {
			id = row.AltID.String()
		}
		if id == "" || id == "null" {
			return nil, fmt.Errorf("push %d: missing push_id", i)
		}
		if seen[id] {
			return nil, fmt.Errorf("push %d: duplicate push_id %q", i, id)
		}
		seen[id] = true
		p := edivisive.Push{ID: id}
		if t := row.Timestamp.String(); t != "" && t != "null" {
			ts, err := parseTimestamp(t)
			if err != nil {
				return nil, fmt.Errorf("push %d: %w", i, err)
			}
			p.Time = ts
		}
		for j, c := range row.Commits {
			rev := c.Revision
			if rev == "" {
				rev = c.AltID
			}
			if rev == "" {
				return nil, fmt.Errorf("push %d commit %d: missing revision", i, j)
			}
			title := c.Title
			if title == "" {
				title = c.Desc
			}
			p.Commits = append(p.Commits, edivisive.Commit{
				ID: rev, Author: c.Author, Title: title,
				Merge: c.Merge || len(c.Merged) > 0, Merged: c.Merged,
			})
		}
		out = append(out, p)
	}
	return out, nil
}
