package replay

import (
	"fmt"
	"sort"

	"fbdetect/internal/changepoint"
	"fbdetect/internal/edivisive"
)

// DefaultTolerance is how many runs a detected change point may sit from
// a labeled alert's push and still count as the same event. Batch
// detectors place the cut at the first sample of the new regime; sheriff
// alerts sometimes anchor one run earlier or later, so ±2 runs absorbs
// the labeling jitter without letting unrelated noise cuts claim credit.
const DefaultTolerance = 2

// Families returns the detector families the replay compares, in report
// order: E-divisive means, CUSUM binary segmentation, DP normal-loss.
func Families() []changepoint.BatchDetector {
	return []changepoint.BatchDetector{
		edivisive.Detector{},
		changepoint.CUSUMBatch{},
		changepoint.DPBatch{},
	}
}

// Match pairs one detected change point with the labeled alert it
// claimed (REPLAY_report.json detail rows).
type Match struct {
	Signature string `json:"signature"`
	AlertID   int    `json:"alert_id"`
	// LabelIndex is the labeled push's sample index; DetectedIndex the
	// change point's; TTD the detection lag in runs (0 when the detector
	// fired at or before the labeled run).
	LabelIndex    int     `json:"label_index"`
	DetectedIndex int     `json:"detected_index"`
	TTD           int     `json:"ttd_runs"`
	Delta         float64 `json:"delta"`
}

// SeriesResult is one (series, family) replay outcome, carrying the raw
// change points and — when the dataset ships a push log — their commit
// attributions.
type SeriesResult struct {
	Signature    string                   `json:"signature"`
	Family       string                   `json:"family"`
	Points       []changepoint.BatchPoint `json:"points,omitempty"`
	Attributions []edivisive.Attribution  `json:"attributions,omitempty"`
	AttribErr    string                   `json:"attribution_error,omitempty"`
}

// FamilyReport scores one detector family over the whole dataset.
type FamilyReport struct {
	Family         string `json:"family"`
	TruePositives  int    `json:"true_positives"`
	FalsePositives int    `json:"false_positives"`
	FalseNegatives int    `json:"false_negatives"`
	// Ignored counts change points matching an ignorable label (an
	// improvement or a sheriff-invalidated alert): the series really
	// steps there, so the detection is neither credited nor penalized.
	Ignored   int     `json:"ignored"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// MeanTTDRuns is the mean detection lag in runs over true positives.
	MeanTTDRuns float64 `json:"mean_ttd_runs"`
	// Attributed counts true positives whose attribution window produced
	// at least one candidate commit (0 when the dataset has no push log).
	Attributed int     `json:"attributed"`
	Matches    []Match `json:"matches,omitempty"`
}

// Report is the full replay scorecard (REPLAY_report.json).
type Report struct {
	Dataset          string `json:"dataset"`
	SeriesCount      int    `json:"series"`
	Samples          int    `json:"samples"`
	ValidRegressions int    `json:"valid_regressions"`
	IgnorableAlerts  int    `json:"ignorable_alerts"`
	// UnmappedLabels counts alerts whose push never appears in their
	// signature's series (artifact inconsistencies; excluded from
	// scoring).
	UnmappedLabels int            `json:"unmapped_labels,omitempty"`
	Tolerance      int            `json:"tolerance_runs"`
	Families       []FamilyReport `json:"families"`
	Results        []SeriesResult `json:"results,omitempty"`
}

// Family returns the named family's scorecard, or nil.
func (r *Report) Family(name string) *FamilyReport {
	for i := range r.Families {
		if r.Families[i].Family == name {
			return &r.Families[i]
		}
	}
	return nil
}

// label is one alert resolved to a sample index within its series.
type label struct {
	alert    Alert
	index    int
	positive bool // valid regression (scored); otherwise ignorable
	matched  bool
}

// Run replays every series in the dataset through each detector family
// and scores the detected change points against the labeled alerts. A
// change point matches a label when their sample indices are within
// tolerance runs (pass tolerance < 0 for DefaultTolerance); matching is
// greedy one-to-one, nearest label first.
func Run(ds *Dataset, detectors []changepoint.BatchDetector, tolerance int) (*Report, error) {
	if len(detectors) == 0 {
		detectors = Families()
	}
	if tolerance < 0 {
		tolerance = DefaultTolerance
	}
	rep := &Report{
		Dataset:     ds.Name,
		SeriesCount: len(ds.Series),
		Samples:     ds.Samples(),
		Tolerance:   tolerance,
	}
	names := map[string]bool{}
	for _, d := range detectors {
		if names[d.Name()] {
			return nil, fmt.Errorf("replay: duplicate detector family %q", d.Name())
		}
		names[d.Name()] = true
	}

	// Resolve each alert to a sample index in its series, once.
	labelsBySig := map[string][]label{}
	for _, a := range ds.Alerts {
		s := ds.SeriesBySignature(a.Signature)
		if s == nil {
			rep.UnmappedLabels++
			continue
		}
		idx := -1
		for i, sm := range s.Samples {
			if sm.Push == a.Push {
				idx = i
				break
			}
		}
		if idx < 0 {
			rep.UnmappedLabels++
			continue
		}
		pos := a.IsRegression && a.Valid()
		labelsBySig[a.Signature] = append(labelsBySig[a.Signature], label{alert: a, index: idx, positive: pos})
		if pos {
			rep.ValidRegressions++
		} else {
			rep.IgnorableAlerts++
		}
	}
	for _, ls := range labelsBySig {
		sort.Slice(ls, func(i, j int) bool { return ls[i].index < ls[j].index })
	}

	for _, det := range detectors {
		fam := FamilyReport{Family: det.Name()}
		var ttdSum int
		for _, s := range ds.Series {
			points := det.Segment(s.Values())
			res := SeriesResult{Signature: s.Signature, Family: det.Name(), Points: points}
			if len(ds.Pushes) > 0 && len(points) > 0 {
				attrs, err := edivisive.Attribute(s.Pushes(), ds.Pushes, points)
				if err != nil {
					res.AttribErr = err.Error()
				} else {
					res.Attributions = attrs
				}
			}
			rep.Results = append(rep.Results, res)

			labels := append([]label(nil), labelsBySig[s.Signature]...)
			claimed := make([]bool, len(points))
			// Positive labels claim their nearest unclaimed point.
			for li := range labels {
				if !labels[li].positive {
					continue
				}
				best, bestDist := -1, tolerance+1
				for pi, p := range points {
					if claimed[pi] {
						continue
					}
					d := p.Index - labels[li].index
					if d < 0 {
						d = -d
					}
					if d < bestDist {
						best, bestDist = pi, d
					}
				}
				if best >= 0 {
					claimed[best] = true
					labels[li].matched = true
					fam.TruePositives++
					ttd := points[best].Index - labels[li].index
					if ttd < 0 {
						ttd = 0
					}
					ttdSum += ttd
					fam.Matches = append(fam.Matches, Match{
						Signature:     s.Signature,
						AlertID:       labels[li].alert.ID,
						LabelIndex:    labels[li].index,
						DetectedIndex: points[best].Index,
						TTD:           ttd,
						Delta:         points[best].Delta,
					})
					if res.AttribErr == "" {
						for _, a := range res.Attributions {
							if a.Point.Index == points[best].Index && len(a.Candidates) > 0 {
								fam.Attributed++
								break
							}
						}
					}
				} else {
					fam.FalseNegatives++
				}
			}
			// Unclaimed points near an ignorable label are ignored;
			// everything else is a false positive.
			for pi, p := range points {
				if claimed[pi] {
					continue
				}
				ignorable := false
				for _, l := range labels {
					if l.positive {
						continue
					}
					d := p.Index - l.index
					if d < 0 {
						d = -d
					}
					if d <= tolerance {
						ignorable = true
						break
					}
				}
				if ignorable {
					fam.Ignored++
				} else {
					fam.FalsePositives++
				}
			}
		}
		if fam.TruePositives+fam.FalsePositives > 0 {
			fam.Precision = float64(fam.TruePositives) / float64(fam.TruePositives+fam.FalsePositives)
		}
		if fam.TruePositives+fam.FalseNegatives > 0 {
			fam.Recall = float64(fam.TruePositives) / float64(fam.TruePositives+fam.FalseNegatives)
		}
		if fam.Precision+fam.Recall > 0 {
			fam.F1 = 2 * fam.Precision * fam.Recall / (fam.Precision + fam.Recall)
		}
		if fam.TruePositives > 0 {
			fam.MeanTTDRuns = float64(ttdSum) / float64(fam.TruePositives)
		}
		rep.Families = append(rep.Families, fam)
	}
	return rep, nil
}
