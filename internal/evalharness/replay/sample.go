package replay

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// sampleBase is the first push's timestamp in the generated sample
// (fixed so the dataset is byte-for-byte reproducible).
var sampleBase = time.Date(2024, 11, 4, 0, 0, 0, 0, time.UTC)

// samplePushes is how many pushes the generated push log covers.
const samplePushes = 200

// sampleSeries describes one generated signature.
type sampleSeries struct {
	sig    string
	base   float64
	noise  float64
	seed   int64
	runs   int
	stride int // run i measures push i*stride + 1
	// steps maps run index -> level delta applied from that run on.
	steps map[int]float64
	drift float64 // per-run slope
	// alerts maps run index -> (isRegression, status) labels to emit.
	alerts map[int]sampleAlert
}

type sampleAlert struct {
	isRegression bool
	status       string
}

// sampleSpec is the committed Mozilla-format sample: eight signatures
// exercising the corpus shapes the replay must score — clean and noisy
// steps, multiple regressions, an improvement, a sheriff-invalidated
// alert, drift, and a small step on a sparse (every-other-push) series.
func sampleSpec() []sampleSeries {
	return []sampleSeries{
		{sig: "101", base: 120, noise: 1.2, seed: 1101, runs: 120, stride: 1,
			steps:  map[int]float64{60: 12},
			alerts: map[int]sampleAlert{60: {true, "valid"}}},
		{sig: "102", base: 250, noise: 3, seed: 1102, runs: 100, stride: 2,
			steps:  map[int]float64{45: 9},
			alerts: map[int]sampleAlert{45: {true, "acknowledged"}}},
		{sig: "103", base: 64, noise: 0.9, seed: 1103, runs: 90, stride: 1},
		{sig: "104", base: 980, noise: 6, seed: 1104, runs: 130, stride: 1,
			steps:  map[int]float64{40: 55, 80: 40},
			alerts: map[int]sampleAlert{40: {true, "valid"}, 80: {true, "valid"}}},
		{sig: "105", base: 410, noise: 4, seed: 1105, runs: 100, stride: 1,
			steps:  map[int]float64{50: -35},
			alerts: map[int]sampleAlert{50: {false, "valid"}}},
		{sig: "106", base: 75, noise: 1, seed: 1106, runs: 100, stride: 1,
			steps:  map[int]float64{55: 5},
			alerts: map[int]sampleAlert{55: {true, "invalid"}}},
		{sig: "107", base: 300, noise: 2.5, seed: 1107, runs: 100, stride: 1,
			drift: 0.015},
		{sig: "108", base: 55, noise: 1.5, seed: 1108, runs: 100, stride: 2,
			steps:  map[int]float64{50: 4},
			alerts: map[int]sampleAlert{50: {true, "valid"}}},
	}
}

func samplePushID(i int) string { return fmt.Sprintf("push-%04d", i) }

func samplePushTime(i int) time.Time {
	return sampleBase.Add(time.Duration(i-1) * time.Hour)
}

// WriteSampleDataset deterministically generates the committed
// Mozilla-format replay sample (series.csv, alerts.json, pushes.json)
// into dir. Tests regenerate it and diff against testdata/mozsample so
// the committed artifact can never drift from this function.
func WriteSampleDataset(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	spec := sampleSpec()

	var csvb strings.Builder
	csvb.WriteString("signature_id,push_id,push_timestamp,value\n")
	var alerts []string
	alertID := 9000
	for _, s := range spec {
		rng := rand.New(rand.NewSource(s.seed))
		level := s.base
		for i := 0; i < s.runs; i++ {
			if d, ok := s.steps[i]; ok {
				level += d
			}
			push := i*s.stride + 1
			if push > samplePushes {
				return fmt.Errorf("sample: signature %s run %d needs push %d > %d", s.sig, i, push, samplePushes)
			}
			v := level + float64(i)*s.drift + rng.NormFloat64()*s.noise
			fmt.Fprintf(&csvb, "%s,%s,%d,%.4f\n",
				s.sig, samplePushID(push), samplePushTime(push).Unix(), v)
			if a, ok := s.alerts[i]; ok {
				alertID++
				alerts = append(alerts, fmt.Sprintf(
					"  {\"id\": %d, \"signature_id\": %q, \"push_id\": %q, \"is_regression\": %v, \"status\": %q, \"amount_pct\": %.2f}",
					alertID, s.sig, samplePushID(push), a.isRegression, a.status,
					100*s.steps[i]/s.base))
			}
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "series.csv"), []byte(csvb.String()), 0o644); err != nil {
		return err
	}
	alertsJSON := "[\n" + strings.Join(alerts, ",\n") + "\n]\n"
	if err := os.WriteFile(filepath.Join(dir, "alerts.json"), []byte(alertsJSON), 0o644); err != nil {
		return err
	}

	// Push log: every push carries 1-3 commits except a few empty CI-only
	// pushes, and push-0061 (signature 101's regression push: its step at
	// run 60 measures push 60*stride+1) lands as a merge of three
	// constituent commits so attribution exercises merge expansion on
	// real replay data.
	prng := rand.New(rand.NewSource(42))
	authors := []string{"ana@example.org", "bo@example.org", "cy@example.org", "dee@example.org"}
	var pushes []string
	for i := 1; i <= samplePushes; i++ {
		id := samplePushID(i)
		ts := samplePushTime(i).Unix()
		var commits []string
		switch {
		case i == 61:
			commits = append(commits, fmt.Sprintf(
				"    {\"revision\": \"m%04d\", \"author\": %q, \"title\": \"Merge autoland to central\", \"merge\": true, \"merged\": [\"c%04da\", \"c%04db\", \"c%04dc\"]}",
				i, authors[0], i, i, i))
		case i%37 == 0:
			// CI-only push: no commits, cannot be a cause.
		default:
			n := 1 + prng.Intn(3)
			for k := 0; k < n; k++ {
				commits = append(commits, fmt.Sprintf(
					"    {\"revision\": \"c%04d%c\", \"author\": %q, \"title\": \"Change %d.%d\"}",
					i, 'a'+k, authors[(i+k)%len(authors)], i, k))
			}
		}
		pushes = append(pushes, fmt.Sprintf(
			"  {\"push_id\": %q, \"push_timestamp\": %d, \"commits\": [\n%s\n  ]}",
			id, ts, strings.Join(commits, ",\n")))
	}
	pushesJSON := "[\n" + strings.Join(pushes, ",\n") + "\n]\n"
	return os.WriteFile(filepath.Join(dir, "pushes.json"), []byte(pushesJSON), 0o644)
}
