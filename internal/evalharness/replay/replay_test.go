package replay

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/changepoint"
)

// -update regenerates testdata/mozsample from WriteSampleDataset.
var update = flag.Bool("update", false, "regenerate committed sample dataset")

func sampleDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join("testdata", "mozsample")
	if *update {
		if err := WriteSampleDataset(dir); err != nil {
			t.Fatalf("regenerating sample: %v", err)
		}
	}
	return dir
}

func TestSampleDatasetInSync(t *testing.T) {
	committed := sampleDir(t)
	fresh := t.TempDir()
	if err := WriteSampleDataset(fresh); err != nil {
		t.Fatalf("WriteSampleDataset: %v", err)
	}
	for _, name := range []string{"series.csv", "alerts.json", "pushes.json"} {
		want, err := os.ReadFile(filepath.Join(fresh, name))
		if err != nil {
			t.Fatalf("reading generated %s: %v", name, err)
		}
		got, err := os.ReadFile(filepath.Join(committed, name))
		if err != nil {
			t.Fatalf("reading committed %s: %v (run go test ./internal/evalharness/replay -run InSync -update)", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s drifted from WriteSampleDataset; rerun with -update", name)
		}
	}
}

func TestReadSampleDataset(t *testing.T) {
	ds, err := ReadDataset(sampleDir(t))
	if err != nil {
		t.Fatalf("ReadDataset: %v", err)
	}
	if len(ds.Series) != 8 {
		t.Fatalf("parsed %d series, want 8", len(ds.Series))
	}
	if len(ds.Alerts) != 7 {
		t.Errorf("parsed %d alerts, want 7", len(ds.Alerts))
	}
	if len(ds.Pushes) != samplePushes {
		t.Errorf("parsed %d pushes, want %d", len(ds.Pushes), samplePushes)
	}
	s := ds.SeriesBySignature("101")
	if s == nil || len(s.Samples) != 120 {
		t.Fatalf("signature 101 = %+v", s)
	}
	if s.Samples[0].Push != "push-0001" || s.Samples[119].Push != "push-0120" {
		t.Errorf("101 pushes = %s..%s", s.Samples[0].Push, s.Samples[119].Push)
	}
	if !s.Samples[1].Time.After(s.Samples[0].Time) {
		t.Errorf("samples not time-ordered: %v then %v", s.Samples[0].Time, s.Samples[1].Time)
	}
	// Sparse series: signature 108 measures every other push.
	s108 := ds.SeriesBySignature("108")
	if s108.Samples[1].Push != "push-0003" {
		t.Errorf("108 second sample push = %s, want push-0003", s108.Samples[1].Push)
	}
	// The merge push survived parsing with its constituents.
	var merge bool
	for _, p := range ds.Pushes {
		if p.ID == "push-0061" {
			if len(p.Commits) == 1 && p.Commits[0].Merge && len(p.Commits[0].Merged) == 3 {
				merge = true
			}
		}
	}
	if !merge {
		t.Errorf("push-0061 merge commit not parsed as a 3-way merge")
	}
}

func TestRunScoresSample(t *testing.T) {
	ds, err := ReadDataset(sampleDir(t))
	if err != nil {
		t.Fatalf("ReadDataset: %v", err)
	}
	rep, err := Run(ds, nil, -1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ValidRegressions != 5 {
		t.Errorf("ValidRegressions = %d, want 5 (101, 102, 104x2, 108)", rep.ValidRegressions)
	}
	if rep.IgnorableAlerts != 2 {
		t.Errorf("IgnorableAlerts = %d, want 2", rep.IgnorableAlerts)
	}
	if len(rep.Families) != 3 {
		t.Fatalf("scored %d families, want 3", len(rep.Families))
	}
	ed := rep.Family("edivisive")
	if ed == nil {
		t.Fatal("no edivisive family in report")
	}
	if ed.Recall < 0.99 {
		t.Errorf("edivisive recall = %.3f on the sample, want 1.0 (matches: %+v)", ed.Recall, ed.Matches)
	}
	if ed.Precision < 0.8 {
		t.Errorf("edivisive precision = %.3f, want >= 0.8", ed.Precision)
	}
	if ed.Attributed != ed.TruePositives {
		t.Errorf("edivisive attributed %d of %d true positives", ed.Attributed, ed.TruePositives)
	}
	// The improvement (105) and invalidated alert (106) steps are real:
	// detectors that fire there must land in Ignored, not FalsePositives.
	if ed.Ignored < 2 {
		t.Errorf("edivisive Ignored = %d, want >= 2 (improvement + invalid alert)", ed.Ignored)
	}
	// The merge push-0061 regression must attribute through the merge.
	var sawVia bool
	for _, res := range rep.Results {
		if res.Family != "edivisive" || res.Signature != "101" {
			continue
		}
		for _, a := range res.Attributions {
			if a.FirstBad == "push-0061" && a.Top().Via != "" {
				sawVia = true
			}
		}
	}
	if !sawVia {
		t.Errorf("signature 101 change point did not attribute through the merge commit")
	}
}

func TestRunDeterministic(t *testing.T) {
	ds, err := ReadDataset(sampleDir(t))
	if err != nil {
		t.Fatalf("ReadDataset: %v", err)
	}
	a, err := Run(ds, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ds, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Families {
		if a.Families[i].TruePositives != b.Families[i].TruePositives ||
			a.Families[i].FalsePositives != b.Families[i].FalsePositives ||
			a.Families[i].MeanTTDRuns != b.Families[i].MeanTTDRuns {
			t.Errorf("family %s not deterministic: %+v vs %+v",
				a.Families[i].Family, a.Families[i], b.Families[i])
		}
	}
}

func TestBaselineGateOnSample(t *testing.T) {
	ds, err := ReadDataset(sampleDir(t))
	if err != nil {
		t.Fatalf("ReadDataset: %v", err)
	}
	rep, err := Run(ds, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	b := BaselineFromReport(rep, 0.05)
	if v := b.Check(rep); len(v) != 0 {
		t.Errorf("derived baseline violated by its own report: %v", v)
	}
	// Tighten one floor past the measurement: exactly that floor trips.
	ed := b.Families["edivisive"]
	ed.Precision = 1.01
	b.Families["edivisive"] = ed
	v := b.Check(rep)
	if len(v) != 1 || v[0].Floor != "edivisive.precision" {
		t.Fatalf("Check = %+v, want single edivisive.precision violation", v)
	}
	if v[0].Diff >= 0 {
		t.Errorf("violation Diff = %v, want negative", v[0].Diff)
	}
	// A family in the baseline but missing from the report fails loudly.
	b.Families["ghost"] = FamilyFloors{Precision: 0.1}
	found := false
	for _, viol := range b.Check(rep) {
		if viol.Floor == "ghost.missing" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing family not reported")
	}
	// Committed gate file round-trips.
	path := filepath.Join(t.TempDir(), "REPLAY_baseline.json")
	delete(b.Families, "ghost")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Check(rep)) != 1 {
		t.Errorf("reloaded baseline disagrees with original")
	}
}

func TestCommittedReplayBaselinePasses(t *testing.T) {
	// The repository's committed gate must pass against a fresh replay of
	// the committed sample — the same check CI's eval-replay job runs.
	b, err := ReadBaseline(filepath.Join("..", "..", "..", "REPLAY_baseline.json"))
	if err != nil {
		t.Skipf("no committed REPLAY_baseline.json yet: %v", err)
	}
	ds, err := ReadDataset(sampleDir(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ds, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if v := b.Check(rep); len(v) != 0 {
		t.Errorf("committed baseline violated:\n%v", v)
	}
}

func TestParseSeriesCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no header cols": "a,b\n1,2\n",
		"bad value":      "push_id,value\np1,abc\n",
		"empty push":     "push_id,value\n,3\n",
		"nan value":      "push_id,value\np1,NaN\n",
		"bad timestamp":  "push_id,push_timestamp,value\np1,notatime,3\n",
		"short row":      "signature_id,push_id,value\n1,p1\n",
		"huge timestamp": "push_id,push_timestamp,value\np1,1e300,3\n",
		"inf value":      "push_id,value\np1,+Inf\n",
	}
	for name, in := range cases {
		if _, err := ParseSeriesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseSeriesCSVGrouping(t *testing.T) {
	in := "signature_id,push_id,push_timestamp,value\n" +
		"2,p3,300,5\n" +
		"1,p1,100,1\n" +
		"2,p2,200,4\n" +
		"1,p2,2024-01-01T00:00:00Z,2\n"
	series, err := ParseSeriesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	bySig := map[string]Series{}
	for _, s := range series {
		bySig[s.Signature] = s
	}
	// Within each signature, samples sort by time; RFC3339 parses too.
	if s2 := bySig["2"]; s2.Samples[0].Push != "p2" || s2.Samples[1].Push != "p3" {
		t.Errorf("signature 2 order = %+v", s2.Samples)
	}
	if s1 := bySig["1"]; s1.Samples[1].Time != time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("RFC3339 timestamp = %v", s1.Samples[1].Time)
	}
}

func TestParseSeriesJSONForms(t *testing.T) {
	raw := `[{"signature_id": 7, "push_id": 12, "push_timestamp": 100.5, "value": 3.5}]`
	for _, in := range []string{raw, `{"measurements": ` + raw + `}`} {
		series, err := ParseSeriesJSON(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if len(series) != 1 || series[0].Signature != "7" || series[0].Samples[0].Push != "12" {
			t.Errorf("parsed %+v", series)
		}
	}
	for name, in := range map[string]string{
		"not array": `{"x": 1}`,
		"no value":  `[{"push_id": 1}]`,
		"no push":   `[{"value": 2}]`,
		"bad json":  `[{`,
	} {
		if _, err := ParseSeriesJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestParseAlertsForms(t *testing.T) {
	js := `{"alerts": [{"id": 5, "signature_id": 1, "push_id": 9, "is_regression": true, "status": "invalid"}]}`
	alerts, err := ParseAlertsJSON(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].ID != 5 || !alerts[0].IsRegression || alerts[0].Valid() {
		t.Errorf("parsed %+v", alerts)
	}
	csvIn := "id,signature_id,push_id,is_regression,status,amount_pct\n5,1,9,true,valid,2.5\n"
	alerts, err = ParseAlertsCSV(strings.NewReader(csvIn))
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || !alerts[0].Valid() || alerts[0].AmountPct != 2.5 {
		t.Errorf("parsed %+v", alerts)
	}
	if _, err := ParseAlertsCSV(strings.NewReader("id,value\n1,2\n")); err == nil {
		t.Error("missing columns: no error")
	}
	if _, err := ParseAlertsJSON(strings.NewReader(`[{"signature_id": 1}]`)); err == nil {
		t.Error("missing push: no error")
	}
}

func TestParsePushesJSONErrors(t *testing.T) {
	for name, in := range map[string]string{
		"duplicate":     `[{"push_id": "p1"}, {"push_id": "p1"}]`,
		"missing id":    `[{"push_timestamp": 5}]`,
		"commit no rev": `[{"push_id": "p1", "commits": [{"author": "x"}]}]`,
		"not array":     `17`,
	} {
		if _, err := ParsePushesJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestRunRejectsDuplicateFamilies(t *testing.T) {
	ds := &Dataset{Series: []Series{{Signature: "1"}}}
	_, err := Run(ds, []changepoint.BatchDetector{changepoint.DPBatch{}, changepoint.DPBatch{}}, -1)
	if err == nil {
		t.Fatal("duplicate families accepted")
	}
}

func TestRunUnmappedLabels(t *testing.T) {
	ds := &Dataset{
		Series: []Series{{Signature: "1", Samples: []Sample{{Push: "p1", Value: 1}}}},
		Alerts: []Alert{
			{Signature: "1", Push: "p-notinseries", IsRegression: true},
			{Signature: "ghost", Push: "p1", IsRegression: true},
		},
	}
	rep, err := Run(ds, []changepoint.BatchDetector{changepoint.DPBatch{}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnmappedLabels != 2 || rep.ValidRegressions != 0 {
		t.Errorf("UnmappedLabels = %d ValidRegressions = %d, want 2/0", rep.UnmappedLabels, rep.ValidRegressions)
	}
}
