package replay

import (
	"math"
	"strings"
	"testing"
)

// FuzzReplayParse drives every artifact parser over arbitrary bytes: the
// parsers must return an error or a well-formed result, never panic, and
// anything they accept must round through scoring without blowing up.
func FuzzReplayParse(f *testing.F) {
	f.Add("signature_id,push_id,push_timestamp,value\n1,p1,100,2.5\n1,p2,200,2.6\n")
	f.Add(`[{"signature_id": 1, "push_id": 2, "value": 3}]`)
	f.Add(`{"alerts": [{"signature_id": "1", "push_id": "p1", "is_regression": true}]}`)
	f.Add(`[{"push_id": "p1", "commits": [{"revision": "abc", "merge": true, "merged": ["x","y"]}]}]`)
	f.Add("push_id,value\n")
	f.Add(`{"measurements": []}`)
	f.Add("\xff\xfe")
	f.Fuzz(func(t *testing.T, in string) {
		if series, err := ParseSeriesCSV(strings.NewReader(in)); err == nil {
			checkSeries(t, series)
		}
		if series, err := ParseSeriesJSON(strings.NewReader(in)); err == nil {
			checkSeries(t, series)
		}
		if alerts, err := ParseAlertsJSON(strings.NewReader(in)); err == nil {
			for _, a := range alerts {
				if a.Signature == "" || a.Push == "" {
					t.Fatalf("accepted alert with empty keys: %+v", a)
				}
			}
		}
		if alerts, err := ParseAlertsCSV(strings.NewReader(in)); err == nil {
			for _, a := range alerts {
				if a.Signature == "" || a.Push == "" {
					t.Fatalf("accepted alert with empty keys: %+v", a)
				}
			}
		}
		if pushes, err := ParsePushesJSON(strings.NewReader(in)); err == nil {
			seen := map[string]bool{}
			for _, p := range pushes {
				if p.ID == "" || seen[p.ID] {
					t.Fatalf("accepted empty or duplicate push id %q", p.ID)
				}
				seen[p.ID] = true
			}
		}
	})
}

// checkSeries scores whatever a parser accepted: accepted series must
// carry finite values and survive a full Run against an empty alert set.
func checkSeries(t *testing.T, series []Series) {
	t.Helper()
	for _, s := range series {
		for _, sm := range s.Samples {
			if math.IsNaN(sm.Value) || math.IsInf(sm.Value, 0) {
				t.Fatalf("accepted non-finite value in %q", s.Signature)
			}
			if sm.Push == "" {
				t.Fatalf("accepted empty push in %q", s.Signature)
			}
		}
	}
	total := 0
	for _, s := range series {
		total += len(s.Samples)
	}
	if total > 4096 {
		return // keep fuzz iterations fast; Run is O(n²) per series
	}
	ds := &Dataset{Name: "fuzz", Series: series}
	if _, err := Run(ds, nil, -1); err != nil {
		t.Fatalf("Run on accepted series: %v", err)
	}
}
