package evalharness

import (
	"math"
	"math/rand"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// FloorPoint is one cell of the detection-floor curve: how often a step of
// the given gCPU magnitude is detected at the given profiling volume.
type FloorPoint struct {
	Magnitude      float64 `json:"magnitude"`
	SamplesPerStep float64 `json:"samples_per_step"`
	NoiseSD        float64 `json:"noise_sd"`
	SNR            float64 `json:"snr"`
	Trials         int     `json:"trials"`
	Detected       int     `json:"detected"`
	Rate           float64 `json:"rate"`
}

// Default sweep axes: magnitudes spanning the paper's 0.002%-1% range, and
// profiling volumes spanning small-deployment to fleet scale.
var (
	defaultFloorMagnitudes = []float64{0.00002, 0.0001, 0.0005, 0.002, 0.01}
	defaultFloorSamples    = []float64{1e5, 1e7, 1e9}
)

// FloorCurve sweeps the short-term detection path over a magnitude x
// fleet-size grid — the executable form of the paper's Figures 2-3. Each
// cell injects a step of the given gCPU magnitude into a subroutine at 1%
// gCPU whose binomial sampling noise is sqrt(p(1-p)/n) for n samples per
// step, then runs change-point detection plus the went-away, seasonality,
// and threshold filters on the resulting windows. The visible frontier
// moves diagonally: each 100x more samples buys a 10x smaller detectable
// magnitude.
func FloorCurve(cfg core.Config, seed int64, magnitudes, samples []float64, trials int) []FloorPoint {
	if magnitudes == nil {
		magnitudes = defaultFloorMagnitudes
	}
	if samples == nil {
		samples = defaultFloorSamples
	}
	if trials < 1 {
		trials = 1
	}
	cfg = cfg.WithDefaults()
	const p = 0.01 // the target subroutine's base gCPU
	total := int(cfg.Windows.Total() / time.Minute)
	histLen := int(cfg.Windows.Historic / time.Minute)
	analysisLen := int(cfg.Windows.Analysis / time.Minute)
	cp := histLen + analysisLen/2 // step lands mid-analysis-window

	var out []FloorPoint
	for _, n := range samples {
		sd := math.Sqrt(p * (1 - p) / n)
		for _, mag := range magnitudes {
			pt := FloorPoint{Magnitude: mag, SamplesPerStep: n,
				NoiseSD: sd, SNR: mag / sd, Trials: trials}
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(seed + int64(trial)*104729))
				values := make([]float64, total)
				for i := range values {
					mu := p
					if i >= cp {
						mu += mag
					}
					v := mu + rng.NormFloat64()*sd
					if v < 0 {
						v = 0 // gCPU cannot be negative
					}
					values[i] = v
				}
				if floorVerdict(cfg, values) {
					pt.Detected++
				}
			}
			pt.Rate = float64(pt.Detected) / float64(pt.Trials)
			out = append(out, pt)
		}
	}
	return out
}

// floorVerdict runs the short-term path with its filters over one series.
func floorVerdict(cfg core.Config, values []float64) bool {
	s := timeseries.New(suiteEpoch, time.Minute, values)
	ws, err := cfg.Windows.Cut(s, s.End())
	if err != nil {
		return false
	}
	r := core.DetectShortTerm(cfg, tsdb.ID("floor", "hotpath", "gcpu"), ws, s.End())
	if r == nil {
		return false
	}
	return core.CheckWentAway(cfg.WentAway, r).Keep &&
		core.CheckSeasonality(cfg.Seasonality, r).Keep &&
		core.PassesThreshold(cfg, r)
}
