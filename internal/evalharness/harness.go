package evalharness

import (
	"fmt"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
	"fbdetect/internal/fleet"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// suiteEpoch anchors simulated time; a fixed epoch keeps runs bit-for-bit
// reproducible for a given seed.
var suiteEpoch = time.Date(2024, 11, 1, 0, 0, 0, 0, time.UTC)

// Suite is one complete harness run: the labeled scenarios, the pipeline
// configuration under test, and the simulated-time parameters.
type Suite struct {
	Name      string
	Scenarios []Scenario
	Config    core.Config
	// Step is the metric resolution; Duration the simulated span; Interval
	// the monitor's re-run interval.
	Step     time.Duration
	Duration time.Duration
	Interval time.Duration
	// SampleBudget is the expected stack-sample count per sample-provider
	// query (attribution and cost-shift analysis use ratios, so any
	// positive volume works).
	SampleBudget float64
	// TopK is the root-cause rank within which the true change must appear
	// (the paper evaluates top-3).
	TopK int
	// FleetScaleMagnitude is the magnitude floor for the headline
	// fleet-scale recall figure (gate default: 0.05% gCPU).
	FleetScaleMagnitude float64
	// FloorCurve, when true, also sweeps the analytic detection floor
	// (magnitude x fleet size) into the report.
	FloorCurve bool
}

// DefaultSuite returns the standard accuracy suite: DefaultScenarios under
// the harness's reference configuration (1-minute steps, Figure 4 windows
// compressed to 400/200/60 minutes, hourly re-scans).
func DefaultSuite() *Suite {
	return &Suite{
		Name:      "default",
		Scenarios: DefaultScenarios(),
		Config: core.Config{
			// Absolute gCPU threshold below the smallest injected
			// magnitude; service-level metrics get scaled thresholds so
			// their noise cannot mask the subroutine-level evaluation.
			Threshold: 1e-5,
			MetricThresholds: map[string]float64{
				"cpu":        0.02,
				"throughput": 0.08,
			},
			MetricRelative: map[string]bool{"throughput": true},
			Windows: timeseries.WindowConfig{
				Historic: 400 * time.Minute,
				Analysis: 200 * time.Minute,
				Extended: 60 * time.Minute,
			},
			// The mix-shift scenarios carry stratified telemetry; the
			// pop-shift stage must reclassify their aggregate movements.
			PopShift: core.PopShiftConfig{Enabled: true},
		},
		Step:                time.Minute,
		Duration:            1100 * time.Minute,
		Interval:            time.Hour,
		SampleBudget:        2e6,
		TopK:                3,
		FleetScaleMagnitude: 0.0005,
		FloorCurve:          true,
	}
}

// fleetSamples routes SampleProvider queries to the scenario services by
// name, so one pipeline can run cost-shift and root-cause analysis across
// every scenario.
type fleetSamples struct {
	services map[string]*fleet.Service
	budget   float64
}

func (p fleetSamples) SamplesBetween(service string, from, to time.Time) *stacktrace.SampleSet {
	svc := p.services[service]
	if svc == nil {
		return stacktrace.NewSampleSet()
	}
	return svc.ExpectedSamplesBetween(from, to, p.budget)
}

// Run materializes every scenario into one store, drives the monitor over
// the simulated span, and scores the emitted reports against the labels.
func (s *Suite) Run(seed int64) (*Report, error) {
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("evalharness: suite has no scenarios")
	}
	start := suiteEpoch
	end := start.Add(s.Duration)
	db := tsdb.New(s.Step)
	var log changelog.Log

	services := make(map[string]*fleet.Service, len(s.Scenarios))
	scenarios := make(map[string]Scenario, len(s.Scenarios))
	var labels []*labelState
	var order []string
	for i, sc := range s.Scenarios {
		env := Env{DB: db, Log: &log, Start: start, End: end, Step: s.Step,
			Seed: seed + int64(i)*7919}
		svc, ls, err := sc.Build(env)
		if err != nil {
			return nil, fmt.Errorf("evalharness: building %s: %w", sc.Name, err)
		}
		name := svc.Name()
		if _, dup := services[name]; dup {
			return nil, fmt.Errorf("evalharness: duplicate service %q", name)
		}
		if err := svc.Run(db, &log, start, end); err != nil {
			return nil, fmt.Errorf("evalharness: simulating %s: %w", sc.Name, err)
		}
		services[name] = svc
		scenarios[name] = sc
		order = append(order, name)
		for i := range ls {
			labels = append(labels, &labelState{Label: ls[i]})
		}
	}

	pipeline, err := core.NewPipeline(s.Config, db, &log,
		fleetSamples{services: services, budget: s.SampleBudget})
	if err != nil {
		return nil, err
	}
	// Commit domains make the injected refactoring commits usable as
	// cost-shift domains, like the production deployment (paper §5.4).
	pipeline.AddDomainDetector(core.CommitDomains{Log: &log})
	monitor, err := core.NewMonitor(pipeline, s.Interval)
	if err != nil {
		return nil, err
	}
	for _, name := range order {
		monitor.Watch(name)
	}
	warmup := start.Add(s.Config.Windows.Total())
	if err := monitor.RunVirtual(warmup, end); err != nil {
		return nil, err
	}

	funnel, scans := monitor.Stats()
	report := s.score(seed, monitor.Reports(), scenarios, labels)
	report.Funnel = funnel
	report.Scans = scans
	if s.FloorCurve {
		report.FloorCurve = FloorCurve(s.Config, seed, nil, nil, 3)
	}
	return report, nil
}
