package evalharness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"fbdetect/internal/core"
)

// labelState tracks one ground-truth label through scoring.
type labelState struct {
	Label
	reports    int
	detectedAt time.Time
	topK       bool // ChangeID ranked within TopK on the first matched report
}

// ClassResult is the per-class row of the confusion matrix.
type ClassResult struct {
	Scenarios int `json:"scenarios"`
	Reports   int `json:"reports"`
	// Positive-class fields.
	PositiveLabels int      `json:"positive_labels,omitempty"`
	Detected       int      `json:"detected,omitempty"`
	Recall         float64  `json:"recall"`
	Missed         []string `json:"missed,omitempty"`
	// Matched reports beyond the first per label (deduplication leaks).
	DuplicateReports  int     `json:"duplicate_reports,omitempty"`
	DedupCollapseRate float64 `json:"dedup_collapse_rate,omitempty"`
	MeanTimeToDetect  float64 `json:"mean_time_to_detect_minutes,omitempty"`
	TopKRootCause     float64 `json:"topk_root_cause_rate,omitempty"`
	// Negative-class fields: a scenario is suppressed when the pipeline
	// emitted nothing for it.
	FalsePositives  int      `json:"false_positive_reports"`
	Suppressed      int      `json:"suppressed_scenarios,omitempty"`
	SuppressionRate float64  `json:"suppression_rate"`
	Leaks           []string `json:"leaks,omitempty"`
}

// MagnitudeBand is recall restricted to labels at or above a magnitude.
type MagnitudeBand struct {
	MinMagnitude float64 `json:"min_magnitude"`
	Labels       int     `json:"labels"`
	Detected     int     `json:"detected"`
	Recall       float64 `json:"recall"`
}

// Report is the machine-readable outcome of one suite run
// (EVAL_report.json).
type Report struct {
	Suite     string                `json:"suite"`
	Seed      int64                 `json:"seed"`
	Scenarios int                   `json:"scenarios"`
	Scans     int                   `json:"scans"`
	Classes   map[Class]*ClassResult `json:"classes"`

	// Headline figures the gate checks.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// RecallFleetScale is recall over injected regressions with magnitude
	// >= FleetScaleMagnitude (the paper's comfortably-detectable band).
	FleetScaleMagnitude float64 `json:"fleet_scale_magnitude"`
	RecallFleetScale    float64 `json:"recall_fleet_scale"`

	RecallByMagnitude []MagnitudeBand `json:"recall_by_magnitude"`
	MeanTimeToDetect  float64         `json:"mean_time_to_detect_minutes"`
	DedupCollapseRate float64         `json:"dedup_collapse_rate"`
	TopK              int             `json:"top_k"`
	TopKRootCause     float64         `json:"topk_root_cause_rate"`

	TruePositiveReports  int      `json:"true_positive_reports"`
	FalsePositiveReports int      `json:"false_positive_reports"`
	FalsePositiveDetails []string `json:"false_positive_details,omitempty"`

	Funnel core.Funnel `json:"funnel"`

	FloorCurve []FloorPoint `json:"floor_curve,omitempty"`
}

// score matches the monitor's reports against the labels and aggregates
// the confusion matrix.
func (s *Suite) score(seed int64, reports []*core.Regression,
	scenarios map[string]Scenario, labels []*labelState) *Report {
	rep := &Report{
		Suite: s.Name, Seed: seed, Scenarios: len(s.Scenarios),
		Classes: map[Class]*ClassResult{}, TopK: s.TopK,
		FleetScaleMagnitude: s.FleetScaleMagnitude,
	}
	class := func(c Class) *ClassResult {
		cr := rep.Classes[c]
		if cr == nil {
			cr = &ClassResult{}
			rep.Classes[c] = cr
		}
		return cr
	}
	for _, sc := range s.Scenarios {
		class(sc.Class).Scenarios++
	}

	byService := map[string][]*labelState{}
	for _, l := range labels {
		byService[l.Service] = append(byService[l.Service], l)
	}
	leaked := map[string]bool{} // scenario name -> emitted a false positive

	for _, r := range reports {
		sc, known := scenarios[r.Service]
		if !known {
			rep.FalsePositiveReports++
			rep.FalsePositiveDetails = append(rep.FalsePositiveDetails,
				fmt.Sprintf("unknown service: %v", r))
			continue
		}
		cr := class(sc.Class)
		cr.Reports++
		var matched *labelState
		for _, l := range byService[r.Service] {
			if l.Expect && l.Matches(r.Service, r.Entity, r.ChangePointTime) {
				matched = l
				break
			}
		}
		if matched == nil {
			cr.FalsePositives++
			rep.FalsePositiveReports++
			leaked[sc.Name] = true
			rep.FalsePositiveDetails = append(rep.FalsePositiveDetails,
				fmt.Sprintf("%s [%s]: %v", sc.Name, sc.Class, r))
			continue
		}
		rep.TruePositiveReports++
		matched.reports++
		if matched.reports == 1 {
			matched.detectedAt = r.DetectedAt
			matched.topK = rankedWithin(r, matched.ChangeID, s.TopK)
		} else {
			cr.DuplicateReports++
		}
	}

	// Aggregate labels.
	var ttdSum float64
	var ttdN int
	var collapseSum float64
	var collapseN int
	var topKHit, topKN int
	bands := []float64{0, s.FleetScaleMagnitude}
	bandStats := make([]MagnitudeBand, len(bands))
	for i, b := range bands {
		bandStats[i].MinMagnitude = b
	}
	for _, l := range labels {
		cr := class(l.Class)
		if !l.Expect {
			continue
		}
		cr.PositiveLabels++
		for i, b := range bands {
			if l.Magnitude >= b {
				bandStats[i].Labels++
				if l.reports > 0 {
					bandStats[i].Detected++
				}
			}
		}
		if l.reports == 0 {
			cr.Missed = append(cr.Missed, l.Scenario)
			continue
		}
		cr.Detected++
		ttd := l.detectedAt.Sub(l.Onset).Minutes()
		cr.MeanTimeToDetect += ttd
		ttdSum += ttd
		ttdN++
		if l.ChangeID != "" {
			topKN++
			if l.topK {
				topKHit++
			}
		}
		if l.AffectedSeries > 1 {
			extra := float64(l.reports - 1)
			collapse := 1 - extra/float64(l.AffectedSeries-1)
			if collapse < 0 {
				collapse = 0
			}
			collapseSum += collapse
			collapseN++
		}
	}

	// Per-class rates.
	var totalPos, totalDet int
	for c, cr := range rep.Classes {
		if c.Positive() {
			totalPos += cr.PositiveLabels
			totalDet += cr.Detected
			if cr.PositiveLabels > 0 {
				cr.Recall = float64(cr.Detected) / float64(cr.PositiveLabels)
			}
			if cr.Detected > 0 {
				cr.MeanTimeToDetect /= float64(cr.Detected)
			}
			continue
		}
		// Negative classes: suppression by scenario.
		for _, sc := range s.Scenarios {
			if sc.Class == c && !leaked[sc.Name] {
				cr.Suppressed++
			}
		}
		if cr.Scenarios > 0 {
			cr.SuppressionRate = float64(cr.Suppressed) / float64(cr.Scenarios)
		}
		for _, sc := range s.Scenarios {
			if sc.Class == c && leaked[sc.Name] {
				cr.Leaks = append(cr.Leaks, sc.Name)
			}
		}
	}
	if dupCR := rep.Classes[ClassDuplicate]; dupCR != nil && collapseN > 0 {
		dupCR.DedupCollapseRate = collapseSum / float64(collapseN)
	}
	if topKN > 0 {
		rate := float64(topKHit) / float64(topKN)
		rep.TopKRootCause = rate
		if cr := rep.Classes[ClassRegression]; cr != nil {
			cr.TopKRootCause = rate
		}
	}

	if totalPos > 0 {
		rep.Recall = float64(totalDet) / float64(totalPos)
	}
	if n := rep.TruePositiveReports + rep.FalsePositiveReports; n > 0 {
		rep.Precision = float64(rep.TruePositiveReports) / float64(n)
	} else {
		rep.Precision = 1
	}
	for i := range bandStats {
		if bandStats[i].Labels > 0 {
			bandStats[i].Recall = float64(bandStats[i].Detected) / float64(bandStats[i].Labels)
		}
	}
	rep.RecallByMagnitude = bandStats
	rep.RecallFleetScale = bandStats[len(bandStats)-1].Recall
	if ttdN > 0 {
		rep.MeanTimeToDetect = ttdSum / float64(ttdN)
	}
	if collapseN > 0 {
		rep.DedupCollapseRate = collapseSum / float64(collapseN)
	} else {
		rep.DedupCollapseRate = 1
	}
	sort.Strings(rep.FalsePositiveDetails)
	return rep
}

// rankedWithin reports whether changeID appears in the regression's top-k
// root-cause candidates.
func rankedWithin(r *core.Regression, changeID string, k int) bool {
	if changeID == "" {
		return false
	}
	for i, c := range r.RootCauses {
		if i >= k {
			break
		}
		if c.ChangeID == changeID {
			return true
		}
	}
	return false
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path.
func (r *Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport loads a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
