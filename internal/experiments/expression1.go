package experiments

import (
	"fmt"
	"math"

	"fbdetect/internal/stats"
)

// Expression1Point is the measured minimum detectable shift at one sample
// count.
type Expression1Point struct {
	N            int
	MinDelta     float64 // smallest shift detected with >= 80% power
	TheoryDelta  float64 // c * sqrt(sigma^2 / n), c fit from the first point
	WasteFromA4  float64 // Appendix A.4: waste fraction proportional to MinDelta
	PowerAtDelta float64
}

// Expression1Result validates the paper's detection-threshold law
// (Expression 1): Delta_threshold is proportional to sqrt(sigma^2 / n).
type Expression1Result struct {
	Sigma  float64
	Points []Expression1Point
	// FitExponent is the least-squares slope of log(MinDelta) vs log(n);
	// Expression 1 predicts -0.5.
	FitExponent float64
}

func (r Expression1Result) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.5f", p.MinDelta),
			fmt.Sprintf("%.5f", p.TheoryDelta),
			fmt.Sprintf("%.2f", p.PowerAtDelta),
		})
	}
	return fmt.Sprintf("Expression 1: detection threshold vs samples (sigma=%.2f, fitted exponent %.2f, theory -0.5)\n",
		r.Sigma, r.FitExponent) +
		table([]string{"n", "min detectable shift", "theory c*sqrt(s^2/n)", "power"}, rows)
}

// RunExpression1 measures, for increasing sample counts n, the smallest
// mean shift the likelihood-ratio change-point test detects with >= 80%
// power at alpha = 0.01, and fits the scaling exponent. The paper's
// Appendix A.2 derives Delta_threshold ~ sqrt(sigma^2/n); the measured
// exponent should be close to -0.5.
func RunExpression1(seed int64) Expression1Result {
	rng := newRng(seed)
	const sigma = 1.0
	res := Expression1Result{Sigma: sigma}
	ns := []int{100, 400, 1600, 6400}

	power := func(n int, delta float64) float64 {
		const trials = 60
		detected := 0
		for tr := 0; tr < trials; tr++ {
			xs := make([]float64, 2*n)
			for i := range xs {
				mu := 0.0
				if i >= n {
					mu = delta
				}
				xs[i] = mu + rng.NormFloat64()*sigma
			}
			if stats.LikelihoodRatioTest(xs, n, 0.01).Reject {
				detected++
			}
		}
		return float64(detected) / trials
	}

	for _, n := range ns {
		// Binary search the smallest delta with >= 80% power.
		lo, hi := 0.0, 4*sigma
		for iter := 0; iter < 12; iter++ {
			mid := (lo + hi) / 2
			if power(n, mid) >= 0.8 {
				hi = mid
			} else {
				lo = mid
			}
		}
		res.Points = append(res.Points, Expression1Point{
			N:            n,
			MinDelta:     hi,
			PowerAtDelta: power(n, hi),
		})
	}
	// Fit the exponent of MinDelta ~ n^e by least squares in log space.
	logs := make([]float64, len(res.Points))
	for i, p := range res.Points {
		logs[i] = math.Log(p.MinDelta)
	}
	// x values are log(n); reuse LinearFit by resampling onto an index
	// axis is wrong (uneven spacing), so fit directly.
	var sx, sy, sxx, sxy float64
	for i, p := range res.Points {
		x := math.Log(float64(p.N))
		y := logs[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	k := float64(len(res.Points))
	res.FitExponent = (k*sxy - sx*sy) / (k*sxx - sx*sx)
	// Theory curve anchored to the first point.
	c := res.Points[0].MinDelta * math.Sqrt(float64(res.Points[0].N)) / sigma
	for i := range res.Points {
		res.Points[i].TheoryDelta = c * sigma / math.Sqrt(float64(res.Points[i].N))
		res.Points[i].WasteFromA4 = res.Points[i].MinDelta // waste fraction ∝ threshold (A.4)
	}
	return res
}

// LongTermPoint compares the two detection paths on one scenario.
type LongTermPoint struct {
	Scenario         string
	ShortTermCaught  bool
	LongTermCaught   bool
	LongTermLocation int // change point index reported by the long-term path
}

// LongTermResult validates the two-path design of §5.3: the short-term
// path is built for sudden steps and misses slow drifts; the long-term
// path catches drifts and locates steps too.
type LongTermResult struct{ Points []LongTermPoint }

func (r LongTermResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Scenario,
			fmt.Sprintf("%v", p.ShortTermCaught),
			fmt.Sprintf("%v", p.LongTermCaught)})
	}
	return "Short-term vs long-term paths (§5.3)\n" +
		table([]string{"scenario", "short-term caught", "long-term caught"}, rows)
}
