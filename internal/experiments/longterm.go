package experiments

import (
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// RunLongTerm builds three scenarios — a sudden step, a slow drift across
// the whole analysis window, and a flat control — and runs both detection
// paths on each.
func RunLongTerm(seed int64) LongTermResult {
	rng := newRng(seed)
	cfg := core.Config{
		Threshold: 0.3,
		Windows: timeseries.WindowConfig{
			Historic: 400 * time.Minute,
			Analysis: 400 * time.Minute,
			Extended: 80 * time.Minute,
		},
		LongTerm: true,
	}.WithDefaults()

	mk := func(n int, mu, sd float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = mu + rng.NormFloat64()*sd
		}
		return out
	}

	build := func(analysis []float64, extLevel float64) timeseries.Windows {
		return buildWindows(mk(400, 10, 0.1), analysis, mk(80, extLevel, 0.1))
	}

	run := func(name string, ws timeseries.Windows) LongTermPoint {
		scan := ws.Extended.End()
		p := LongTermPoint{Scenario: name}
		if r := core.DetectShortTerm(cfg, tsdb.ID("s", "e", "m"), ws, scan); r != nil {
			if core.CheckWentAway(cfg.WentAway, r).Keep &&
				core.CheckSeasonality(cfg.Seasonality, r).Keep &&
				core.PassesThreshold(cfg, r) {
				p.ShortTermCaught = true
			}
		}
		if r := core.DetectLongTerm(cfg, tsdb.ID("s", "e", "m"), ws, scan); r != nil {
			p.LongTermCaught = true
			p.LongTermLocation = r.ChangePoint
		}
		return p
	}

	var res LongTermResult

	// Sudden step mid-window.
	step := append(mk(200, 10, 0.1), mk(200, 11, 0.1)...)
	res.Points = append(res.Points, run("sudden step", build(step, 11)))

	// Slow drift: +1 over the full 400-point analysis window. No single
	// point looks like a step, so CUSUM's validated split is weak, but
	// the long-term trend comparison sees start vs end clearly.
	drift := make([]float64, 400)
	for i := range drift {
		drift[i] = 10 + float64(i)/400 + rng.NormFloat64()*0.1
	}
	res.Points = append(res.Points, run("slow drift", build(drift, 11)))

	// Flat control.
	res.Points = append(res.Points, run("flat control", build(mk(400, 10, 0.1), 10)))
	return res
}
