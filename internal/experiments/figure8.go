package experiments

import (
	"fmt"
	"math"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/egads"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// Figure8Point is one operating point: an algorithm at a sensitivity with
// its false-positive and false-negative rates.
type Figure8Point struct {
	Algorithm   string
	Sensitivity float64
	FPRate      float64
	FNRate      float64
}

// Figure8Result reproduces paper Figure 8: FBDetect versus the EGADS
// algorithms on a labelled corpus.
type Figure8Result struct {
	FBDetect Figure8Point
	EGADS    []Figure8Point
	// Corpus sizes.
	Positives, Negatives int
}

func (r Figure8Result) String() string {
	rows := [][]string{{
		"FBDetect", "-",
		fmt.Sprintf("%.5f", r.FBDetect.FPRate),
		fmt.Sprintf("%.3f", r.FBDetect.FNRate),
	}}
	for _, p := range r.EGADS {
		rows = append(rows, []string{
			p.Algorithm,
			fmt.Sprintf("%.2f", p.Sensitivity),
			fmt.Sprintf("%.5f", p.FPRate),
			fmt.Sprintf("%.3f", p.FNRate),
		})
	}
	return fmt.Sprintf("Figure 8: FBDetect vs EGADS (%d positives, %d negatives)\n",
		r.Positives, r.Negatives) +
		table([]string{"algorithm", "sensitivity", "FP rate", "FN rate"}, rows)
}

// figure8Series is one labelled corpus entry.
type figure8Series struct {
	values   []float64
	positive bool
}

// figure8Corpus builds the labelled test set: positives carry persistent
// regressions spanning small to large magnitudes; negatives are quiet,
// transient-ridden, or seasonal series — the §6.5 environment where a
// threshold low enough for small regressions floods naive detectors with
// transients.
func figure8Corpus(seed int64, nPos, nNeg int) []figure8Series {
	rng := newRng(seed)
	var corpus []figure8Series
	const n = 660
	for i := 0; i < nPos; i++ {
		base := 0.01 * math.Exp(rng.NormFloat64()*0.6)
		noise := base * (0.01 + rng.Float64()*0.01)
		// Small persistent shifts: 3-6 sigma of the per-point noise,
		// starting at varying positions in the analysis window.
		delta := noise * (3 + rng.Float64()*3)
		cp := 440 + rng.Intn(120)
		vals := make([]float64, n)
		for j := range vals {
			mu := base
			if j >= cp {
				mu += delta
			}
			vals[j] = mu + rng.NormFloat64()*noise
		}
		corpus = append(corpus, figure8Series{vals, true})
	}
	for i := 0; i < nNeg; i++ {
		base := 0.01 * math.Exp(rng.NormFloat64()*0.6)
		noise := base * (0.01 + rng.Float64()*0.01)
		vals := make([]float64, n)
		kind := i % 3
		// Transients with the SAME magnitude scale as the true
		// regressions, lasting up to hours (a large fraction of the test
		// window) but always recovering before the window ends — the
		// paper's core difficulty (§6.5).
		tStart := 420 + rng.Intn(140)
		tLen := 30 + rng.Intn(150)
		if tStart+tLen > n-25 {
			tLen = n - 25 - tStart
		}
		tMag := noise * (3 + rng.Float64()*5)
		for j := range vals {
			mu := base
			switch kind {
			case 1: // transient issue
				if j >= tStart && j < tStart+tLen {
					mu += tMag
				}
			case 2: // seasonality
				mu += noise * 4 * math.Sin(2*math.Pi*float64(j)/96)
			}
			vals[j] = mu + rng.NormFloat64()*noise
		}
		corpus = append(corpus, figure8Series{vals, false})
	}
	return corpus
}

// RunFigure8 evaluates FBDetect's short-term path (with went-away and
// seasonality filters) and the three EGADS algorithms across a sensitivity
// sweep on the same corpus, using the same window protocol the paper
// describes: EGADS sees FBDetect's historic window as its baseline and
// the analysis+extended windows combined as its test window.
func RunFigure8(seed int64) Figure8Result {
	corpus := figure8Corpus(seed, 80, 400)
	cfg := core.Config{
		Threshold: 0.00002,
		Windows: timeseries.WindowConfig{
			Historic: 400 * time.Minute,
			Analysis: 200 * time.Minute,
			Extended: 60 * time.Minute,
		},
	}.WithDefaults()

	res := Figure8Result{}
	var fp, fn, pos, neg int
	for _, s := range corpus {
		detected := fbdetectVerdict(cfg, s.values)
		if s.positive {
			pos++
			if !detected {
				fn++
			}
		} else {
			neg++
			if detected {
				fp++
			}
		}
	}
	res.Positives, res.Negatives = pos, neg
	res.FBDetect = Figure8Point{
		Algorithm: "FBDetect",
		FPRate:    float64(fp) / float64(neg),
		FNRate:    float64(fn) / float64(pos),
	}

	histN := 400
	for _, det := range egads.All() {
		for _, sens := range []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
			var fp, fn int
			for _, s := range corpus {
				detected := det.Detect(s.values[:histN], s.values[histN:], sens)
				if s.positive && !detected {
					fn++
				}
				if !s.positive && detected {
					fp++
				}
			}
			res.EGADS = append(res.EGADS, Figure8Point{
				Algorithm:   det.Name(),
				Sensitivity: sens,
				FPRate:      float64(fp) / float64(neg),
				FNRate:      float64(fn) / float64(pos),
			})
		}
	}
	return res
}

func fbdetectVerdict(cfg core.Config, values []float64) bool {
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	s := timeseries.New(start, time.Minute, values)
	ws, err := cfg.Windows.Cut(s, s.End())
	if err != nil {
		return false
	}
	r := core.DetectShortTerm(cfg, tsdb.ID("svc", "sub", "gcpu"), ws, s.End())
	if r == nil {
		return false
	}
	return core.CheckWentAway(cfg.WentAway, r).Keep &&
		core.CheckSeasonality(cfg.Seasonality, r).Keep &&
		core.PassesThreshold(cfg, r)
}
