package experiments

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"fbdetect/internal/pyperf"
)

// OverheadPoint is the measured throughput of the microbenchmark at one
// sampling rate.
type OverheadPoint struct {
	RateHz     float64 // samples per second (0 = sampling off)
	OpsPerSec  float64
	OverheadPc float64 // relative throughput loss vs sampling off
}

// OverheadResult reproduces §6.6: the PyPerf sampling-overhead experiment.
type OverheadResult struct {
	Points []OverheadPoint
}

func (r OverheadResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rate := "off"
		if p.RateHz > 0 {
			rate = fmt.Sprintf("%.0f Hz", p.RateHz)
		}
		rows = append(rows, []string{
			rate,
			fmt.Sprintf("%.0f", p.OpsPerSec),
			fmt.Sprintf("%.2f%%", p.OverheadPc),
		})
	}
	return "PyPerf sampling overhead (§6.6): serialize+compress microbenchmark\n" +
		table([]string{"sampling rate", "ops/sec", "overhead"}, rows)
}

// workItem is the "large data structure" the §6.6 microbenchmark
// repeatedly serializes and compresses.
type workItem struct {
	ID      int
	Name    string
	Tags    []string
	Metrics map[string]float64
	Blob    []byte
}

func newWorkItem() *workItem {
	w := &workItem{
		ID:      42,
		Name:    "fbdetect-overhead-benchmark",
		Tags:    make([]string, 64),
		Metrics: map[string]float64{},
		Blob:    make([]byte, 16<<10),
	}
	for i := range w.Tags {
		w.Tags[i] = fmt.Sprintf("tag-%04d", i)
	}
	for i := 0; i < 64; i++ {
		w.Metrics[fmt.Sprintf("metric-%03d", i)] = float64(i) * 1.7
	}
	for i := range w.Blob {
		w.Blob[i] = byte(i * 31)
	}
	return w
}

// microBenchOp serializes the item with gob, gzips it, and writes it to
// io.Discard — the paper's "serializes a large data structure, compresses
// it, and writes it to a file" workload.
func microBenchOp(w *workItem, buf *bytes.Buffer) error {
	buf.Reset()
	zw := gzip.NewWriter(buf)
	if err := gob.NewEncoder(zw).Encode(w); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	_, err := io.Copy(io.Discard, buf)
	return err
}

// RunOverhead measures microbenchmark throughput for the given duration
// with sampling off, at 1 Hz (the paper's worst-case production rate),
// and at two aggressive rates that make the overhead trend visible on a
// short run.
func RunOverhead(perPoint time.Duration) OverheadResult {
	target := func() pyperf.Process {
		return pyperf.Process{
			NativeStack: []string{"_start", pyperf.EvalFrameSymbol,
				pyperf.EvalFrameSymbol, "gzip_compress"},
			VCSHead: pyperf.BuildVCS("serialize_loop", "compress_payload"),
		}
	}
	measure := func(rateHz float64) float64 {
		var sampler *pyperf.Sampler
		if rateHz > 0 {
			sampler = pyperf.NewSampler(time.Duration(float64(time.Second)/rateHz), target)
			sampler.Start()
		}
		w := newWorkItem()
		var buf bytes.Buffer
		ops := 0
		deadline := time.Now().Add(perPoint)
		for time.Now().Before(deadline) {
			if err := microBenchOp(w, &buf); err != nil {
				panic(err)
			}
			ops++
		}
		if sampler != nil {
			sampler.Stop()
		}
		return float64(ops) / perPoint.Seconds()
	}

	res := OverheadResult{}
	baseline := measure(0)
	res.Points = append(res.Points, OverheadPoint{RateHz: 0, OpsPerSec: baseline})
	for _, rate := range []float64{1, 1000, 10000} {
		ops := measure(rate)
		res.Points = append(res.Points, OverheadPoint{
			RateHz:     rate,
			OpsPerSec:  ops,
			OverheadPc: (baseline - ops) / baseline * 100,
		})
	}
	return res
}
