package experiments

import (
	"fmt"
	"math"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// ScanThroughputResult measures the steady-state re-scan cost of one
// detection job: the first (cold) scan decodes and detects over every
// series, repeated scans over unchanged series are served from per-series
// detector checkpoints without decoding a chunk. The paper re-runs every
// configuration continuously at its re-run interval (Table 1), so the
// warm cost is what sizes the detection tier.
type ScanThroughputResult struct {
	Metrics     int
	WarmScans   int
	ColdScan    time.Duration // first scan, empty caches
	WarmScan    time.Duration // mean of repeated scans, unchanged series
	CacheHits   uint64        // detector-checkpoint hits
	CacheMisses uint64
}

func (r ScanThroughputResult) String() string {
	speedup := "n/a"
	if r.WarmScan > 0 {
		speedup = fmt.Sprintf("%.1fx", float64(r.ColdScan)/float64(r.WarmScan))
	}
	hitRate := "n/a"
	if total := r.CacheHits + r.CacheMisses; total > 0 {
		hitRate = fmtPct(float64(r.CacheHits) / float64(total))
	}
	rows := [][]string{
		{"cold scan (empty cache)", r.ColdScan.Round(time.Microsecond).String(), "1"},
		{"warm scan (unchanged series)", r.WarmScan.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.WarmScans)},
	}
	return fmt.Sprintf("Scan throughput (%d metrics, long-term path enabled)\n", r.Metrics) +
		table([]string{"scan", "wall time", "runs"}, rows) +
		fmt.Sprintf("warm speedup: %s, checkpoint hit rate: %s\n", speedup, hitRate)
}

// RunScanThroughput scans a 500-metric service repeatedly with one
// long-lived pipeline, timing the cold scan against the mean warm re-scan.
// The series do not change between scans, so every warm per-metric scan is
// a checkpoint hit — the best case, and the common one for the paper's
// sparse metrics that receive no new data between re-runs.
func RunScanThroughput(seed int64) ScanThroughputResult {
	const (
		nMetrics  = 500
		nPoints   = 540
		warmScans = 3
	)
	rng := newRng(seed)
	db := tsdb.New(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	for m := 0; m < nMetrics; m++ {
		id := tsdb.ID("warm", fmt.Sprintf("sub_%04d", m), "gcpu")
		base := 0.001 * (1 + rng.Float64())
		amp := base * 0.1 * rng.Float64() // some metrics mildly seasonal
		for i := 0; i < nPoints; i++ {
			v := base + amp*math.Sin(2*math.Pi*float64(i)/120) + rng.NormFloat64()*base*0.02
			if err := db.Append(id, start.Add(time.Duration(i)*time.Minute), v); err != nil {
				panic(err)
			}
		}
	}
	cfg := core.Config{
		Threshold: 0.0001,
		LongTerm:  true,
		Windows: timeseries.WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	pipe, err := core.NewPipeline(cfg, db, nil, nil)
	if err != nil {
		panic(err)
	}
	end := start.Add(9 * time.Hour)

	res := ScanThroughputResult{Metrics: nMetrics, WarmScans: warmScans}
	t0 := time.Now()
	if _, err := pipe.Scan("warm", end); err != nil {
		panic(err)
	}
	res.ColdScan = time.Since(t0)
	t0 = time.Now()
	for i := 0; i < warmScans; i++ {
		if _, err := pipe.Scan("warm", end); err != nil {
			panic(err)
		}
	}
	res.WarmScan = time.Since(t0) / warmScans
	res.CacheHits, res.CacheMisses, _ = pipe.CheckpointStats()
	return res
}
