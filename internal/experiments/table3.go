package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
	"fbdetect/internal/fleet"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// Table3Workload describes one column of the paper's Table 3.
type Table3Workload struct {
	Name string
	// Subroutines emitted as gCPU series.
	Subroutines int
	// TrueRegressions injected over the run.
	TrueRegressions int
	// CostShifts injected over the run.
	CostShifts int
	// TransientEvery is the interval between transient issues.
	TransientEvery time.Duration
	// SamplesPerStep controls gCPU noise.
	SamplesPerStep float64
	// LongTerm enables the long-term path (paper: FrontFaaS and AdServing
	// run it, PythonFaaS skips it).
	LongTerm bool
	Seed     int64
}

// Table3Column is the measured funnel for one workload.
type Table3Column struct {
	Workload Table3Workload
	Funnel   core.Funnel
	// TruePositivesReported counts injected regressions whose lineage was
	// reported (recall check, supplementing the paper's funnel).
	TruePositivesReported int
	Scans                 int
}

// Table3Result is the full table.
type Table3Result struct{ Columns []Table3Column }

func (r Table3Result) String() string {
	header := []string{"stage"}
	for _, c := range r.Columns {
		header = append(header, c.Workload.Name)
	}
	ratio := func(f core.Funnel, n int) string {
		total := f.ChangePoints + f.LongTermChangePoints
		if n == 0 {
			return "1/all"
		}
		return fmt.Sprintf("1/%.0f", float64(total)/float64(n))
	}
	rows := [][]string{
		{"# change points detected"},
		{"after went-away detection"},
		{"after seasonality detection"},
		{"after threshold filtering"},
		{"after SameRegressionMerger"},
		{"after SOMDedup"},
		{"after cost-shift analysis"},
		{"after PairwiseDedup"},
		{"injected regressions caught"},
	}
	for _, c := range r.Columns {
		f := c.Funnel
		rows[0] = append(rows[0], fmt.Sprintf("%d (+%d long-term)", f.ChangePoints, f.LongTermChangePoints))
		rows[1] = append(rows[1], ratio(f, f.AfterWentAway))
		rows[2] = append(rows[2], ratio(f, f.AfterSeasonality))
		rows[3] = append(rows[3], ratio(f, f.AfterThreshold))
		rows[4] = append(rows[4], ratio(f, f.AfterSameMerger))
		rows[5] = append(rows[5], ratio(f, f.AfterSOMDedup))
		rows[6] = append(rows[6], ratio(f, f.AfterCostShift))
		rows[7] = append(rows[7], ratio(f, f.AfterPairwise))
		rows[8] = append(rows[8], fmt.Sprintf("%d/%d", c.TruePositivesReported, c.Workload.TrueRegressions))
	}
	return "Table 3: filtering effectiveness (scaled-down one-week run)\n" +
		table(header, rows)
}

// Table3Workloads returns the scaled-down analogues of the paper's three
// workloads. The paper's month of production data over ~800k series is
// scaled to a simulated week over ~100-200 series per workload; ratios are
// therefore smaller but ordered the same way.
func Table3Workloads() []Table3Workload {
	return []Table3Workload{
		{Name: "FrontFaaS", Subroutines: 120, TrueRegressions: 3, CostShifts: 2,
			TransientEvery: 5 * time.Hour, SamplesPerStep: 3e5, LongTerm: true, Seed: 101},
		{Name: "PythonFaaS", Subroutines: 80, TrueRegressions: 2, CostShifts: 1,
			TransientEvery: 7 * time.Hour, SamplesPerStep: 1e5, LongTerm: false, Seed: 202},
		{Name: "AdServing", Subroutines: 60, TrueRegressions: 2, CostShifts: 0,
			TransientEvery: 6 * time.Hour, SamplesPerStep: 2e5, LongTerm: true, Seed: 303},
	}
}

// RunTable3 simulates each workload for a week with injected true
// regressions, cost shifts, and a steady drumbeat of transient issues,
// scans every four hours, and accumulates the per-stage funnel.
func RunTable3() Table3Result {
	res := Table3Result{}
	for _, w := range Table3Workloads() {
		res.Columns = append(res.Columns, runTable3Workload(w))
	}
	return res
}

func runTable3Workload(w Table3Workload) Table3Column {
	const step = 5 * time.Minute
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	days := 7
	end := start.Add(time.Duration(days) * 24 * time.Hour)
	rng := rand.New(rand.NewSource(w.Seed))

	tree := fleet.Generate(rng, w.Subroutines, 4)
	subs := tree.Subroutines()

	svc, err := fleet.NewService(fleet.Config{
		Name:           w.Name,
		Servers:        50000,
		Step:           step,
		SamplesPerStep: w.SamplesPerStep,
		BaseCPU:        0.5,
		CPUNoise:       0.08,
		SeasonalAmp:    0.06,
		SeasonalPeriod: 24 * time.Hour,
		BaseThroughput: 1e6,
		BaseLatency:    30,
		LatencyNoise:   0.8,
		Tree:           tree,
		Seed:           w.Seed * 7,
	})
	if err != nil {
		panic(err)
	}

	var log changelog.Log
	victims := pickVictims(rng, tree, subs, w.TrueRegressions)
	// True regressions land in the second half of the run so scans'
	// analysis windows cover them.
	for i, victim := range victims {
		at := start.Add(84*time.Hour + time.Duration(i)*12*time.Hour)
		v := victim
		svc.ScheduleChange(fleet.ScheduledChange{
			At:     at,
			Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight(v, 1.3) },
			Record: &changelog.Change{
				ID:          fmt.Sprintf("D-true-%d", i),
				Title:       "change " + v + " implementation",
				Subroutines: []string{v},
			},
		})
	}
	// Cost shifts between sibling pairs.
	shifts := 0
	for _, sub := range subs {
		if shifts >= w.CostShifts {
			break
		}
		node := tree.Node(sub)
		if node == nil || len(node.Children) < 2 {
			continue
		}
		a, b := node.Children[0].Name, node.Children[1].Name
		if tree.Node(a).SelfWeight <= 0 {
			continue
		}
		amount := tree.Node(a).SelfWeight * 0.5
		at := start.Add(96*time.Hour + time.Duration(shifts)*8*time.Hour)
		svc.ScheduleChange(fleet.ScheduledChange{
			At:     at,
			Effect: func(tr *fleet.Tree) error { return tr.ShiftWeight(a, b, amount) },
			Record: &changelog.Change{
				ID:          fmt.Sprintf("D-shift-%d", shifts),
				Title:       "refactor: move work from " + a + " to " + b,
				Subroutines: []string{a, b},
			},
		})
		shifts++
	}
	// Transient issues throughout.
	issueTypes := []fleet.IssueType{fleet.ServerFailure, fleet.Maintenance,
		fleet.LoadSpike, fleet.RollingUpdate, fleet.CanaryTest, fleet.TrafficShift}
	for at := start.Add(w.TransientEvery); at.Before(end); at = at.Add(w.TransientEvery) {
		typ := issueTypes[rng.Intn(len(issueTypes))]
		dur := time.Duration(10+rng.Intn(50)) * time.Minute
		svc.ScheduleIssue(fleet.DefaultIssue(typ, at, dur))
	}

	db := tsdb.New(step)
	if err := svc.Run(db, &log, start, end); err != nil {
		panic(err)
	}

	cfg := core.Config{
		Name:      w.Name,
		Threshold: 0.0002,
		Windows: timeseries.WindowConfig{
			Historic: 48 * time.Hour,
			Analysis: 8 * time.Hour,
			Extended: 4 * time.Hour,
		},
		LongTerm: w.LongTerm,
	}
	pipe, err := core.NewPipeline(cfg, db, &log, table3Samples{svc})
	if err != nil {
		panic(err)
	}

	col := Table3Column{Workload: w}
	caught := map[string]bool{}
	firstScan := start.Add(cfg.Windows.Total())
	for scan := firstScan; !scan.After(end); scan = scan.Add(4 * time.Hour) {
		r, err := pipe.Scan(w.Name, scan)
		if err != nil {
			panic(err)
		}
		col.Funnel.Add(r.Funnel)
		col.Scans++
		for _, reg := range r.Reported {
			for i, victim := range victims {
				if inLineage(tree, victim, reg.Entity) {
					caught[fmt.Sprintf("v%d", i)] = true
				}
			}
		}
	}
	col.TruePositivesReported = len(caught)
	return col
}

// pickVictims selects distinct mid-weight leaf subroutines to regress.
func pickVictims(rng *rand.Rand, tree *fleet.Tree, subs []string, n int) []string {
	var leaves []string
	for _, s := range subs {
		node := tree.Node(s)
		if len(node.Children) == 0 && node.SelfWeight > 1.0 {
			leaves = append(leaves, s)
		}
	}
	rng.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
	if n > len(leaves) {
		n = len(leaves)
	}
	return leaves[:n]
}

// inLineage reports whether entity is the victim or one of its ancestors
// (whose gCPU also regressed).
func inLineage(tree *fleet.Tree, victim, entity string) bool {
	if entity == victim {
		return true
	}
	for _, anc := range tree.Path(victim) {
		if anc == entity {
			return true
		}
	}
	return false
}

type table3Samples struct{ svc *fleet.Service }

func (p table3Samples) SamplesBetween(service string, from, to time.Time) *stacktrace.SampleSet {
	return p.svc.ExpectedSamplesBetween(from, to, 1e6)
}
