// Package experiments regenerates every table and figure of the FBDetect
// paper's evaluation (§2 simulations and §6) against this repository's
// implementation. Each RunX function is deterministic given its seed and
// returns a result struct with a String method that prints rows/series in
// the paper's layout. cmd/benchreport prints them all; the root package's
// bench_test.go wraps each in a testing.B benchmark.
//
// Scale note: experiments that the paper ran over weeks of production data
// on millions of servers are scaled down (documented per experiment) while
// preserving the statistical structure, so shapes — who wins, where
// detection becomes possible, what each filter removes — are comparable,
// not absolute values.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
)

// fmtPct renders a fraction as a percentage with enough digits for tiny
// regressions.
func fmtPct(x float64) string {
	return fmt.Sprintf("%.4f%%", x*100)
}

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// newRng returns a seeded generator; every experiment derives its
// randomness from an explicit seed for reproducibility.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
