package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
	"fbdetect/internal/fleet"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// RCAAccuracyResult reproduces §6.3: across many regressions with decoy
// changes, how often FBDetect suggests root causes, how often the true
// cause is in the top three, and whether it correctly stays silent when
// the true change was never exported to it.
type RCAAccuracyResult struct {
	Scenarios int
	// Suggested counts scenarios where FBDetect offered candidates.
	Suggested int
	// Top3Correct counts suggestions whose top-3 contains the true cause
	// (the paper's success criterion: 71 of 75).
	Top3Correct int
	// UnexportedSilent counts not-exported scenarios where FBDetect
	// appropriately suggested nothing (§6.3: 11 of 61 unexplained cases
	// were changes not exported to FBDetect).
	UnexportedScenarios int
	UnexportedSilent    int
}

func (r RCAAccuracyResult) String() string {
	pct := func(a, b int) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%d/%d (%.0f%%)", a, b, float64(a)/float64(b)*100)
	}
	rows := [][]string{
		{"suggested a root cause", pct(r.Suggested, r.Scenarios)},
		{"true cause in top-3 when suggested", pct(r.Top3Correct, r.Suggested)},
		{"silent when change not exported", pct(r.UnexportedSilent, r.UnexportedScenarios)},
	}
	return "Root-cause analysis accuracy (§6.3 style; paper: 71/75 = 95% top-3 when suggested)\n" +
		table([]string{"measure", "result"}, rows)
}

// RunRCAAccuracy runs many independent regression scenarios. Each deploys
// one true cause plus 6-14 decoy changes in the lookback window; a
// quarter of scenarios do NOT export the true change to the change log
// (the paper's "changes not exported to FBDetect" category), where the
// appropriate outcome is no suggestion.
func RunRCAAccuracy(seed int64) RCAAccuracyResult {
	rng := rand.New(rand.NewSource(seed))
	res := RCAAccuracyResult{}
	const scenarios = 40
	for i := 0; i < scenarios; i++ {
		exported := i%4 != 0
		suggested, correct := runRCAScenario(rng, int64(i)*131+seed, exported)
		res.Scenarios++
		if !exported {
			res.UnexportedScenarios++
			if !suggested {
				res.UnexportedSilent++
			}
			continue
		}
		if suggested {
			res.Suggested++
			if correct {
				res.Top3Correct++
			}
		}
	}
	return res
}

// runRCAScenario returns (suggested, top3Correct) for one scenario.
func runRCAScenario(rng *rand.Rand, seed int64, exportTrueChange bool) (bool, bool) {
	root := &fleet.Node{Name: "main", SelfWeight: 1, Children: []*fleet.Node{
		{Name: "handler", SelfWeight: 20, Children: []*fleet.Node{
			{Name: "victim", SelfWeight: 8},
			{Name: "sibling", SelfWeight: 12},
		}},
		{Name: "other", SelfWeight: 59},
	}}
	tree, err := fleet.NewTree(root)
	if err != nil {
		panic(err)
	}
	svc, err := fleet.NewService(fleet.Config{
		Name: "svc", Servers: 20000, Step: time.Minute,
		SamplesPerStep: 3e5, BaseCPU: 0.5, CPUNoise: 0.05,
		BaseThroughput: 1e4, Tree: tree, Seed: seed,
		EmitSubroutines: []string{"victim", "sibling", "handler", "other", "main"},
	})
	if err != nil {
		panic(err)
	}
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	changeAt := start.Add(7 * time.Hour)
	var log changelog.Log
	record := &changelog.Change{
		ID: "D-true", Title: "change victim computation",
		Subroutines: []string{"victim"},
	}
	if !exportTrueChange {
		record = nil
	}
	svc.ScheduleChange(fleet.ScheduledChange{
		At:     changeAt,
		Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("victim", 1.3) },
		Record: record,
	})
	// Decoy changes scattered through the lookback window, touching
	// subroutines disjoint from the victim's subtree. (A change to a
	// direct ancestor is a genuine suspect under Table 2's attribution —
	// every victim sample flows through it — so ancestors are not decoys.)
	decoys := 6 + rng.Intn(9)
	decoySubs := []string{"sibling", "other"}
	for d := 0; d < decoys; d++ {
		at := changeAt.Add(-time.Duration(1+rng.Intn(20)) * time.Hour)
		sub := decoySubs[rng.Intn(len(decoySubs))]
		log.Record(&changelog.Change{
			ID:          fmt.Sprintf("D-decoy-%d", d),
			Title:       fmt.Sprintf("refactor %s internals", sub),
			Subroutines: []string{sub},
			Service:     "svc",
			DeployedAt:  at,
		})
	}

	db := tsdb.New(time.Minute)
	end := start.Add(9 * time.Hour)
	if err := svc.Run(db, &log, start, end); err != nil {
		panic(err)
	}
	cfg := core.Config{
		Threshold: 0.005,
		MetricThresholds: map[string]float64{
			"throughput": 0.05, "cpu": 0.05,
		},
		MetricRelative: map[string]bool{"throughput": true, "cpu": true},
		Windows: timeseries.WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}
	pipe, err := core.NewPipeline(cfg, db, &log, table3Samples{svc})
	if err != nil {
		panic(err)
	}
	scan, err := pipe.Scan("svc", end)
	if err != nil {
		panic(err)
	}
	for _, r := range scan.Reported {
		if r.Entity != "victim" && r.Entity != "handler" && r.Entity != "main" {
			continue
		}
		if len(r.RootCauses) == 0 {
			return false, false
		}
		top := r.RootCauses
		if len(top) > 3 {
			top = top[:3]
		}
		for _, rc := range top {
			if rc.ChangeID == "D-true" {
				return true, true
			}
		}
		return true, false
	}
	return false, false
}
