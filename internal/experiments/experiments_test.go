package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFigure1Shapes(t *testing.T) {
	r := RunFigure1(1)
	if r.ADetectable {
		t.Error("a 0.005% shift must not be detectable from one noisy server")
	}
	if r.AFleetPValue > 0.01 {
		t.Errorf("fleet-averaged shift should be detectable, p=%v", r.AFleetPValue)
	}
	if !r.BFiltered {
		t.Error("cost shift (Figure 1b) not filtered")
	}
	if !r.CFiltered {
		t.Error("transient (Figure 1c) not filtered")
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Error("String() missing title")
	}
}

func TestFigure2Shape(t *testing.T) {
	r := RunFigure2(1)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Noise must shrink with fleet size; visibility only at the largest m.
	for i := 1; i < 3; i++ {
		if r.Points[i].NoiseSD >= r.Points[i-1].NoiseSD {
			t.Errorf("noise not shrinking: %v", r.Points)
		}
	}
	if r.Points[0].Visible {
		t.Error("500k servers should not make 0.005% visible at process level")
	}
	if !r.Points[2].Visible {
		t.Error("50M servers should make 0.005% visible")
	}
}

func TestFigure3MatchesFigure2With1000xFewerServers(t *testing.T) {
	f2 := RunFigure2(1)
	f3 := RunFigure3(1)
	for i := range f3.Points {
		if f3.Points[i].Servers*1000 != f2.Points[i].Servers {
			t.Errorf("server scaling wrong: %d vs %d",
				f3.Points[i].Servers, f2.Points[i].Servers)
		}
		// SNR at subroutine level with m servers should be comparable to
		// process level with 1000m servers (within noise).
		ratio := f3.Points[i].SNR / f2.Points[i].SNR
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("point %d: SNR ratio = %v, want ~1", i, ratio)
		}
	}
	if !f3.Points[2].Visible {
		t.Error("50k servers at subroutine level should make 0.005% visible")
	}
}

func TestTable1AllRowsDetect(t *testing.T) {
	r := RunTable1(1)
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Detected {
			t.Errorf("%s: regression at 1.5x threshold not detected", row.Spec.Name)
		}
		if row.FalsePositive {
			t.Errorf("%s: control run reported a false positive", row.Spec.Name)
		}
		if row.Detected {
			// The measured delta should be within 2x of the injected.
			if row.MeasuredDelta < row.Injected/2 || row.MeasuredDelta > row.Injected*2 {
				t.Errorf("%s: measured %v vs injected %v",
					row.Spec.Name, row.MeasuredDelta, row.Injected)
			}
		}
	}
}

func TestTable2Attribution(t *testing.T) {
	r := RunTable2()
	if !approxEq(r.GCPUBBefore, 0.09) || !approxEq(r.GCPUBAfter, 0.14) {
		t.Errorf("gCPU(B) = %v -> %v, want 0.09 -> 0.14", r.GCPUBBefore, r.GCPUBAfter)
	}
	if !approxEq(r.Attribution, 0.8) {
		t.Errorf("attribution = %v, want 0.8", r.Attribution)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestFigure5Reconstruction(t *testing.T) {
	r := RunFigure5()
	if !r.Correct {
		t.Errorf("merge incorrect: %v", r.Merged)
	}
	// The Scalene view must lose the native frame detail.
	for _, f := range r.ScaleneView {
		if f == "C-lib-foo" {
			t.Error("Scalene approximation should not name C-lib-foo")
		}
	}
}

func TestFigure7Verdicts(t *testing.T) {
	r := RunFigure7(1)
	if r.SpikeKept {
		t.Error("mid-window spike must be filtered")
	}
	if !r.RegressionKept {
		t.Error("end regression must be kept despite historic spike")
	}
}

func TestTable3FunnelShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 3 simulates three one-week workloads")
	}
	r := RunTable3()
	if len(r.Columns) != 3 {
		t.Fatalf("columns = %d", len(r.Columns))
	}
	for _, c := range r.Columns {
		f := c.Funnel
		if f.ChangePoints == 0 {
			t.Errorf("%s: no change points at all", c.Workload.Name)
		}
		// Went-away must be the dominant filter: at least 4x reduction.
		if f.AfterWentAway*4 > f.ChangePoints {
			t.Errorf("%s: went-away too weak: %d -> %d",
				c.Workload.Name, f.ChangePoints, f.AfterWentAway)
		}
		// Short-term path stages are monotone.
		if f.AfterSeasonality > f.AfterWentAway {
			t.Errorf("%s: seasonality stage grew the set", c.Workload.Name)
		}
		if f.AfterSOMDedup > f.AfterSameMerger || f.AfterCostShift > f.AfterSOMDedup ||
			f.AfterPairwise > f.AfterCostShift {
			t.Errorf("%s: funnel not monotone: %+v", c.Workload.Name, f)
		}
		// Recall: at least half of the injected regressions caught.
		if c.TruePositivesReported*2 < c.Workload.TrueRegressions {
			t.Errorf("%s: caught %d/%d injected regressions",
				c.Workload.Name, c.TruePositivesReported, c.Workload.TrueRegressions)
		}
		// PythonFaaS skips long-term detection (Table 3 note).
		if c.Workload.Name == "PythonFaaS" && f.LongTermChangePoints != 0 {
			t.Error("PythonFaaS should skip long-term detection")
		}
	}
}

func TestTable4Shape(t *testing.T) {
	r := RunTable4(1)
	if len(r.All) < 100 {
		t.Fatalf("too few detections: %d", len(r.All))
	}
	if len(r.All) != len(r.TR)+len(r.FP) {
		t.Error("All != TR + FP")
	}
	smallest := r.TR[0]
	for _, m := range r.TR {
		if m < smallest {
			smallest = m
		}
	}
	// The smallest true regression should be near the 0.005% floor.
	if smallest > 0.0002 {
		t.Errorf("smallest TR = %v, want near 0.00005", smallest)
	}
	// FPs skew large (paper: "the reported largest regressions tend to be
	// false positives").
	if len(r.FP) > 3 {
		if median(r.FP) <= median(r.TR) {
			t.Errorf("FP median %v should exceed TR median %v",
				median(r.FP), median(r.TR))
		}
	}
}

func median(xs []float64) float64 {
	c := append([]float64{}, xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func TestFigure8Tradeoff(t *testing.T) {
	r := RunFigure8(1)
	if r.FBDetect.FPRate > 0.01 {
		t.Errorf("FBDetect FP rate = %v, want ~0", r.FBDetect.FPRate)
	}
	if r.FBDetect.FNRate > 0.05 {
		t.Errorf("FBDetect FN rate = %v, want ~0", r.FBDetect.FNRate)
	}
	// No EGADS algorithm simultaneously achieves FP < 0.02 and FN < 0.2
	// (the paper's ~0.02 FP budget and EGADS's best 0.84 FN at that
	// budget).
	byAlgo := map[string]bool{}
	for _, p := range r.EGADS {
		if p.FPRate < 0.02 && p.FNRate < 0.2 {
			byAlgo[p.Algorithm] = true
		}
	}
	for algo := range byAlgo {
		t.Errorf("%s achieved both low FP and low FN — corpus too easy", algo)
	}
}

func TestAblationSOMGrid(t *testing.T) {
	r := RunAblationSOMGrid(1)
	if len(r.Points) < 3 {
		t.Fatal("missing grid points")
	}
	heuristic := r.Points[0]
	if heuristic.Purity < 0.99 {
		t.Errorf("heuristic grid purity = %v", heuristic.Purity)
	}
	// The heuristic should reduce at least as well as the big fixed grids.
	for _, p := range r.Points[2:] {
		if p.Reduction > heuristic.Reduction {
			t.Errorf("%s reduces better (%vx) than heuristic (%vx)",
				p.Grid, p.Reduction, heuristic.Reduction)
		}
	}
}

func TestAblationSAX(t *testing.T) {
	r := RunAblationSAX(1)
	var shipped *SAXPoint
	for i := range r.Points {
		if r.Points[i].Buckets == 20 && r.Points[i].ValidityPct == 3 {
			shipped = &r.Points[i]
		}
	}
	if shipped == nil {
		t.Fatal("shipped setting missing")
	}
	if shipped.TRKept < 0.9 || shipped.FPFiltered < 0.9 {
		t.Errorf("shipped SAX setting underperforms: %+v", *shipped)
	}
}

func TestAblationSeasonality(t *testing.T) {
	r := RunAblationSeasonality(1)
	var stlP, maP *SeasonalityHandlerPoint
	for i := range r.Points {
		switch r.Points[i].Method {
		case "STL":
			stlP = &r.Points[i]
		case "moving average":
			maP = &r.Points[i]
		}
	}
	if stlP == nil || maP == nil {
		t.Fatal("missing methods")
	}
	// The paper's criterion: STL is robust against sudden changes — its
	// step edge must be much sharper than the moving average's.
	if stlP.TransitionWidth*4 > maP.TransitionWidth {
		t.Errorf("STL width %d not clearly sharper than MA width %d",
			stlP.TransitionWidth, maP.TransitionWidth)
	}
}

func TestAblationWentAwayIterations(t *testing.T) {
	r := RunAblationWentAway(1)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	shipped := r.Points[2]
	if shipped.TRKept < 0.95 || shipped.FPFiltered < 0.95 {
		t.Errorf("shipped went-away underperforms: %+v", shipped)
	}
	// Each earlier iteration must lose true regressions to its trap.
	if r.Points[0].TRKept >= shipped.TRKept {
		t.Errorf("iteration 1 should lose TRs to the dip trap: %+v", r.Points[0])
	}
	if r.Points[1].TRKept >= shipped.TRKept {
		t.Errorf("iteration 2 should lose TRs to the historic-spike trap: %+v", r.Points[1])
	}
}

func TestAblationStageOrder(t *testing.T) {
	r := RunAblationStageOrder(1)
	if len(r.Points) != 2 {
		t.Fatal("missing orderings")
	}
	fast, slow := r.Points[0], r.Points[1]
	if fast.CostShiftCalls >= slow.CostShiftCalls {
		t.Errorf("fast-first should call cost shift less: %d vs %d",
			fast.CostShiftCalls, slow.CostShiftCalls)
	}
}

func TestOverheadRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement takes wall time")
	}
	r := RunOverhead(200 * time.Millisecond)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.OpsPerSec <= 0 {
			t.Errorf("rate %v: no throughput measured", p.RateHz)
		}
	}
}

func TestResultStringsNonEmpty(t *testing.T) {
	for name, s := range map[string]string{
		"table2":      RunTable2().String(),
		"figure5":     RunFigure5().String(),
		"figure7":     RunFigure7(1).String(),
		"som-grid":    RunAblationSOMGrid(1).String(),
		"stage-order": RunAblationStageOrder(1).String(),
	} {
		if len(s) < 40 {
			t.Errorf("%s: suspiciously short output %q", name, s)
		}
	}
}

func TestExpression1Scaling(t *testing.T) {
	r := RunExpression1(1)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// The threshold must shrink monotonically with n.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].MinDelta >= r.Points[i-1].MinDelta {
			t.Errorf("threshold not shrinking: %+v", r.Points)
		}
	}
	// Expression 1 predicts exponent -0.5; allow simulation slack.
	if r.FitExponent < -0.6 || r.FitExponent > -0.4 {
		t.Errorf("fitted exponent = %v, want ~-0.5", r.FitExponent)
	}
}

func TestLongTermPaths(t *testing.T) {
	r := RunLongTerm(1)
	byName := map[string]LongTermPoint{}
	for _, p := range r.Points {
		byName[p.Scenario] = p
	}
	if !byName["sudden step"].ShortTermCaught || !byName["sudden step"].LongTermCaught {
		t.Errorf("step not caught: %+v", byName["sudden step"])
	}
	if !byName["slow drift"].LongTermCaught {
		t.Errorf("drift missed by long-term path: %+v", byName["slow drift"])
	}
	// Gradual drift: change point at the start of the trend (§5.3).
	if loc := byName["slow drift"].LongTermLocation; loc > 60 {
		t.Errorf("drift change point = %d, want near 0", loc)
	}
	ctrl := byName["flat control"]
	if ctrl.ShortTermCaught || ctrl.LongTermCaught {
		t.Errorf("control falsely caught: %+v", ctrl)
	}
}

func TestDetectionDelay(t *testing.T) {
	r := RunDetectionDelay(1)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	fast, mid, slow := r.Points[0], r.Points[1], r.Points[2]
	if fast.Delay < 0 || mid.Delay < 0 {
		t.Fatalf("intervals within the analysis window must detect: %+v", r.Points)
	}
	if fast.Delay > mid.Delay {
		t.Errorf("faster re-runs should detect sooner: %v vs %v", fast.Delay, mid.Delay)
	}
	if fast.Scans <= mid.Scans {
		t.Error("faster re-runs must scan more often")
	}
	// A re-run interval exceeding the analysis window can let regressions
	// slide from the analysis window into history between scans — the
	// reason Table 1 keeps rerun <= analysis everywhere.
	if slow.Delay >= 0 && slow.Delay < mid.Delay {
		t.Errorf("implausible: slowest interval detected fastest: %+v", r.Points)
	}
}

func TestRCAAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("40 simulated scenarios")
	}
	r := RunRCAAccuracy(1)
	if r.Scenarios != 40 {
		t.Fatalf("scenarios = %d", r.Scenarios)
	}
	if r.Suggested == 0 {
		t.Fatal("no scenario got a suggestion")
	}
	// Paper: 71/75 (95%) top-3 accuracy when a cause is suggested.
	if acc := float64(r.Top3Correct) / float64(r.Suggested); acc < 0.85 {
		t.Errorf("top-3 accuracy = %.2f, want >= 0.85", acc)
	}
	// Staying silent when the change was never exported is the correct
	// behavior (§6.3); require a strong majority.
	if r.UnexportedScenarios > 0 {
		if frac := float64(r.UnexportedSilent) / float64(r.UnexportedScenarios); frac < 0.7 {
			t.Errorf("silence on unexported changes = %.2f, want >= 0.7", frac)
		}
	}
}

func TestScanThroughputShape(t *testing.T) {
	r := RunScanThroughput(1)
	if r.CacheHits == 0 {
		t.Error("warm scans recorded no detector-checkpoint hits")
	}
	if r.ColdScan <= 0 || r.WarmScan <= 0 {
		t.Errorf("timings not recorded: cold=%v warm=%v", r.ColdScan, r.WarmScan)
	}
	if !strings.Contains(r.String(), "Scan throughput") {
		t.Error("String() missing title")
	}
}
