package experiments

import (
	"fmt"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/fleet"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// DelayPoint is the measured detection delay at one re-run interval.
type DelayPoint struct {
	RerunInterval time.Duration
	Delay         time.Duration // first report time - deploy time; -1 if missed
	Scans         int
}

// DetectionDelayResult measures how the re-run interval trades
// infrastructure cost against timeliness — the reason Table 1 runs a
// fast/coarse and a slow/fine configuration side by side per workload.
type DetectionDelayResult struct {
	Points []DelayPoint
}

func (r DetectionDelayResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		delay := "missed"
		if p.Delay >= 0 {
			delay = p.Delay.String()
		}
		rows = append(rows, []string{p.RerunInterval.String(), delay,
			fmt.Sprintf("%d", p.Scans)})
	}
	return "Detection delay vs re-run interval (regression deployed mid-run)\n" +
		table([]string{"re-run interval", "delay to first report", "scans"}, rows)
}

type delaySamples struct{ svc *fleet.Service }

func (p delaySamples) SamplesBetween(service string, from, to time.Time) *stacktrace.SampleSet {
	return p.svc.ExpectedSamplesBetween(from, to, 1e6)
}

// RunDetectionDelay deploys a clear regression mid-run and measures, for
// several re-run intervals, how long until the first report. Shorter
// intervals catch it sooner but scan (and burn capacity) more often —
// the paper's motivation for the per-workload interval tuning of Table 1.
func RunDetectionDelay(seed int64) DetectionDelayResult {
	const step = 5 * time.Minute
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	deployAt := start.Add(30 * time.Hour)
	end := start.Add(40 * time.Hour)

	res := DetectionDelayResult{}
	for _, rerun := range []time.Duration{30 * time.Minute, 2 * time.Hour, 6 * time.Hour} {
		// Fresh simulation per interval so merger state is independent.
		root := &fleet.Node{Name: "main", SelfWeight: 1, Children: []*fleet.Node{
			{Name: "handler", SelfWeight: 30, Children: []*fleet.Node{
				{Name: "victim", SelfWeight: 9},
			}},
			{Name: "other", SelfWeight: 60},
		}}
		tree, err := fleet.NewTree(root)
		if err != nil {
			panic(err)
		}
		svc, err := fleet.NewService(fleet.Config{
			Name: "svc", Servers: 20000, Step: step,
			SamplesPerStep: 3e5, BaseCPU: 0.5, CPUNoise: 0.05,
			BaseThroughput: 1e5, Tree: tree, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		svc.ScheduleChange(fleet.ScheduledChange{
			At:     deployAt,
			Effect: func(tr *fleet.Tree) error { return tr.ScaleSelfWeight("victim", 1.25) },
		})
		db := tsdb.New(step)
		if err := svc.Run(db, nil, start, end); err != nil {
			panic(err)
		}
		cfg := core.Config{
			Threshold:     0.005,
			RerunInterval: rerun,
			Windows: timeseries.WindowConfig{
				Historic: 20 * time.Hour,
				Analysis: 4 * time.Hour,
				Extended: time.Hour,
			},
		}
		pipe, err := core.NewPipeline(cfg, db, nil, delaySamples{svc})
		if err != nil {
			panic(err)
		}
		mon, err := core.NewMonitor(pipe, rerun)
		if err != nil {
			panic(err)
		}
		mon.Watch("svc")
		point := DelayPoint{RerunInterval: rerun, Delay: -1}
		for scan := start.Add(cfg.Windows.Total()); !scan.After(end); scan = scan.Add(rerun) {
			if err := mon.ScanOnce(scan); err != nil {
				panic(err)
			}
			point.Scans++
			if len(mon.Reports()) > 0 && point.Delay < 0 {
				point.Delay = scan.Sub(deployAt)
			}
		}
		res.Points = append(res.Points, point)
	}
	return res
}
