package experiments

import (
	"fmt"
	"strings"

	"fbdetect/internal/core"
	"fbdetect/internal/pyperf"
	"fbdetect/internal/tsdb"
)

// Figure5Result reproduces paper Figure 5: PyPerf's end-to-end stack
// reconstruction from the system stack and CPython's virtual call stack.
type Figure5Result struct {
	SystemStack []string
	VCS         []string
	Merged      []string
	ScaleneView []string // what a Python-level profiler would see
	Correct     bool
}

func (r Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: PyPerf stack reconstruction\n")
	fmt.Fprintf(&b, "  system stack: %s\n", strings.Join(r.SystemStack, " -> "))
	fmt.Fprintf(&b, "  virtual call stack: %s\n", strings.Join(r.VCS, " -> "))
	fmt.Fprintf(&b, "  merged (PyPerf): %s\n", strings.Join(r.Merged, " -> "))
	fmt.Fprintf(&b, "  Scalene-style approximation: %s\n", strings.Join(r.ScaleneView, " -> "))
	fmt.Fprintf(&b, "  reconstruction correct: %v\n", r.Correct)
	return b.String()
}

// RunFigure5 builds the Figure 5 process (two Python frames, one native
// C-library leaf) and merges it.
func RunFigure5() Figure5Result {
	p := pyperf.Process{
		NativeStack: []string{
			"_start", "main", "Py_RunMain",
			pyperf.EvalFrameSymbol, // Py-funX
			"call_function",
			pyperf.EvalFrameSymbol, // Py-funZ
			"cfunction_call",
			"C-lib-foo",
		},
		VCSHead: pyperf.BuildVCS("Py-funX", "Py-funZ"),
	}
	res := Figure5Result{
		SystemStack: p.NativeStack,
		VCS:         []string{"Py-funX", "Py-funZ"},
	}
	merged, err := pyperf.MergeStack(p)
	if err != nil {
		return res
	}
	res.Merged = merged
	if approx, err := pyperf.ScaleneApproximation(p); err == nil {
		res.ScaleneView = approx
	}
	want := []string{"_start", "main", "Py_RunMain", "Py-funX", "call_function",
		"Py-funZ", "cfunction_call", "C-lib-foo"}
	res.Correct = len(merged) == len(want)
	for i := range want {
		if i >= len(merged) || merged[i] != want[i] {
			res.Correct = false
		}
	}
	return res
}

// Figure7Result reproduces paper Figure 7: a spike in the middle of the
// window must not mask a true regression at the end.
type Figure7Result struct {
	SpikeKept      bool // verdict on the mid-window spike (should be false)
	RegressionKept bool // verdict on the end regression (should be true)
}

func (r Figure7Result) String() string {
	return fmt.Sprintf("Figure 7: went-away robustness\n"+
		"  mid-window spike reported:   %v (want false)\n"+
		"  end regression reported:     %v (want true)\n",
		r.SpikeKept, r.RegressionKept)
}

// RunFigure7 builds the Figure 7 series — historic noise, a transient
// spike, then a true regression at the end — and checks both verdicts.
func RunFigure7(seed int64) Figure7Result {
	rng := newRng(seed)
	mk := func(n int, mu float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = mu + rng.NormFloat64()*0.2
		}
		return out
	}
	hist := mk(400, 10)

	// Scenario A: the analysis window contains the spike, which recovers.
	spikeAnalysis := append(mk(80, 10), mk(16, 14)...)
	spikeAnalysis = append(spikeAnalysis, mk(104, 10)...)
	wsA := buildWindows(hist, spikeAnalysis, mk(60, 10))
	regA := core.NewRegressionRecord(tsdb.ID("svc", "sub", "gcpu"))
	regA.Windows = wsA
	regA.ChangePoint = 80
	regA.ChangePointTime = wsA.Analysis.TimeAt(80)
	regA.Before, regA.After = 10, 10.3
	regA.Delta = 0.3

	// Scenario B: history contains the spike; the analysis window ends in
	// a true regression.
	histB := mk(400, 10)
	for i := 180; i < 190; i++ {
		histB[i] = 14
	}
	endAnalysis := append(mk(120, 10), mk(80, 11.2)...)
	wsB := buildWindows(histB, endAnalysis, mk(60, 11.2))
	regB := core.NewRegressionRecord(tsdb.ID("svc", "sub", "gcpu"))
	regB.Windows = wsB
	regB.ChangePoint = 120
	regB.ChangePointTime = wsB.Analysis.TimeAt(120)
	regB.Before, regB.After = 10, 11.2
	regB.Delta = 1.2

	return Figure7Result{
		SpikeKept:      core.CheckWentAway(core.WentAwayConfig{}, regA).Keep,
		RegressionKept: core.CheckWentAway(core.WentAwayConfig{}, regB).Keep,
	}
}
