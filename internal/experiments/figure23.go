package experiments

import (
	"fmt"
	"math"

	"fbdetect/internal/stats"
)

// AveragingPoint is one panel of Figure 2 or Figure 3: the residual noise
// and detectability after averaging m servers' series.
type AveragingPoint struct {
	Servers int
	NoiseSD float64 // sd of the averaged series around its mean
	SNR     float64 // shift / NoiseSD: >1 means the step clears the noise floor
	Visible bool    // SNR > 1, the paper's "can you see it" criterion
	PValue  float64 // Welch t-test on before/after halves
}

// Figure2Result reproduces Figure 2: averaging m process-level series.
type Figure2Result struct {
	Shift  float64 // the blended regression (0.005%)
	Points []AveragingPoint
	// Scale is the divisor applied to the paper's server counts
	// (simulating 50M servers pointwise is wasteful; the averaged series'
	// noise is modeled exactly as sigma/sqrt(m), so Scale is 1).
	Scale int
}

func (r Figure2Result) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("m=%d", p.Servers),
			fmt.Sprintf("%.6f", p.NoiseSD),
			fmt.Sprintf("%.2f", p.SNR),
			fmt.Sprintf("%v", p.Visible),
			fmt.Sprintf("%.3g", p.PValue),
		})
	}
	return fmt.Sprintf("Figure 2: process-level averaging (shift=%s)\n", fmtPct(r.Shift)) +
		table([]string{"servers", "noise sd", "SNR", "visible", "p-value"}, rows)
}

// RunFigure2 reproduces Figure 2's setup: half the fleet at mu=40%,
// sigma^2=0.01 with a +0.003% regression, half at mu=60%, sigma^2=0.02
// with +0.007%, averaged over m servers for m in {500k, 5M, 50M}.
//
// Averaging m iid normal series yields a normal series with sd/sqrt(m);
// the averaged series is modeled directly (statistically exact) rather
// than materializing 50M series.
func RunFigure2(seed int64) Figure2Result {
	rng := newRng(seed)
	res := Figure2Result{Shift: 0.00005, Scale: 1}
	const n = 1000 // points per half
	for _, m := range []int{500000, 5000000, 50000000} {
		// Averaged series: mean 50%, regression (0.003+0.007)/2 = 0.005%.
		// Variance of the average of m/2 servers at var 0.01 and m/2 at
		// var 0.02: (0.25*0.01 + 0.25*0.02) * (2/m)^... computed directly:
		// Var = (1/m^2) * (m/2*0.01 + m/2*0.02) = 0.015/m.
		sd := math.Sqrt(0.015 / float64(m))
		series := make([]float64, 2*n)
		for i := range series {
			mu := 0.5
			if i >= n {
				mu += 0.00005
			}
			series[i] = mu + rng.NormFloat64()*sd
		}
		tt := stats.WelchTTest(series[:n], series[n:])
		noiseSD := stats.StdDev(series[:n])
		res.Points = append(res.Points, AveragingPoint{
			Servers: m,
			NoiseSD: noiseSD,
			SNR:     0.00005 / noiseSD,
			Visible: 0.00005/noiseSD > 1,
			PValue:  tt.P,
		})
	}
	return res
}

// Figure3Result reproduces Figure 3: subroutine-level averaging detects
// the same regression with 1000x fewer servers.
type Figure3Result struct {
	K      int // subroutines per process
	Shift  float64
	Points []AveragingPoint
}

func (r Figure3Result) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("m=%d", p.Servers),
			fmt.Sprintf("%.6f", p.NoiseSD),
			fmt.Sprintf("%.2f", p.SNR),
			fmt.Sprintf("%v", p.Visible),
			fmt.Sprintf("%.3g", p.PValue),
		})
	}
	return fmt.Sprintf("Figure 3: subroutine-level averaging (k=%d, 1000x fewer servers)\n", r.K) +
		table([]string{"servers", "noise sd", "SNR", "visible", "p-value"}, rows)
}

// RunFigure3 reproduces Figure 3: the process-level CPU of Figure 2 is
// spread across k=1000 subroutines, so the target subroutine's variance is
// 1/k of the process's (paper Expression 2), and m in {500, 5k, 50k} —
// 1000x fewer servers than Figure 2 — suffices.
func RunFigure3(seed int64) Figure3Result {
	rng := newRng(seed)
	const k = 1000
	res := Figure3Result{K: k, Shift: 0.00005}
	const n = 1000
	for _, m := range []int{500, 5000, 50000} {
		// Per-server subroutine variance = process variance / k; the
		// average over m servers divides by m again.
		sd := math.Sqrt(0.015 / float64(k) / float64(m))
		series := make([]float64, 2*n)
		for i := range series {
			mu := 0.5 / k // the subroutine's share of the process mean
			if i >= n {
				mu += 0.00005
			}
			v := mu + rng.NormFloat64()*sd
			if v < 0 {
				v = 0 // gCPU cannot be negative (paper footnote 2)
			}
			series[i] = v
		}
		tt := stats.WelchTTest(series[:n], series[n:])
		noiseSD := stats.StdDev(series[:n])
		res.Points = append(res.Points, AveragingPoint{
			Servers: m,
			NoiseSD: noiseSD,
			SNR:     0.00005 / noiseSD,
			Visible: 0.00005/noiseSD > 1,
			PValue:  tt.P,
		})
	}
	return res
}
