package experiments

import (
	"fmt"

	"fbdetect/internal/stacktrace"
)

// Table2Result reproduces paper Table 2: the gCPU attribution example for
// a regression in subroutine B caused by a change modifying A and E.
type Table2Result struct {
	Rows        [][3]string // trace, gCPU before, gCPU after
	GCPUBBefore float64
	GCPUBAfter  float64
	R           float64 // regression magnitude
	L           float64 // magnitude through changed subroutines
	Attribution float64 // L/R, the paper's 80%
}

func (r Table2Result) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row[0], row[1], row[2]})
	}
	rows = append(rows, []string{"Total",
		fmt.Sprintf("%.2f", r.GCPUBBefore), fmt.Sprintf("%.2f", r.GCPUBAfter)})
	return "Table 2: gCPU attribution for subroutine B (change modifies A, E)\n" +
		table([]string{"stack-trace samples", "gCPU before", "gCPU after"}, rows) +
		fmt.Sprintf("R=%.2f L=%.2f attribution L/R=%.0f%%\n", r.R, r.L, r.Attribution*100)
}

// RunTable2 reproduces Table 2 exactly using the stacktrace package's gCPU
// machinery and verifies the 80% attribution.
func RunTable2() Table2Result {
	before := stacktrace.NewSampleSet()
	before.AddTraceString("A->B->C", 0.01)
	before.AddTraceString("B->E->F", 0.02)
	before.AddTraceString("D->B->C", 0.02)
	before.AddTraceString("B->E->D", 0.04)
	before.AddTraceString("Other", 0.91)
	after := stacktrace.NewSampleSet()
	after.AddTraceString("A->B->C", 0.02)
	after.AddTraceString("B->E->F", 0.03)
	after.AddTraceString("D->B->C", 0.02)
	after.AddTraceString("B->E->D", 0.06)
	after.AddTraceString("G->B->D", 0.01)
	after.AddTraceString("Other", 0.86)

	res := Table2Result{
		Rows: [][3]string{
			{"A->B->C", "0.01", "0.02"},
			{"B->E->F", "0.02", "0.03"},
			{"D->B->C", "0.02", "0.02"},
			{"B->E->D", "0.04", "0.06"},
			{"G->B->D", "does not exist", "0.01"},
		},
	}
	res.GCPUBBefore = before.GCPU("B")
	res.GCPUBAfter = after.GCPU("B")
	res.R = res.GCPUBAfter - res.GCPUBBefore
	changed := map[string]bool{"A": true, "E": true}
	res.L = after.GCPUIntersection("B", changed) - before.GCPUIntersection("B", changed)
	res.Attribution = res.L / res.R
	return res
}
