package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/fleet"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// StageOrderPoint is one ordering's cost.
type StageOrderPoint struct {
	Order               string
	CostShiftCalls      int
	PairwiseComparisons int
	Elapsed             time.Duration
	Reported            int
}

// AblationStageOrderResult compares the paper's fast-filters-first
// ordering (§5.1: "execute faster algorithms in the early steps ...
// reducing computation in the later, more resource-intensive steps")
// against running the expensive cost-shift analysis before SOMDedup.
type AblationStageOrderResult struct{ Points []StageOrderPoint }

func (r AblationStageOrderResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Order,
			fmt.Sprintf("%d", p.CostShiftCalls),
			fmt.Sprintf("%d", p.PairwiseComparisons),
			p.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", p.Reported)})
	}
	return "Ablation: pipeline stage ordering\n" +
		table([]string{"order", "cost-shift calls", "pairwise comparisons", "elapsed", "reported"}, rows)
}

// RunAblationStageOrder builds a batch of correlated regression candidates
// (many callers of one regressed subroutine — the SOMDedup motivating
// case) and processes them with both orderings.
func RunAblationStageOrder(seed int64) AblationStageOrderResult {
	rng := rand.New(rand.NewSource(seed))

	// A tree where one hot subroutine is called from many places: its
	// regression surfaces in dozens of gCPU series at once.
	root := &fleet.Node{Name: "main", SelfWeight: 1}
	const callers = 48
	for i := 0; i < callers; i++ {
		caller := &fleet.Node{Name: fmt.Sprintf("caller_%02d", i), SelfWeight: 2,
			Children: []*fleet.Node{{Name: fmt.Sprintf("shared_via_%02d", i), SelfWeight: 5}}}
		root.Children = append(root.Children, caller)
	}
	tree, err := fleet.NewTree(root)
	if err != nil {
		panic(err)
	}
	before := tree.ExpectedSamples(1e6)
	afterTree := tree.Clone()
	for i := 0; i < callers; i++ {
		afterTree.ScaleSelfWeight(fmt.Sprintf("shared_via_%02d", i), 1.2)
	}
	after := afterTree.ExpectedSamples(1e6)

	// One regression candidate per caller series, sharing shape.
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	mkRegression := func(i int) *core.Regression {
		vals := make([]float64, 660)
		base := tree.GCPU(fmt.Sprintf("caller_%02d", i))
		for j := range vals {
			mu := base
			if j >= 500 {
				mu = afterTree.GCPU(fmt.Sprintf("caller_%02d", i))
			}
			vals[j] = mu + rng.NormFloat64()*base*0.01
		}
		s := timeseries.New(start, time.Minute, vals)
		cfgW := timeseries.WindowConfig{Historic: 400 * time.Minute,
			Analysis: 200 * time.Minute, Extended: 60 * time.Minute}
		ws, err := cfgW.Cut(s, s.End())
		if err != nil {
			panic(err)
		}
		r := core.NewRegressionRecord(tsdb.ID("svc", fmt.Sprintf("caller_%02d", i), "gcpu"))
		r.Windows = ws
		r.ChangePoint = 100
		r.ChangePointTime = ws.Analysis.TimeAt(100)
		r.Before = base
		r.After = afterTree.GCPU(fmt.Sprintf("caller_%02d", i))
		r.Delta = r.After - r.Before
		if r.Before > 0 {
			r.Relative = r.Delta / r.Before
		}
		return r
	}
	fresh := func() []*core.Regression {
		out := make([]*core.Regression, callers)
		for i := range out {
			out[i] = mkRegression(i)
		}
		return out
	}

	cfg := core.Config{Threshold: 1e-6, Windows: timeseries.WindowConfig{
		Historic: 400 * time.Minute, Analysis: 200 * time.Minute,
		Extended: 60 * time.Minute}}.WithDefaults()

	run := func(name string, somFirst bool) StageOrderPoint {
		regs := fresh()
		t0 := time.Now()
		costShiftCalls := 0
		costShift := func(rs []*core.Regression) []*core.Regression {
			var out []*core.Regression
			for _, r := range rs {
				costShiftCalls++
				if !core.CheckCostShift(cfg.CostShift, nil, r, before, after).IsCostShift {
					out = append(out, r)
				}
			}
			return out
		}
		somDedup := func(rs []*core.Regression) []*core.Regression {
			res := core.SOMDedup(cfg.Dedup, rs, nil)
			var reps []*core.Regression
			for _, ri := range res.Representatives {
				reps = append(reps, rs[ri])
			}
			return reps
		}
		var survivors []*core.Regression
		if somFirst {
			survivors = costShift(somDedup(regs))
		} else {
			survivors = somDedup(costShift(regs))
		}
		pd := core.NewPairwiseDeduper(cfg.Dedup, after)
		pairwise := 0
		reported := 0
		for _, r := range survivors {
			pairwise += len(pd.Groups())
			if _, merged := pd.Merge(r); !merged {
				reported++
			}
		}
		return StageOrderPoint{Order: name, CostShiftCalls: costShiftCalls,
			PairwiseComparisons: pairwise, Elapsed: time.Since(t0), Reported: reported}
	}

	return AblationStageOrderResult{Points: []StageOrderPoint{
		run("fast-first (SOMDedup -> cost shift, shipped)", true),
		run("expensive-first (cost shift -> SOMDedup)", false),
	}}
}
