package experiments

import (
	"fmt"
	"math"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/som"
	"fbdetect/internal/stats"
	"fbdetect/internal/stl"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// --- SOM grid ablation (paper §5.5.1: L = ceil(n^(1/4)) is robust) ---

// SOMGridPoint is the clustering quality at one grid choice.
type SOMGridPoint struct {
	Grid      string
	Groups    int
	Purity    float64 // fraction of groups containing a single true cluster
	Reduction float64 // inputs per group
}

// AblationSOMGridResult compares the paper's grid heuristic against fixed
// grids on a corpus of regressions from known clusters.
type AblationSOMGridResult struct {
	Inputs   int
	Clusters int
	Points   []SOMGridPoint
}

func (r AblationSOMGridResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Grid, fmt.Sprintf("%d", p.Groups),
			fmt.Sprintf("%.2f", p.Purity), fmt.Sprintf("%.1fx", p.Reduction)})
	}
	return fmt.Sprintf("Ablation: SOM grid size (%d regressions from %d true clusters)\n",
		r.Inputs, r.Clusters) +
		table([]string{"grid", "groups", "purity", "reduction"}, rows)
}

// RunAblationSOMGrid clusters 96 feature vectors drawn from 6 well
// separated clusters under several grid sizes.
func RunAblationSOMGrid(seed int64) AblationSOMGridResult {
	rng := newRng(seed)
	const clusters = 6
	const perCluster = 16
	var vectors [][]float64
	var labels []int
	for c := 0; c < clusters; c++ {
		cx, cy := float64(c%3)*10, float64(c/3)*10
		for i := 0; i < perCluster; i++ {
			vectors = append(vectors, []float64{
				cx + rng.NormFloat64()*0.4,
				cy + rng.NormFloat64()*0.4,
			})
			labels = append(labels, c)
		}
	}
	n := len(vectors)
	res := AblationSOMGridResult{Inputs: n, Clusters: clusters}
	heuristic := som.GridSize(n)
	grids := []struct {
		name       string
		rows, cols int
	}{
		{fmt.Sprintf("heuristic %dx%d", heuristic, heuristic), heuristic, heuristic},
		{"fixed 2x2", 2, 2},
		{"fixed 8x8", 8, 8},
		{"fixed 16x16", 16, 16},
	}
	for _, g := range grids {
		groups, err := som.Cluster(vectors, som.Options{Rows: g.rows, Cols: g.cols, Seed: seed})
		if err != nil {
			continue
		}
		pure := 0
		for _, grp := range groups {
			first := labels[grp[0]]
			ok := true
			for _, i := range grp[1:] {
				if labels[i] != first {
					ok = false
				}
			}
			if ok {
				pure++
			}
		}
		res.Points = append(res.Points, SOMGridPoint{
			Grid:      g.name,
			Groups:    len(groups),
			Purity:    float64(pure) / float64(len(groups)),
			Reduction: float64(n) / float64(len(groups)),
		})
	}
	return res
}

// --- SAX parameter ablation (paper §5.2.2: N=20, X=3% is robust) ---

// SAXPoint is went-away accuracy at one (N, X) setting.
type SAXPoint struct {
	Buckets     int
	ValidityPct float64
	TRKept      float64 // fraction of true regressions kept
	FPFiltered  float64 // fraction of transients filtered
}

// AblationSAXResult sweeps SAX parameters through the went-away detector.
type AblationSAXResult struct{ Points []SAXPoint }

func (r AblationSAXResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("N=%d X=%g%%", p.Buckets, p.ValidityPct),
			fmt.Sprintf("%.2f", p.TRKept),
			fmt.Sprintf("%.2f", p.FPFiltered),
		})
	}
	return "Ablation: SAX discretization in the went-away detector\n" +
		table([]string{"setting", "TR kept", "transients filtered"}, rows)
}

// RunAblationSAX evaluates the went-away detector over the Figure 8 corpus
// at several SAX settings.
func RunAblationSAX(seed int64) AblationSAXResult {
	corpus := figure8Corpus(seed, 60, 120)
	cfg := core.Config{
		Threshold: 0.00002,
		Windows: timeseries.WindowConfig{
			Historic: 400 * time.Minute,
			Analysis: 200 * time.Minute,
			Extended: 60 * time.Minute,
		},
	}.WithDefaults()
	res := AblationSAXResult{}
	settings := []struct {
		n int
		x float64
	}{{5, 3}, {20, 3}, {20, 0.01}, {50, 10}}
	for _, s := range settings {
		wa := cfg.WentAway
		wa.SAXBuckets = s.n
		wa.SAXValidityPct = s.x
		var trKept, trTotal, fpFiltered, fpTotal float64
		for _, c := range corpus {
			start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
			series := timeseries.New(start, time.Minute, c.values)
			ws, err := cfg.Windows.Cut(series, series.End())
			if err != nil {
				continue
			}
			r := core.DetectShortTerm(cfg, tsdb.ID("s", "e", "gcpu"), ws, series.End())
			if r == nil {
				if c.positive {
					trTotal++ // missed before went-away even ran
				}
				continue
			}
			kept := core.CheckWentAway(wa, r).Keep
			if c.positive {
				trTotal++
				if kept {
					trKept++
				}
			} else {
				fpTotal++
				if !kept {
					fpFiltered++
				}
			}
		}
		p := SAXPoint{Buckets: s.n, ValidityPct: s.x}
		if trTotal > 0 {
			p.TRKept = trKept / trTotal
		}
		if fpTotal > 0 {
			p.FPFiltered = fpFiltered / fpTotal
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// --- Seasonality handler ablation (paper §5.2.3: STL vs moving average) ---

// SeasonalityHandlerPoint is deseasonalization quality for one method.
type SeasonalityHandlerPoint struct {
	Method        string
	StepRecovered float64 // recovered step size (truth 1.0)
	// TransitionWidth is how many points the deseasonalized view takes to
	// move from 25% to 75% of the step — a smeared step delays detection
	// (the paper's "robust against sudden changes" criterion for STL).
	TransitionWidth int
	// DriftLeakage is the residual seasonal oscillation when the seasonal
	// amplitude drifts over time (the paper's "sensitive to slight
	// changes in seasonality" criterion).
	DriftLeakage float64
}

// AblationSeasonalityResult compares STL with the moving-average
// alternative the paper rejected (§5.2.3 "Discussion of alternatives").
type AblationSeasonalityResult struct{ Points []SeasonalityHandlerPoint }

func (r AblationSeasonalityResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Method,
			fmt.Sprintf("%.3f", p.StepRecovered),
			fmt.Sprintf("%d", p.TransitionWidth),
			fmt.Sprintf("%.3f", p.DriftLeakage)})
	}
	return "Ablation: seasonality handling (true step = 1.000; smaller width/leakage is better)\n" +
		table([]string{"method", "recovered step", "step transition width", "drift leakage sd"}, rows)
}

// RunAblationSeasonality builds (a) a seasonal series with a unit step and
// (b) a series whose seasonal amplitude drifts, and compares how each
// method preserves the step edge and tracks the drifting seasonality.
func RunAblationSeasonality(seed int64) AblationSeasonalityResult {
	rng := newRng(seed)
	period := 96
	n := period * 12

	stepVals := make([]float64, n)
	for i := range stepVals {
		v := 10 + 2*math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()*0.05
		if i >= n/2 {
			v += 1
		}
		stepVals[i] = v
	}
	driftVals := make([]float64, n)
	for i := range driftVals {
		amp := 2 * (1 + 0.5*float64(i)/float64(n)) // amplitude drifts +50%
		driftVals[i] = 10 + amp*math.Sin(2*math.Pi*float64(i)/float64(period)) +
			rng.NormFloat64()*0.05
	}

	type view struct {
		step, drift []float64
	}
	views := map[string]view{}
	if d, err := stl.Decompose(stepVals, period, stl.Options{}); err == nil {
		v := view{step: d.Deseasonalized()}
		if dd, err := stl.Decompose(driftVals, period, stl.Options{}); err == nil {
			v.drift = dd.Deseasonalized()
		}
		views["STL"] = v
	}
	views["moving average"] = view{
		step:  stl.MovingAverage(stepVals, period),
		drift: stl.MovingAverage(driftVals, period),
	}

	res := AblationSeasonalityResult{}
	for _, method := range []string{"STL", "moving average"} {
		v, ok := views[method]
		if !ok {
			continue
		}
		before := stats.Mean(v.step[period : n/2-period])
		after := stats.Mean(v.step[n/2+period : n-period])
		stepSize := after - before
		// Transition width: last crossing of the 25% level before the
		// midpoint settles, to first sustained crossing of 75%.
		lo, hi := before+0.25*stepSize, before+0.75*stepSize
		first75 := n - period
		for i := n / 2; i < n-period; i++ {
			if v.step[i] >= hi {
				first75 = i
				break
			}
		}
		last25 := n / 2
		for i := first75; i >= period; i-- {
			if v.step[i] <= lo {
				last25 = i
				break
			}
		}
		width := first75 - last25
		if width < 0 {
			width = 0
		}
		leak := stats.StdDev(v.drift[period : n-period])
		res.Points = append(res.Points, SeasonalityHandlerPoint{
			Method:          method,
			StepRecovered:   stepSize,
			TransitionWidth: width,
			DriftLeakage:    leak,
		})
	}
	return res
}

// --- Went-away iteration ablation (paper §5.2.2's three iterations) ---

// WentAwayIterationPoint is detection accuracy for one algorithm
// generation.
type WentAwayIterationPoint struct {
	Iteration  string
	TRKept     float64
	FPFiltered float64
}

// AblationWentAwayResult compares the paper's three went-away iterations.
type AblationWentAwayResult struct{ Points []WentAwayIterationPoint }

func (r AblationWentAwayResult) String() string {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Iteration,
			fmt.Sprintf("%.2f", p.TRKept), fmt.Sprintf("%.2f", p.FPFiltered)})
	}
	return "Ablation: went-away detector iterations (§5.2.2 history)\n" +
		table([]string{"iteration", "TR kept", "transients filtered"}, rows)
}

// RunAblationWentAway evaluates the three historical went-away designs on
// a corpus that includes the traps each iteration was built to fix: dips
// after true regressions (breaks iteration 1) and historic spikes
// (breaks iteration 2).
func RunAblationWentAway(seed int64) AblationWentAwayResult {
	rng := newRng(seed)
	type entry struct {
		values   []float64
		positive bool
	}
	var corpus []entry
	mk := func(n int, mu, sd float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = mu + rng.NormFloat64()*sd
		}
		return out
	}
	for i := 0; i < 40; i++ {
		// True regressions. A third carry a brief dip after the step (the
		// iteration-1 trap); another third carry a spike in history (the
		// iteration-2 / Figure 7 trap).
		hist := mk(400, 10, 0.2)
		if i%3 == 1 {
			for j := 150; j < 158; j++ {
				hist[j] = 14
			}
		}
		analysis := append(mk(100, 10, 0.2), mk(40, 11, 0.2)...)
		if i%3 == 0 {
			analysis = append(analysis, mk(10, 10.05, 0.2)...)
		}
		analysis = append(analysis, mk(200-len(analysis), 11, 0.2)...)
		full := append(append(hist, analysis...), mk(60, 11, 0.2)...)
		corpus = append(corpus, entry{full, true})
	}
	for i := 0; i < 80; i++ {
		// Transient spike that recovers; half with a historic spike too.
		hist := mk(400, 10, 0.2)
		if i%2 == 0 {
			for j := 150; j < 158; j++ {
				hist[j] = 14
			}
		}
		analysis := append(mk(80, 10, 0.2), mk(40, 12, 0.2)...)
		analysis = append(analysis, mk(80, 10, 0.2)...)
		corpus = append(corpus, entry{append(append(hist, analysis...), mk(60, 10, 0.2)...), false})
	}

	cfg := core.Config{
		Threshold: 0.01,
		Windows: timeseries.WindowConfig{
			Historic: 400 * time.Minute,
			Analysis: 200 * time.Minute,
			Extended: 60 * time.Minute,
		},
	}.WithDefaults()

	evaluate := func(keep func(r *core.Regression) bool) WentAwayIterationPoint {
		var trKept, trTotal, fpFiltered, fpTotal float64
		for _, c := range corpus {
			start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
			series := timeseries.New(start, time.Minute, c.values)
			ws, err := cfg.Windows.Cut(series, series.End())
			if err != nil {
				continue
			}
			r := core.DetectShortTerm(cfg, tsdb.ID("s", "e", "gcpu"), ws, series.End())
			if r == nil {
				if c.positive {
					trTotal++
				}
				continue
			}
			kept := keep(r)
			if c.positive {
				trTotal++
				if kept {
					trKept++
				}
			} else {
				fpTotal++
				if !kept {
					fpFiltered++
				}
			}
		}
		p := WentAwayIterationPoint{}
		if trTotal > 0 {
			p.TRKept = trKept / trTotal
		}
		if fpTotal > 0 {
			p.FPFiltered = fpFiltered / fpTotal
		}
		return p
	}

	res := AblationWentAwayResult{}
	// Iteration 1: inverse-CUSUM compensation — filter when a later
	// inverse change point compensates the original regression.
	p1 := evaluate(func(r *core.Regression) bool { return !iteration1GoneAway(r) })
	p1.Iteration = "1: inverse CUSUM"
	res.Points = append(res.Points, p1)
	// Iteration 2: trend + raw historical comparison (sensitive to
	// historic spikes because it compares against raw history).
	p2 := evaluate(func(r *core.Regression) bool { return iteration2Keep(r) })
	p2.Iteration = "2: trend + raw history"
	res.Points = append(res.Points, p2)
	// Iteration 3: the shipped SAX-based predicate.
	p3 := evaluate(func(r *core.Regression) bool {
		return core.CheckWentAway(cfg.WentAway, r).Keep
	})
	p3.Iteration = "3: SAX predicate (shipped)"
	res.Points = append(res.Points, p3)
	return res
}

// iteration1GoneAway reimplements the paper's first went-away attempt: run
// an additional CUSUM on the post-change-point data looking for an inverse
// regression whose local magnitude compensates the original one — too
// sensitive to dips after true regressions, because it judges the inverse
// change by its local depth, not by whether the series stays recovered.
func iteration1GoneAway(r *core.Regression) bool {
	analysis := r.Windows.Analysis.Values
	post := append([]float64{}, analysis[r.ChangePoint:]...)
	if r.Windows.Extended != nil {
		post = append(post, r.Windows.Extended.Values...)
	}
	if len(post) < 16 {
		return false
	}
	// Scan for the deepest downward change point: the largest local drop
	// from the running pre-mean to a short window after the candidate.
	const k = 8
	worstDrop := 0.0
	for cp := 4; cp+k <= len(post); cp++ {
		drop := stats.Mean(post[:cp]) - stats.Mean(post[cp:cp+k])
		if drop > worstDrop {
			worstDrop = drop
		}
	}
	return worstDrop > 0.6*r.Delta
}

// iteration2Keep reimplements the second attempt: keep unless a decreasing
// trend exists AND the end values have recovered relative to the raw
// historic window (including any spikes, which is the flaw).
func iteration2Keep(r *core.Regression) bool {
	analysis := r.Windows.Analysis.Values
	post := append([]float64{}, analysis[r.ChangePoint:]...)
	if r.Windows.Extended != nil {
		post = append(post, r.Windows.Extended.Values...)
	}
	if len(post) < 8 {
		return true
	}
	hist := r.Windows.Historic.Values
	// Raw-history comparison: the flaw — a spike inflates the historic
	// max, so genuine end-of-window regressions look unremarkable.
	histMax := stats.Percentile(hist, 99)
	endMean := stats.Mean(post[len(post)*9/10:])
	if endMean <= histMax {
		return false // looks like history; filtered (false negative trap)
	}
	mk := stats.MannKendall(post, 0.05)
	if mk.Trend == stats.TrendDecreasing && endMean < r.Before+0.5*r.Delta {
		return false
	}
	return true
}
