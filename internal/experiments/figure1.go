package experiments

import (
	"fmt"
	"math"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/stats"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// Figure1Result reproduces the three panels of paper Figure 1: a true but
// barely visible 0.005% regression (a), a cost-shift false positive (b),
// and a transient-issue false positive (c), together with FBDetect's
// verdict on each.
type Figure1Result struct {
	// Panel (a): single-server CPU with a 0.005% shift.
	ATrueDelta   float64 // injected shift
	APValue      float64 // Welch t-test p-value on the raw single-server series
	ADetectable  bool    // whether the single-server series alone reveals it
	AFleetPValue float64 // p-value after fleet averaging (how FBDetect sees it)

	// Panel (b): subroutine B's gCPU rises purely from a cost shift.
	BApparentDelta float64 // apparent regression in the receiving subroutine
	BFiltered      bool    // FBDetect's cost-shift detector filters it
	BDomain        string

	// Panel (c): throughput dips transiently.
	CApparentDrop float64 // relative drop during the issue
	CFiltered     bool    // FBDetect's went-away detector filters it
}

func (r Figure1Result) String() string {
	rows := [][]string{
		{"(a) tiny true regression", fmtPct(r.ATrueDelta),
			fmt.Sprintf("single-server p=%.3f detectable=%v; fleet-averaged p=%.2g",
				r.APValue, r.ADetectable, r.AFleetPValue)},
		{"(b) cost-shift false positive", fmtPct(r.BApparentDelta),
			fmt.Sprintf("filtered=%v via %s", r.BFiltered, r.BDomain)},
		{"(c) transient false positive", fmt.Sprintf("-%.0f%% throughput", r.CApparentDrop*100),
			fmt.Sprintf("filtered by went-away=%v", r.CFiltered)},
	}
	return "Figure 1: detection challenges\n" +
		table([]string{"panel", "magnitude", "FBDetect verdict"}, rows)
}

// RunFigure1 reproduces Figure 1 with the paper's published parameters:
// panel (a) uses mu=0.5, sigma^2=0.01, +0.005% mid-series.
func RunFigure1(seed int64) Figure1Result {
	rng := newRng(seed)
	res := Figure1Result{}

	// ---- (a) single server: mu=50%, sigma^2=0.01, +0.005% ----
	const n = 2000
	const shift = 0.00005
	res.ATrueDelta = shift
	single := make([]float64, 2*n)
	for i := range single {
		mu := 0.5
		if i >= n {
			mu += shift
		}
		v := mu + rng.NormFloat64()*0.1 // sigma^2 = 0.01
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		single[i] = v
	}
	tt := stats.WelchTTest(single[:n], single[n:])
	res.APValue = tt.P
	res.ADetectable = tt.P < 0.01
	// Fleet averaging: 500k servers cut per-point noise by sqrt(m); model
	// the averaged series directly.
	const m = 500000
	avg := make([]float64, 2*n)
	for i := range avg {
		mu := 0.5
		if i >= n {
			mu += shift
		}
		avg[i] = mu + rng.NormFloat64()*0.1/math.Sqrt(m)
	}
	res.AFleetPValue = stats.WelchTTest(avg[:n], avg[n:]).P

	// ---- (b) cost shift ----
	before := sampleSet(map[string]float64{
		"main->Worker::encode": 10, "main->Worker::compress": 10, "main->other": 80,
	})
	after := sampleSet(map[string]float64{
		"main->Worker::encode": 18, "main->Worker::compress": 2, "main->other": 80,
	})
	reg := core.NewRegressionRecord(tsdb.ID("svc", "Worker::encode", "gcpu"))
	reg.Before, reg.After = 0.10, 0.18
	reg.Delta = 0.08
	res.BApparentDelta = reg.Delta
	v := core.CheckCostShift(core.CostShiftConfig{MaxDomainCostRatio: 100}, nil, reg, before, after)
	res.BFiltered = v.IsCostShift
	res.BDomain = v.Domain

	// ---- (c) transient throughput dip ----
	hist := make([]float64, 400)
	analysis := make([]float64, 200)
	for i := range hist {
		hist[i] = 100 + rng.NormFloat64()*2
	}
	for i := range analysis {
		base := 100.0
		if i >= 80 && i < 120 {
			base = 60 // the dip
		}
		analysis[i] = base + rng.NormFloat64()*2
	}
	extended := make([]float64, 60)
	for i := range extended {
		extended[i] = 100 + rng.NormFloat64()*2
	}
	res.CApparentDrop = 0.4
	// FBDetect monitors "inverse throughput" so drops read as increases.
	inv := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = 10000 / x
		}
		return out
	}
	ws := buildWindows(inv(hist), inv(analysis), inv(extended))
	regC := core.NewRegressionRecord(tsdb.ID("svc", "", "inv_throughput"))
	regC.Windows = ws
	regC.ChangePoint = 80
	regC.ChangePointTime = ws.Analysis.TimeAt(80)
	regC.Before = stats.Mean(ws.Analysis.Values[:80])
	regC.After = stats.Mean(ws.Analysis.Values[80:])
	regC.Delta = regC.After - regC.Before
	res.CFiltered = !core.CheckWentAway(core.WentAwayConfig{}, regC).Keep
	return res
}

func sampleSet(weights map[string]float64) *stacktrace.SampleSet {
	ss := stacktrace.NewSampleSet()
	for trace, w := range weights {
		ss.AddTraceString(trace, w)
	}
	return ss
}

// buildWindows assembles a Windows struct at 1-minute steps.
func buildWindows(hist, analysis, extended []float64) timeseries.Windows {
	all := make([]float64, 0, len(hist)+len(analysis)+len(extended))
	all = append(all, hist...)
	all = append(all, analysis...)
	all = append(all, extended...)
	start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	s := timeseries.New(start, time.Minute, all)
	cfg := timeseries.WindowConfig{
		Historic: time.Duration(len(hist)) * time.Minute,
		Analysis: time.Duration(len(analysis)) * time.Minute,
		Extended: time.Duration(len(extended)) * time.Minute,
	}
	ws, err := cfg.Cut(s, s.End())
	if err != nil {
		panic(err)
	}
	return ws
}
