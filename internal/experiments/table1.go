package experiments

import (
	"fmt"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// Table1Spec mirrors one row of the paper's Table 1.
type Table1Spec struct {
	Name      string
	Threshold float64
	Relative  bool
	Historic  time.Duration
	Analysis  time.Duration
	Extended  time.Duration
	Baseline  float64 // metric baseline the scenario runs at
}

// Table1Specs returns the twelve rows of Table 1 with the scenario
// baselines used for reproduction: gCPU workloads run at a subroutine
// baseline well above their threshold; CT rows monitor relative series at
// baseline 1.
func Table1Specs() []Table1Spec {
	day := 24 * time.Hour
	return []Table1Spec{
		{"FrontFaaS (large)", 0.03, false, 10 * day, 3 * time.Hour, 0, 0.30},
		{"FrontFaaS (small)", 0.00005, false, 10 * day, 4 * time.Hour, 6 * time.Hour, 0.001},
		{"PythonFaaS (large)", 0.005, false, 10 * day, 6 * time.Hour, 0, 0.05},
		{"PythonFaaS (small)", 0.0003, false, 10 * day, 6 * time.Hour, 6 * time.Hour, 0.005},
		{"TAO (FrontFaaS)", 0.0005, false, 10 * day, 4 * time.Hour, day, 0.01},
		{"TAO (non-FrontFaaS)", 0.0005, false, 10 * day, day, 6 * time.Hour, 0.01},
		{"AdServing (short)", 0.002, false, 10 * day, day, 12 * time.Hour, 0.02},
		{"AdServing (long)", 0.001, false, 16 * day, 9 * day, 0, 0.02},
		{"Invoicer (short)", 0.005, false, 14 * day, day, day, 0.05},
		{"CT-supply (short)", 0.05, true, 7 * day, day, day, 1},
		{"CT-supply (long)", 0.05, true, 10 * day, 7 * day, day, 1},
		{"CT-demand", 0.05, true, 7 * day, day, 0, 1},
	}
}

// Table1Row is the reproduction outcome for one configuration.
type Table1Row struct {
	Spec          Table1Spec
	Injected      float64 // injected regression (1.5x threshold)
	Detected      bool
	MeasuredDelta float64
	FalsePositive bool // whether the control run (no regression) reported
}

// Table1Result holds all rows.
type Table1Result struct{ Rows []Table1Row }

func (r Table1Result) String() string {
	var rows [][]string
	for _, row := range r.Rows {
		unit := "abs"
		if row.Spec.Relative {
			unit = "rel"
		}
		measured := "-"
		if row.Detected {
			if row.Spec.Relative {
				measured = fmtPct(row.MeasuredDelta / row.Spec.Baseline)
			} else {
				measured = fmtPct(row.MeasuredDelta)
			}
		}
		rows = append(rows, []string{
			row.Spec.Name,
			fmtPct(row.Spec.Threshold) + " " + unit,
			fmtPct(row.Injected),
			fmt.Sprintf("%v", row.Detected),
			measured,
			fmt.Sprintf("%v", row.FalsePositive),
		})
	}
	return "Table 1: per-workload configurations (injected = 1.5x threshold)\n" +
		table([]string{"workload", "threshold", "injected", "detected", "measured", "control FP"}, rows)
}

// RunTable1 runs every Table 1 configuration against a synthetic workload
// carrying a regression at 1.5x the configured threshold, plus a control
// run without a regression. Windows are compressed so each series has
// ~600-1500 points while keeping the historic/analysis/extended
// proportions; per-point noise is set so the regression is ~4 sigma,
// modeling the sample volumes each row's re-run interval accumulates.
func RunTable1(seed int64) Table1Result {
	res := Table1Result{}
	for i, spec := range Table1Specs() {
		row := runTable1Row(seed+int64(i)*97, spec)
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runTable1Row(seed int64, spec Table1Spec) Table1Row {
	rng := newRng(seed)
	// Compress windows to a manageable number of points.
	total := spec.Historic + spec.Analysis + spec.Extended
	step := total / 1000
	if step < time.Minute {
		step = time.Minute
	}
	histN := int(spec.Historic / step)
	anaN := int(spec.Analysis / step)
	extN := int(spec.Extended / step)
	if anaN < 40 {
		// Keep the analysis window statistically meaningful after
		// compression.
		anaN = 40
	}
	if extN == 0 && spec.Extended > 0 {
		extN = 20
	}

	injected := 1.5 * spec.Threshold
	if spec.Relative {
		injected *= spec.Baseline // convert to an absolute shift
	}
	noise := injected / 4

	gen := func(withRegression bool) []float64 {
		n := histN + anaN + extN
		cp := histN + anaN/2
		out := make([]float64, n)
		for i := range out {
			mu := spec.Baseline
			if withRegression && i >= cp {
				mu += injected
			}
			v := mu + rng.NormFloat64()*noise
			if v < 0 {
				v = 0
			}
			out[i] = v
		}
		return out
	}

	cfg := core.Config{
		Name:              spec.Name,
		Threshold:         spec.Threshold,
		RelativeThreshold: spec.Relative,
		Windows: timeseries.WindowConfig{
			Historic: time.Duration(histN) * step,
			Analysis: time.Duration(anaN) * step,
			Extended: time.Duration(extN) * step,
		},
	}.WithDefaults()

	detect := func(values []float64) (bool, float64) {
		start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
		s := timeseries.New(start, step, values)
		ws, err := cfg.Windows.Cut(s, s.End())
		if err != nil {
			return false, 0
		}
		r := core.DetectShortTerm(cfg, tsdb.ID("svc", "sub", "metric"), ws, s.End())
		if r == nil {
			return false, 0
		}
		if !core.CheckWentAway(cfg.WentAway, r).Keep {
			return false, 0
		}
		if !core.CheckSeasonality(cfg.Seasonality, r).Keep {
			return false, 0
		}
		if !core.PassesThreshold(cfg, r) {
			return false, 0
		}
		return true, r.Delta
	}

	row := Table1Row{Spec: spec, Injected: injected}
	row.Detected, row.MeasuredDelta = detect(gen(true))
	fp, _ := detect(gen(false))
	row.FalsePositive = fp
	return row
}
