package experiments

import (
	"fmt"
	"math"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/stats"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// Table4Result reproduces paper Table 4: the magnitude distribution of
// detected regressions, split into all reports, confirmed true
// regressions, and false positives (known here from ground truth).
type Table4Result struct {
	All, TR, FP []float64 // detected magnitudes (absolute gCPU deltas)
}

func (r Table4Result) String() string {
	row := func(name string, xs []float64) []string {
		if len(xs) == 0 {
			return []string{name, "-", "-", "-", "-", "-", "-", "0"}
		}
		return []string{
			name,
			fmtPct(stats.Min(xs)),
			fmtPct(stats.Percentile(xs, 10)),
			fmtPct(stats.Percentile(xs, 50)),
			fmtPct(stats.Percentile(xs, 90)),
			fmtPct(stats.Percentile(xs, 99)),
			fmtPct(stats.Max(xs)),
			fmt.Sprintf("%d", len(xs)),
		}
	}
	return "Table 4: magnitude of detected regressions\n" +
		table([]string{"set", "smallest", "P10", "P50", "P90", "P99", "largest", "n"},
			[][]string{row("All", r.All), row("TR", r.TR), row("FP", r.FP)})
}

// RunTable4 generates a corpus of series — most carrying true regressions
// with magnitudes drawn from a heavy-tailed distribution whose median
// matches the paper's 0.048%, some carrying unrecovered transients (the
// paper's dominant false-positive source) — runs short-term detection with
// the went-away and threshold filters, and tabulates detected magnitudes.
func RunTable4(seed int64) Table4Result {
	rng := newRng(seed)
	cfg := core.Config{
		Threshold: 0.00005, // 0.005%, the paper's smallest
		Windows: timeseries.WindowConfig{
			Historic: 400 * time.Minute,
			Analysis: 200 * time.Minute,
			Extended: 60 * time.Minute,
		},
	}.WithDefaults()

	res := Table4Result{}
	detect := func(values []float64) (float64, bool) {
		start := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
		s := timeseries.New(start, time.Minute, values)
		ws, err := cfg.Windows.Cut(s, s.End())
		if err != nil {
			return 0, false
		}
		r := core.DetectShortTerm(cfg, tsdb.ID("svc", "sub", "gcpu"), ws, s.End())
		if r == nil || !core.CheckWentAway(cfg.WentAway, r).Keep ||
			!core.CheckSeasonality(cfg.Seasonality, r).Keep ||
			!core.PassesThreshold(cfg, r) {
			return 0, false
		}
		return r.Delta, true
	}

	const nTrue, nClean = 260, 140
	for i := 0; i < nTrue+nClean; i++ {
		injectTrue := i < nTrue
		// Baseline gCPU, heavy-tailed around 1%.
		base := 0.01 * math.Exp(rng.NormFloat64()*0.8)
		// Regression magnitude: lognormal, median 0.048% (paper's P50),
		// clamped to the 0.005% detection floor.
		delta := 0.00048 * math.Exp(rng.NormFloat64()*1.2)
		if delta < 0.00005 {
			delta = 0.00005
		}
		noise := delta / 4.5

		n := 660
		cp := 400 + 100 // change point mid-analysis-window
		values := make([]float64, n)
		// A minority of clean series carry a transient that fails to
		// recover before the window ends — the paper's dominant FP source
		// (unfiltered "cost shift"-like large anomalies).
		transientStart, transientMag := -1, 0.0
		if !injectTrue && rng.Float64() < 0.2 {
			transientStart = 520 + rng.Intn(100)
			transientMag = delta * (3 + rng.Float64()*12)
		}
		for j := range values {
			mu := base
			if injectTrue && j >= cp {
				mu += delta
			}
			if transientStart >= 0 && j >= transientStart {
				mu += transientMag
			}
			v := mu + rng.NormFloat64()*noise
			if v < 0 {
				v = 0
			}
			values[j] = v
		}
		if mag, ok := detect(values); ok {
			res.All = append(res.All, mag)
			if injectTrue {
				res.TR = append(res.TR, mag)
			} else {
				res.FP = append(res.FP, mag)
			}
		}
	}
	return res
}
