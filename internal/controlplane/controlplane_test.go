package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/resilience"
	"fbdetect/internal/tsdb"
	"fbdetect/internal/wal"
)

const testAdminKey = "admin-test-key"

// newTestServer boots a control plane in a temp dir on a fake clock.
func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *resilience.FakeClock) {
	t.Helper()
	clk := resilience.NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)).AutoAdvance()
	opts := Options{
		DataDir:  t.TempDir(),
		AdminKey: testAdminKey,
		Clock:    clk,
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, clk
}

// register creates a tenant directly through the store.
func register(t *testing.T, s *Server, name string, q Quotas) Tenant {
	t.Helper()
	tn, err := s.tenants.Register(name, q, s.opts.DefaultQuotas, s.now())
	if err != nil {
		t.Fatalf("Register(%s): %v", name, err)
	}
	return tn
}

// ingestBody renders an NDJSON ingest payload.
func ingestBody(service, entity, metric string, start time.Time, step time.Duration, vals ...float64) string {
	var b strings.Builder
	for i, v := range vals {
		fmt.Fprintf(&b, `{"metric":%q,"time":%q,"value":%g}`+"\n",
			tsdb.ID(service, entity, metric), start.Add(time.Duration(i)*step).Format(time.RFC3339), v)
	}
	return b.String()
}

// doJSON drives the server mux with one request.
func doJSON(s *Server, method, path, key, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

func TestRegisterIngestScanRoundTrip(t *testing.T) {
	s, clk := newTestServer(t, nil)
	tn := register(t, s, "team-a", Quotas{})

	// 6h of minutely data with a 10% step 90 minutes ago.
	now := clk.Now()
	start := now.Add(-6 * time.Hour)
	var b strings.Builder
	for i := 0; i < 360; i++ {
		v := 100.0
		if i >= 270 {
			v = 110.0
		}
		fmt.Fprintf(&b, `{"metric":%q,"time":%q,"value":%g}`+"\n",
			tsdb.ID("web", "host0", "cpu"), start.Add(time.Duration(i)*time.Minute).Format(time.RFC3339), v)
	}
	rr := doJSON(s, "POST", "/ingest", tn.Key, b.String())
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rr.Code, rr.Body)
	}

	// The series landed namespaced: visible under the tenant's prefix,
	// invisible under the bare name.
	if n := s.store.DB.NumMetrics(namespaceService(tn.ID, "web")); n != 1 {
		t.Errorf("namespaced series = %d, want 1", n)
	}
	if n := s.store.DB.NumMetrics("web"); n != 0 {
		t.Errorf("bare-name series = %d, want 0 (namespace leak)", n)
	}

	// Scan sees the tenant-visible names, not the namespaced ones.
	scanReq := fmt.Sprintf(`{"service":"web","scan_time":%q}`, now.Format(time.RFC3339))
	rr = doJSON(s, "POST", "/scan", tn.Key, scanReq)
	if rr.Code != http.StatusOK {
		t.Fatalf("scan = %d: %s", rr.Code, rr.Body)
	}
	if got := rr.Body.String(); strings.Contains(got, tn.ID+":") {
		t.Errorf("scan response leaks namespace: %s", got)
	}

	// Another tenant scanning the same service name sees nothing.
	tn2 := register(t, s, "team-b", Quotas{})
	rr = doJSON(s, "POST", "/scan", tn2.Key, scanReq)
	if rr.Code != http.StatusNotFound {
		t.Errorf("cross-tenant scan = %d, want 404", rr.Code)
	}
}

func TestUnauthenticatedRequestsDontTouchStore(t *testing.T) {
	s, clk := newTestServer(t, nil)
	register(t, s, "team-a", Quotas{})

	body := ingestBody("web", "host0", "cpu", clk.Now(), time.Minute, 1, 2, 3)
	for _, key := range []string{"", "wrong-key", testAdminKey} {
		rr := doJSON(s, "POST", "/ingest", key, body)
		if rr.Code != http.StatusUnauthorized {
			t.Errorf("ingest with key %q = %d, want 401", key, rr.Code)
		}
	}
	// Malformed Authorization scheme is a 401, not a fallthrough.
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(body))
	req.Header.Set("Authorization", "Basic dXNlcjpwdw==")
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusUnauthorized {
		t.Errorf("basic-auth ingest = %d, want 401", rr.Code)
	}

	if n := s.store.DB.Len(); n != 0 {
		t.Errorf("store has %d series after rejected requests, want 0", n)
	}
	if got := s.reg.NewCounter(MetricUnauthorized, "", nil).Value(); got < 4 {
		t.Errorf("unauthorized counter = %v, want >= 4", got)
	}
}

func TestSeriesQuotaEdges(t *testing.T) {
	s, clk := newTestServer(t, nil)
	tn := register(t, s, "team-a", Quotas{MaxSeries: 3})
	now := clk.Now()

	// Fill to exactly the quota in one batch: allowed.
	var b strings.Builder
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, `{"metric":%q,"time":%q,"value":1}`+"\n",
			tsdb.ID("web", fmt.Sprintf("host%d", i), "cpu"), now.Format(time.RFC3339))
	}
	if rr := doJSON(s, "POST", "/ingest", tn.Key, b.String()); rr.Code != http.StatusOK {
		t.Fatalf("fill-to-quota ingest = %d: %s", rr.Code, rr.Body)
	}

	// At the cap: writing to existing series still works.
	rr := doJSON(s, "POST", "/ingest", tn.Key,
		ingestBody("web", "host0", "cpu", now.Add(time.Minute), time.Minute, 2))
	if rr.Code != http.StatusOK {
		t.Errorf("at-quota existing-series ingest = %d, want 200: %s", rr.Code, rr.Body)
	}

	// One series over: the whole batch (new + existing points) rejects
	// with 403 and nothing lands.
	before := s.store.DB.NumMetrics(namespaceService(tn.ID, "web"))
	mixed := ingestBody("web", "host0", "cpu", now.Add(2*time.Minute), time.Minute, 3) +
		ingestBody("web", "host9", "cpu", now.Add(2*time.Minute), time.Minute, 3)
	rr = doJSON(s, "POST", "/ingest", tn.Key, mixed)
	if rr.Code != http.StatusForbidden {
		t.Fatalf("over-quota ingest = %d, want 403: %s", rr.Code, rr.Body)
	}
	if after := s.store.DB.NumMetrics(namespaceService(tn.ID, "web")); after != before {
		t.Errorf("series after rejected batch = %d, want %d (batch must be atomic)", after, before)
	}

	// The rollback means retrying a conforming batch still succeeds.
	rr = doJSON(s, "POST", "/ingest", tn.Key,
		ingestBody("web", "host1", "cpu", now.Add(3*time.Minute), time.Minute, 4))
	if rr.Code != http.StatusOK {
		t.Errorf("post-reject conforming ingest = %d, want 200: %s", rr.Code, rr.Body)
	}
	if got := s.reg.NewCounter(MetricQuotaRejections, "", obs.Labels{"tenant": tn.ID}).Value(); got != 1 {
		t.Errorf("quota rejections = %v, want 1", got)
	}
}

func TestRateLimitBurstAndIsolation(t *testing.T) {
	s, clk := newTestServer(t, nil)
	fast := register(t, s, "fast", Quotas{RatePerSec: 1, Burst: 3})
	calm := register(t, s, "calm", Quotas{RatePerSec: 1, Burst: 3})
	body := ingestBody("web", "host0", "cpu", clk.Now(), time.Minute, 1)

	// Burst up to the bucket depth, then 429 with a Retry-After hint.
	for i := 0; i < 3; i++ {
		if rr := doJSON(s, "POST", "/ingest", fast.Key, body); rr.Code != http.StatusOK {
			t.Fatalf("burst request %d = %d: %s", i, rr.Code, rr.Body)
		}
	}
	rr := doJSON(s, "POST", "/ingest", fast.Key, body)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request = %d, want 429: %s", rr.Code, rr.Body)
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 Retry-After = %q, want a positive hint", ra)
	}

	// The other tenant's bucket is untouched: its requests still land.
	if rr := doJSON(s, "POST", "/ingest", calm.Key, body); rr.Code != http.StatusOK {
		t.Errorf("isolated tenant ingest = %d, want 200 while other tenant is limited: %s",
			rr.Code, rr.Body)
	}
	if got := s.reg.NewCounter(MetricRateLimited, "", obs.Labels{"tenant": calm.ID}).Value(); got != 0 {
		t.Errorf("calm tenant rate-limited count = %v, want 0", got)
	}
	if got := s.reg.NewCounter(MetricRateLimited, "", obs.Labels{"tenant": fast.ID}).Value(); got != 1 {
		t.Errorf("fast tenant rate-limited count = %v, want 1", got)
	}

	// Tokens refill on the clock: a second later one request fits again.
	clk.Advance(time.Second)
	if rr := doJSON(s, "POST", "/ingest", fast.Key, body); rr.Code != http.StatusOK {
		t.Errorf("post-refill request = %d, want 200: %s", rr.Code, rr.Body)
	}
}

func TestAsyncBackfillLifecycle(t *testing.T) {
	s, _ := newTestServer(t, nil)
	tn := register(t, s, "team-a", Quotas{})

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cli := &Client{Base: srv.URL, Key: tn.Key}

	op, loc, err := cli.SubmitOperation(context.Background(), OpKindBackfill, backfillParams{
		Service: "web", Metric: "cpu", Count: 120, StepAt: 90, Factor: 1.2,
	})
	if err != nil {
		t.Fatalf("SubmitOperation: %v", err)
	}
	if loc != "/operations/"+op.ID {
		t.Errorf("Location = %q, want /operations/%s", loc, op.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := cli.WaitOperation(ctx, loc)
	if err != nil {
		t.Fatalf("WaitOperation: %v", err)
	}
	if done.Status != OpSucceeded {
		t.Fatalf("status = %s (%s), want succeeded", done.Status, done.Error)
	}
	var result struct {
		Written int `json:"written"`
	}
	if err := json.Unmarshal(done.Result, &result); err != nil || result.Written != 120 {
		t.Errorf("result = %s (err %v), want written 120", done.Result, err)
	}
	if n := s.store.DB.NumMetrics(namespaceService(tn.ID, "web")); n != 1 {
		t.Errorf("backfilled series = %d, want 1", n)
	}

	// Another tenant cannot see the operation.
	other := register(t, s, "team-b", Quotas{})
	if rr := doJSON(s, "GET", loc, other.Key, ""); rr.Code != http.StatusNotFound {
		t.Errorf("cross-tenant operation fetch = %d, want 404", rr.Code)
	}
	// The owner's list has it.
	rr := doJSON(s, "GET", "/operations", tn.Key, "")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), op.ID) {
		t.Errorf("operation list = %d %s, want to contain %s", rr.Code, rr.Body, op.ID)
	}
}

func TestOperationValidation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	tn := register(t, s, "team-a", Quotas{})

	rr := doJSON(s, "POST", "/operations", tn.Key, `{"kind":"no-such-kind"}`)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("unknown kind = %d, want 400", rr.Code)
	}
	rr = doJSON(s, "POST", "/operations", tn.Key, `{not json`)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bad json = %d, want 400", rr.Code)
	}
	// A rebalance without a ring fails terminally, not silently.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cli := &Client{Base: srv.URL, Key: tn.Key}
	_, loc, err := cli.SubmitOperation(context.Background(), OpKindRebalance, nil)
	if err != nil {
		t.Fatalf("SubmitOperation: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := cli.WaitOperation(ctx, loc)
	if done == nil || done.Status != OpFailed {
		t.Fatalf("ringless rebalance: op %+v err %v, want failed terminal state", done, err)
	}
	if !resilience.IsPermanent(err) {
		t.Errorf("failed op error should be Permanent, got %v", err)
	}
}

func TestOperationRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	clk := resilience.NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)).AutoAdvance()
	opts := Options{DataDir: dir, AdminKey: testAdminKey, Clock: clk}

	s1, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	tn := register(t, s1, "team-a", Quotas{})
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a SIGKILL mid-operation: the journal's last record for
	// the op says "running" and no terminal record ever lands.
	params, _ := json.Marshal(backfillParams{Service: "web", Metric: "cpu", Count: 30})
	crashed := Operation{
		ID: "op-crashed01", Tenant: tn.ID, Kind: OpKindBackfill, Params: params,
		Status: OpRunning, CreatedAt: clk.Now(), UpdatedAt: clk.Now(),
	}
	j, _, err := wal.OpenJournal(filepath.Join(dir, "ops.journal"), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(crashed)
	if err := j.Append(payload); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Restart: the op is requeued and runs to success with no client
	// involvement.
	s2, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.reg.NewCounter(MetricRecoveredOps, "", nil).Value(); got != 1 {
		t.Errorf("recovered ops counter = %v, want 1", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		op := s2.ops.Get("op-crashed01")
		if op == nil {
			t.Fatal("recovered op vanished")
		}
		if op.Status.Terminal() {
			if op.Status != OpSucceeded {
				t.Fatalf("recovered op status = %s (%s), want succeeded", op.Status, op.Error)
			}
			if op.Attempts != 1 {
				t.Errorf("recovered op attempts = %d, want 1", op.Attempts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered op stuck in %s", op.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := s2.store.DB.NumMetrics(namespaceService(tn.ID, "web")); n != 1 {
		t.Errorf("recovered backfill wrote %d series, want 1", n)
	}
}

func TestOperationAbandonedAfterRepeatedCrashes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.journal")
	op := Operation{ID: "op-looping", Tenant: "t-x", Kind: OpKindBackfill,
		Status: OpRunning, Attempts: maxOpAttempts}
	j, _, err := wal.OpenJournal(path, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(op)
	if err := j.Append(payload); err != nil {
		t.Fatal(err)
	}
	j.Close()

	st, recovered, err := openOpStore(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(recovered) != 0 {
		t.Errorf("recovered %d ops, want 0 (attempt budget exhausted)", len(recovered))
	}
	got := st.Get("op-looping")
	if got == nil || got.Status != OpFailed || !strings.Contains(got.Error, "abandoned") {
		t.Errorf("exhausted op = %+v, want failed/abandoned", got)
	}
}

func TestTenantQuotaUsageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clk := resilience.NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)).AutoAdvance()
	opts := Options{DataDir: dir, AdminKey: testAdminKey, Clock: clk}

	s1, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	tn := register(t, s1, "team-a", Quotas{MaxSeries: 2})
	var b strings.Builder
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&b, `{"metric":%q,"time":%q,"value":1}`+"\n",
			tsdb.ID("web", fmt.Sprintf("host%d", i), "cpu"), clk.Now().Format(time.RFC3339))
	}
	if rr := doJSON(s1, "POST", "/ingest", tn.Key, b.String()); rr.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rr.Code, rr.Body)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// The key still works and the recounted usage still enforces the cap.
	rr := doJSON(s2, "POST", "/ingest", tn.Key,
		ingestBody("web", "host9", "cpu", clk.Now(), time.Minute, 1))
	if rr.Code != http.StatusForbidden {
		t.Errorf("post-restart over-quota ingest = %d, want 403: %s", rr.Code, rr.Body)
	}
	rr = doJSON(s2, "POST", "/ingest", tn.Key,
		ingestBody("web", "host0", "cpu", clk.Now().Add(time.Minute), time.Minute, 2))
	if rr.Code != http.StatusOK {
		t.Errorf("post-restart existing-series ingest = %d, want 200: %s", rr.Code, rr.Body)
	}
}

func TestAdminAPI(t *testing.T) {
	s, _ := newTestServer(t, nil)

	// Tenant registration needs the admin key.
	body := `{"name":"team-a","quotas":{"max_series":5}}`
	if rr := doJSON(s, "POST", "/admin/tenants", "not-admin", body); rr.Code != http.StatusUnauthorized {
		t.Errorf("non-admin register = %d, want 401", rr.Code)
	}
	rr := doJSON(s, "POST", "/admin/tenants", testAdminKey, body)
	if rr.Code != http.StatusCreated {
		t.Fatalf("admin register = %d: %s", rr.Code, rr.Body)
	}
	var tn Tenant
	if err := json.Unmarshal(rr.Body.Bytes(), &tn); err != nil || tn.Key == "" {
		t.Fatalf("register response %s (err %v): want a key", rr.Body, err)
	}
	if tn.Quotas.MaxSeries != 5 || tn.Quotas.RatePerSec != 50 {
		t.Errorf("quotas = %+v, want max_series 5 with defaulted rate", tn.Quotas)
	}

	// The list never exposes keys.
	rr = doJSON(s, "GET", "/admin/tenants", testAdminKey, "")
	if rr.Code != http.StatusOK || strings.Contains(rr.Body.String(), tn.Key) {
		t.Errorf("tenant list = %d %s: must not leak keys", rr.Code, rr.Body)
	}

	// Without a ring the worker admin surface 503s.
	if rr := doJSON(s, "GET", "/admin/workers", testAdminKey, ""); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("ringless workers list = %d, want 503", rr.Code)
	}
}

func TestAdminWorkerRing(t *testing.T) {
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer worker.Close()

	s, _ := newTestServer(t, func(o *Options) {
		o.WorkerURLs = []string{worker.URL}
	})
	rr := doJSON(s, "GET", "/admin/workers", testAdminKey, "")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), worker.URL) {
		t.Fatalf("workers list = %d %s", rr.Code, rr.Body)
	}

	add := fmt.Sprintf(`{"url":%q}`, worker.URL+"/second")
	if rr := doJSON(s, "POST", "/admin/workers", testAdminKey, add); rr.Code != http.StatusCreated {
		t.Fatalf("add worker = %d: %s", rr.Code, rr.Body)
	}
	if rr := doJSON(s, "POST", "/admin/workers/drain", testAdminKey, add); rr.Code != http.StatusOK {
		t.Fatalf("drain worker = %d: %s", rr.Code, rr.Body)
	}
	var statuses []struct {
		URL      string `json:"url"`
		Draining bool   `json:"draining"`
	}
	rr = doJSON(s, "GET", "/admin/workers", testAdminKey, "")
	if err := json.Unmarshal(rr.Body.Bytes(), &statuses); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range statuses {
		if st.URL == worker.URL+"/second" {
			found = true
			if !st.Draining {
				t.Error("drained worker not marked draining")
			}
		}
	}
	if !found {
		t.Fatalf("added worker missing from %s", rr.Body)
	}
	if rr := doJSON(s, "POST", "/admin/workers/remove", testAdminKey, add); rr.Code != http.StatusOK {
		t.Fatalf("remove worker = %d: %s", rr.Code, rr.Body)
	}
	if got := s.reg.NewCounter(MetricAdminRingChanges, "", obs.Labels{"action": "add"}).Value(); got != 1 {
		t.Errorf("ring add counter = %v, want 1", got)
	}
}

func TestSweepOperation(t *testing.T) {
	s, clk := newTestServer(t, nil)
	tn := register(t, s, "team-a", Quotas{})

	// Seed a series with a clear step so the sweep has something to
	// count at low thresholds.
	now := clk.Now()
	start := now.Add(-6 * time.Hour)
	var b strings.Builder
	for i := 0; i < 360; i++ {
		v := 100.0
		if i >= 270 {
			v = 120.0
		}
		fmt.Fprintf(&b, `{"metric":%q,"time":%q,"value":%g}`+"\n",
			tsdb.ID("web", "host0", "lat"), start.Add(time.Duration(i)*time.Minute).Format(time.RFC3339), v)
	}
	if rr := doJSON(s, "POST", "/ingest", tn.Key, b.String()); rr.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", rr.Code, rr.Body)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	cli := &Client{Base: srv.URL, Key: tn.Key}
	_, loc, err := cli.SubmitOperation(context.Background(), OpKindSweep, sweepParams{
		Service: "web", ScanTime: now, Thresholds: []float64{0.001, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done, err := cli.WaitOperation(ctx, loc)
	if err != nil {
		t.Fatalf("WaitOperation: %v", err)
	}
	var result struct {
		Curve []sweepPoint `json:"curve"`
	}
	if err := json.Unmarshal(done.Result, &result); err != nil || len(result.Curve) != 2 {
		t.Fatalf("sweep result %s (err %v), want 2-rung curve", done.Result, err)
	}
	if result.Curve[0].Reported < result.Curve[1].Reported {
		t.Errorf("floor curve not monotone: %+v", result.Curve)
	}
}

func TestDebugSurface(t *testing.T) {
	s, _ := newTestServer(t, nil)
	for path, want := range map[string]string{
		"/healthz": "ok",
		"/metrics": MetricTenants,
	} {
		rr := doJSON(s, "GET", path, "", "")
		if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), want) {
			t.Errorf("%s = %d %.120s, want %q", path, rr.Code, rr.Body, want)
		}
	}
}
