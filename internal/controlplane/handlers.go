package controlplane

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fbdetect/internal/distributed"
	"fbdetect/internal/obs"
)

// ctxKey keys the authenticated tenant in the request context.
type ctxKey int

const tenantKey ctxKey = 0

// TenantFrom returns the authenticated tenant of an in-flight request.
func TenantFrom(ctx context.Context) (Tenant, bool) {
	st, ok := ctx.Value(tenantKey).(*tenantState)
	if !ok {
		return Tenant{}, false
	}
	return st.Tenant, true
}

// apiKey extracts the bearer credential: "Authorization: Bearer <key>"
// preferred, "X-API-Key: <key>" accepted.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if k, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
		return "" // a malformed Authorization header is not a key
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// authTenant wraps next with tenant authentication: the key must resolve
// to a registered tenant or the request dies with a 401 before touching
// any handler state (the TSDB included).
func (s *Server) authTenant(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := s.tenants.byAPIKey(apiKey(r))
		if st == nil {
			s.unauthorized.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="fbdetect"`)
			http.Error(w, "missing or invalid API key", http.StatusUnauthorized)
			return
		}
		s.reg.NewCounter(MetricTenantRequests,
			"Authenticated requests, by tenant and route.",
			obs.Labels{"tenant": st.ID, "route": routeLabel(r.URL.Path)}).Inc()
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey, st)))
	})
}

// routeLabel collapses /operations/{id} to a bounded label set.
func routeLabel(path string) string {
	if strings.HasPrefix(path, "/operations/") {
		return "/operations/{id}"
	}
	return path
}

// rateLimit wraps next with the tenant's token bucket. Buckets are
// per-tenant, so one tenant burning its budget draws 429s without
// consuming anything of another tenant's.
func (s *Server) rateLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st, _ := r.Context().Value(tenantKey).(*tenantState)
		if st != nil {
			if ok, retryAfter := st.bucket.take(s.now()); !ok {
				s.reg.NewCounter(MetricRateLimited,
					"Requests rejected by the per-tenant rate limit.",
					obs.Labels{"tenant": st.ID}).Inc()
				w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
				http.Error(w, "tenant rate limit exceeded", http.StatusTooManyRequests)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// authAdmin guards the admin surface with the server's admin key.
func (s *Server) authAdmin(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if subtle.ConstantTimeCompare([]byte(apiKey(r)), []byte(s.opts.AdminKey)) != 1 {
			s.unauthorized.Inc()
			http.Error(w, "admin key required", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// retryAfterSeconds renders d as a whole-second Retry-After value,
// rounding up so the hint never understates the wait.
func retryAfterSeconds(d time.Duration) string {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return strconv.Itoa(sec)
}

// buildMux wires the full serving surface. Every route passes through
// the standard obs HTTP middleware, so request counts, latencies, and
// error rates land on /metrics route-by-route.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	wire := func(route string, h http.Handler) {
		// The obs route label is the pattern minus any method prefix, so
		// "POST /operations" and "GET /operations" share one label.
		path := route
		if i := strings.IndexByte(route, ' '); i >= 0 {
			path = route[i+1:]
		}
		mux.Handle(route, obs.Middleware(s.reg, routeLabel(path), h))
	}

	// Data plane: tenant-authenticated, rate-limited.
	wire("/ingest", s.authTenant(s.serveIngest))
	wire("/profiles", s.authTenant(s.serveProfiles))
	wire("/scan", s.authTenant(s.serveScan))

	// Async operations.
	wire("POST /operations", s.authTenant(s.serveCreateOperation))
	wire("GET /operations", s.authTenant(s.serveListOperations))
	wire("GET /operations/{id}", s.authTenant(s.serveGetOperation))

	// Admin plane.
	wire("POST /admin/tenants", s.authAdmin(s.serveRegisterTenant))
	wire("GET /admin/tenants", s.authAdmin(s.serveListTenants))
	wire("GET /admin/workers", s.authAdmin(s.serveListWorkers))
	wire("POST /admin/workers", s.authAdmin(s.serveAddWorker))
	wire("POST /admin/workers/drain", s.authAdmin(s.serveDrainWorker))
	wire("POST /admin/workers/remove", s.authAdmin(s.serveRemoveWorker))

	// Observability, unauthenticated like every worker's.
	obs.RegisterDebug(mux, s.reg, s.tracer)
	s.mux = mux
}

// tenantOf returns the request's tenant state (set by authTenant).
func tenantOf(r *http.Request) *tenantState {
	st, _ := r.Context().Value(tenantKey).(*tenantState)
	return st
}

// serveIngest delegates to a per-tenant ingest handler over the
// namespacing store. Handlers are built per tenant (lazily, once) so
// each tenant gets its own in-flight semaphore: tenant A saturating its
// ingest slots draws 429s itself without queueing tenant B.
func (s *Server) serveIngest(w http.ResponseWriter, r *http.Request) {
	st := tenantOf(r)
	s.rateLimit(s.ingestHandler(st)).ServeHTTP(w, r)
}

// serveProfiles is /profiles with the same per-tenant isolation.
func (s *Server) serveProfiles(w http.ResponseWriter, r *http.Request) {
	st := tenantOf(r)
	s.rateLimit(s.profilesHandler(st)).ServeHTTP(w, r)
}

// serveScan runs a pipeline scan of one tenant service. The service
// name is namespaced before it reaches the pipeline, so a tenant can
// only ever scan (or learn the existence of) its own series.
func (s *Server) serveScan(w http.ResponseWriter, r *http.Request) {
	st := tenantOf(r)
	s.rateLimit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var sr distributed.ScanRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&sr); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if sr.Service == "" || sr.ScanTime.IsZero() {
			http.Error(w, "service and scan_time required", http.StatusBadRequest)
			return
		}
		resp, err := s.scanTenantService(r.Context(), st, sr.Service, sr.ScanTime)
		if err != nil {
			if errors.Is(err, distributed.ErrUnknownService) {
				http.Error(w, "unknown service: "+sr.Service, http.StatusNotFound)
				return
			}
			http.Error(w, "scan failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})).ServeHTTP(w, r)
}

// scanTenantService scans one tenant service through the shared worker
// (serialized on its mutex) and strips the namespace from the response.
func (s *Server) scanTenantService(ctx context.Context, st *tenantState, service string, scanTime time.Time) (*distributed.ScanResponse, error) {
	resp, err := s.worker.Scan(ctx, namespaceService(st.ID, service), scanTime)
	if err != nil {
		return nil, err
	}
	for i := range resp.Reported {
		r := &resp.Reported[i]
		r.Service = unnamespaceService(st.ID, r.Service)
		r.Metric = strings.Replace(r.Metric, namespaceService(st.ID, ""), "", 1)
	}
	return resp, nil
}

// opParams is the POST /operations request body.
type opParams struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// serveCreateOperation accepts a job, journals it, enqueues it, and
// answers 202 with Location: /operations/{id} — the Heketi async-op
// contract: the caller polls the Location, honoring Retry-After, until
// the operation is terminal.
func (s *Server) serveCreateOperation(w http.ResponseWriter, r *http.Request) {
	st := tenantOf(r)
	s.rateLimit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body opParams
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if _, ok := s.queue.runners[body.Kind]; !ok {
			http.Error(w, fmt.Sprintf("unknown operation kind %q (have %v)",
				body.Kind, s.queue.kinds()), http.StatusBadRequest)
			return
		}
		op, err := s.ops.create(st.ID, body.Kind, body.Params, s.now())
		if err != nil {
			http.Error(w, "journaling operation: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if err := s.queue.submit(op.ID); err != nil {
			s.ops.transition(op.ID, OpFailed, nil, err.Error(), s.now())
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Location", "/operations/"+op.ID)
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.PollRetryAfter))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(op)
	})).ServeHTTP(w, r)
}

// serveGetOperation is the poll target. Non-terminal operations carry a
// Retry-After hint. A tenant asking for another tenant's operation gets
// the same 404 as for a nonexistent one — existence is tenant-scoped.
func (s *Server) serveGetOperation(w http.ResponseWriter, r *http.Request) {
	st := tenantOf(r)
	op := s.ops.Get(r.PathValue("id"))
	if op == nil || op.Tenant != st.ID {
		http.Error(w, "no such operation", http.StatusNotFound)
		return
	}
	if !op.Status.Terminal() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.PollRetryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(op)
}

// serveListOperations lists the tenant's operations in creation order.
func (s *Server) serveListOperations(w http.ResponseWriter, r *http.Request) {
	st := tenantOf(r)
	ops := s.ops.ListTenant(st.ID)
	if ops == nil {
		ops = []*Operation{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ops)
}

// registerTenantRequest is the POST /admin/tenants body.
type registerTenantRequest struct {
	Name   string `json:"name"`
	Quotas Quotas `json:"quotas"`
}

// serveRegisterTenant creates a tenant; the response is the only place
// the API key ever appears.
func (s *Server) serveRegisterTenant(w http.ResponseWriter, r *http.Request) {
	var body registerTenantRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	t, err := s.tenants.Register(body.Name, body.Quotas, s.opts.DefaultQuotas, s.now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.tenantsGauge.Set(float64(len(s.tenants.List())))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(t)
}

// serveListTenants lists tenants, keys redacted.
func (s *Server) serveListTenants(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.tenants.List())
}

// ringRequest is the admin worker-mutation body.
type ringRequest struct {
	URL   string `json:"url"`
	Drain *bool  `json:"drain,omitempty"`
}

// requireRing 503s admin ring calls when no coordinator is configured.
func (s *Server) requireRing(w http.ResponseWriter) bool {
	if s.coord == nil {
		http.Error(w, "no worker ring configured (start the server with -workers)",
			http.StatusServiceUnavailable)
		return false
	}
	return true
}

// decodeRing parses a ring-mutation body.
func decodeRing(w http.ResponseWriter, r *http.Request) (ringRequest, bool) {
	var body ringRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<10)).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return body, false
	}
	if body.URL == "" {
		http.Error(w, "url required", http.StatusBadRequest)
		return body, false
	}
	return body, true
}

// ringChanged bumps the admin ring-change counter.
func (s *Server) ringChanged(action string) {
	s.reg.NewCounter(MetricAdminRingChanges,
		"Admin mutations of the worker hash ring, by action.",
		obs.Labels{"action": action}).Inc()
}

// serveListWorkers reports every ring member's health/drain/breaker
// state.
func (s *Server) serveListWorkers(w http.ResponseWriter, r *http.Request) {
	if !s.requireRing(w) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.coord.Workers())
}

// serveAddWorker grows the ring at runtime.
func (s *Server) serveAddWorker(w http.ResponseWriter, r *http.Request) {
	if !s.requireRing(w) {
		return
	}
	body, ok := decodeRing(w, r)
	if !ok {
		return
	}
	if err := s.coord.AddWorker(body.URL); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.ringChanged("add")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(s.coord.Workers())
}

// serveDrainWorker marks a member draining (default) or undrains it
// with {"drain": false}.
func (s *Server) serveDrainWorker(w http.ResponseWriter, r *http.Request) {
	if !s.requireRing(w) {
		return
	}
	body, ok := decodeRing(w, r)
	if !ok {
		return
	}
	drain := true
	if body.Drain != nil {
		drain = *body.Drain
	}
	if err := s.coord.DrainWorker(body.URL, drain); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.ringChanged("drain")
	json.NewEncoder(w).Encode(s.coord.Workers())
}

// serveRemoveWorker deletes a ring member.
func (s *Server) serveRemoveWorker(w http.ResponseWriter, r *http.Request) {
	if !s.requireRing(w) {
		return
	}
	body, ok := decodeRing(w, r)
	if !ok {
		return
	}
	if err := s.coord.RemoveWorker(body.URL); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.ringChanged("remove")
	json.NewEncoder(w).Encode(s.coord.Workers())
}
