// Package controlplane is the long-lived multi-tenant API service over
// the detection stack: tenant registration with API-key auth, per-tenant
// namespacing of metric series into the shared sharded TSDB, per-tenant
// quotas and token-bucket rate limits on the data plane
// (/ingest, /profiles, /scan), an async-operation framework whose job
// state is journaled through the WAL so in-flight operations survive a
// SIGKILL, and an admin API that drains/adds workers on the coordinator
// hash ring at runtime.
//
// The paper's FBDetect runs as an always-on production service over
// hundreds of thousands of hosts; this package is the reproduction's
// equivalent front door — the piece that turns the library + flags
// coordinator into something a tenant can register against. The shape
// follows Heketi's apps/server/middleware layering: handlers are thin,
// middleware owns auth/limits/metrics, and long-running work happens in
// journaled async operations polled at /operations/{id} with 202 +
// Location + Retry-After semantics.
package controlplane

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"fbdetect/internal/core"
	"fbdetect/internal/distributed"
	"fbdetect/internal/obs"
	"fbdetect/internal/resilience"
	"fbdetect/internal/tsdb"
	"fbdetect/internal/wal"
)

// Control-plane metric names.
const (
	MetricTenants           = "fbdetect_cp_tenants"
	MetricTenantRequests    = "fbdetect_cp_tenant_requests_total"
	MetricRateLimited       = "fbdetect_cp_rate_limited_total"
	MetricUnauthorized      = "fbdetect_cp_unauthorized_total"
	MetricQuotaRejections   = "fbdetect_cp_quota_rejections_total"
	MetricOpsTotal          = "fbdetect_cp_operations_total"
	MetricOpsInFlight       = "fbdetect_cp_operations_in_flight"
	MetricAdminRingChanges  = "fbdetect_cp_admin_ring_changes_total"
	MetricRecoveredOps      = "fbdetect_cp_recovered_operations_total"
)

// Options configures a Server. Zero fields take defaults.
type Options struct {
	// DataDir is the server's durable root: the point WAL + snapshots
	// live in DataDir/tsdb, the tenant journal in DataDir/tenants.journal,
	// and the operation journal in DataDir/ops.journal. Required.
	DataDir string
	// Step is the TSDB step (default 1m).
	Step time.Duration
	// AdminKey authenticates /admin/* and tenant registration. Required.
	AdminKey string
	// WAL tunes the point WAL (sync policy, fault injection).
	WAL wal.Options
	// DB tunes the recovered TSDB (shards, chunking).
	DB tsdb.Options
	// DefaultQuotas fills unset fields of per-tenant quotas
	// (default: 1000 series, 50 req/s, burst 100).
	DefaultQuotas Quotas
	// Scan configures the embedded detection pipeline. Zero-valued
	// windows default to Historic 5h / Analysis 3h / Extended 1h with
	// threshold 0.001 — the worker binary's durable-mode posture.
	Scan core.Config
	// Ingest tunes the per-tenant /ingest backpressure.
	Ingest distributed.IngestOptions
	// Profiles tunes the per-tenant /profiles backpressure.
	Profiles distributed.ProfilesOptions
	// JobWorkers is the async-operation concurrency (default 2).
	JobWorkers int
	// JournalCompactBytes triggers operation-journal compaction
	// (default 1 MiB).
	JournalCompactBytes int64
	// PollRetryAfter is the Retry-After hint attached to non-terminal
	// /operations/{id} responses (default 1s).
	PollRetryAfter time.Duration
	// WorkerURLs, when set, builds a scan coordinator over the ring so
	// the admin API can drain/add workers and rebalance jobs can report
	// assignments. Empty means no ring (single-node mode).
	WorkerURLs []string
	// ScanOptions tunes that coordinator's resilience layer.
	ScanOptions distributed.Options
	// Clock drives rate limiting and operation timestamps; tests inject
	// a resilience.FakeClock. Default real time.
	Clock resilience.Clock
	// TraceBuffer is the tracer's ring size (default 64).
	TraceBuffer int
}

func (o Options) withDefaults() Options {
	if o.Step <= 0 {
		o.Step = time.Minute
	}
	if o.DefaultQuotas.MaxSeries <= 0 {
		o.DefaultQuotas.MaxSeries = 1000
	}
	if o.DefaultQuotas.RatePerSec <= 0 {
		o.DefaultQuotas.RatePerSec = 50
	}
	if o.DefaultQuotas.Burst <= 0 {
		o.DefaultQuotas.Burst = 100
	}
	if o.Scan.Threshold == 0 {
		o.Scan.Threshold = 0.001
	}
	if o.Scan.Windows.Historic == 0 {
		o.Scan.Windows.Historic = 5 * time.Hour
		o.Scan.Windows.Analysis = 3 * time.Hour
		o.Scan.Windows.Extended = time.Hour
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.JournalCompactBytes <= 0 {
		o.JournalCompactBytes = 1 << 20
	}
	if o.PollRetryAfter <= 0 {
		o.PollRetryAfter = time.Second
	}
	if o.Clock == nil {
		o.Clock = resilience.RealClock()
	}
	if o.TraceBuffer <= 0 {
		o.TraceBuffer = 64
	}
	return o
}

// Server is the control plane: a durable store, the tenant table, the
// journaled operation queue, the embedded scan pipeline, and (optionally)
// a coordinator over a worker ring — all behind one authenticated mux.
type Server struct {
	opts    Options
	clock   resilience.Clock
	reg     *obs.Registry
	tracer  *obs.Tracer
	store   *wal.Store
	tenants *TenantStore
	ops     *OpStore
	queue   *queue
	pipe    *core.Pipeline
	worker  *distributed.Worker
	coord   *distributed.Coordinator
	mux     *http.ServeMux

	// Per-tenant data-plane handlers, built lazily: each tenant gets
	// its own in-flight semaphores, so one tenant saturating its ingest
	// slots draws 429s without queueing another tenant's batches.
	handlersMu sync.Mutex
	ingest     map[string]*distributed.IngestHandler
	profiles   map[string]*distributed.ProfilesHandler

	// metric handles (nil-safe when uninstrumented)
	tenantsGauge *obs.Gauge
	unauthorized *obs.Counter
	recoveredOps *obs.Counter
}

// NewServer opens (or recovers) the control plane in opts.DataDir:
// the point store replays its WAL, the tenant journal rebuilds the
// tenant table (recounting series quotas against the recovered store),
// and every journaled non-terminal operation is requeued so it reaches
// a terminal state without client intervention.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, fmt.Errorf("controlplane: DataDir required")
	}
	if opts.AdminKey == "" {
		return nil, fmt.Errorf("controlplane: AdminKey required")
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(opts.TraceBuffer)
	obs.RegisterBuildInfo(reg, "fbdetect-server")

	store, err := wal.OpenStore(filepath.Join(opts.DataDir, "tsdb"),
		opts.Step, opts.WAL, opts.DB, reg)
	if err != nil {
		return nil, err
	}
	now := opts.Clock.Now()
	tenants, err := openTenantStore(filepath.Join(opts.DataDir, "tenants.journal"),
		store.DB, opts.DefaultQuotas, now)
	if err != nil {
		store.Close()
		return nil, err
	}
	opStore, recovered, err := openOpStore(filepath.Join(opts.DataDir, "ops.journal"),
		opts.JournalCompactBytes)
	if err != nil {
		tenants.Close()
		store.Close()
		return nil, err
	}

	pipe, err := core.NewPipeline(opts.Scan, store.DB, nil, nil)
	if err != nil {
		opStore.Close()
		tenants.Close()
		store.Close()
		return nil, err
	}
	pipe.Instrument(reg, tracer)

	s := &Server{
		opts:    opts,
		clock:   opts.Clock,
		reg:     reg,
		tracer:  tracer,
		store:   store,
		tenants: tenants,
		ops:     opStore,
		pipe:    pipe,
		worker:  distributed.NewWorker("control-plane", pipe),

		ingest:   make(map[string]*distributed.IngestHandler),
		profiles: make(map[string]*distributed.ProfilesHandler),
	}
	s.worker.Instrument(reg)
	opStore.Instrument(reg)
	s.tenantsGauge = reg.NewGauge(MetricTenants, "Registered tenants.", nil)
	s.tenantsGauge.Set(float64(len(tenants.List())))
	s.unauthorized = reg.NewCounter(MetricUnauthorized,
		"Requests rejected for missing or invalid credentials.", nil)
	s.recoveredOps = reg.NewCounter(MetricRecoveredOps,
		"Non-terminal operations requeued during crash recovery.", nil)

	if len(opts.WorkerURLs) > 0 {
		coord, err := distributed.NewCoordinatorWithOptions(opts.WorkerURLs, nil, opts.ScanOptions)
		if err != nil {
			opStore.Close()
			tenants.Close()
			store.Close()
			return nil, err
		}
		coord.Instrument(reg)
		s.coord = coord
	}

	s.queue = newQueue(opStore, s.now, tracer)
	s.registerRunners()
	s.queue.start(opts.JobWorkers)
	for _, op := range recovered {
		s.recoveredOps.Inc()
		if err := s.queue.submit(op.ID); err != nil {
			return nil, err
		}
	}
	s.buildMux()
	return s, nil
}

// now is the server's single time source.
func (s *Server) now() time.Time { return s.clock.Now() }

// Handler returns the server's full HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (tests assert against it).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Coordinator returns the worker-ring coordinator (nil without a ring).
func (s *Server) Coordinator() *distributed.Coordinator { return s.coord }

// Store exposes the durable point store.
func (s *Server) Store() *wal.Store { return s.store }

// Snapshot serializes the point store and compacts its WAL.
func (s *Server) Snapshot() error { return s.store.Snapshot() }

// Tenants reports how many tenants are registered.
func (s *Server) Tenants() int { return len(s.tenants.List()) }

// RecoveredOps reports how many non-terminal operations the last open
// requeued — the restart log line operators grep for after a crash.
func (s *Server) RecoveredOps() int {
	n := 0
	for _, op := range s.ops.ListTenant("") {
		if op.Attempts > 0 && !op.Status.Terminal() {
			n++
		}
	}
	return n
}

// Close drains the job queue (canceling in-flight runners), snapshots
// the point store, and closes every journal. A SIGKILL skips all of
// this — that is what the journals are for.
func (s *Server) Close() error {
	s.queue.stop()
	err := s.store.Snapshot()
	if cerr := s.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if cerr := s.tenants.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if cerr := s.ops.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// tenantStore wraps the shared durable store for one tenant: every
// appended point is rewritten into the tenant's namespace, the series
// quota is enforced batch-atomically, and new series/services are
// tracked (and journaled) so quota usage survives restarts.
type tenantStore struct {
	s  *Server
	st *tenantState
}

// AppendBatch implements distributed.IngestStore.
func (t tenantStore) AppendBatch(pts []tsdb.Point) (int, error) {
	ts := t.s.tenants
	nspts := make([]tsdb.Point, len(pts))
	for i, p := range pts {
		nspts[i] = tsdb.Point{ID: namespaceID(t.st.ID, p.ID), T: p.T, V: p.V}
	}

	ts.mu.Lock()
	var added []tsdb.MetricID
	for _, p := range nspts {
		if _, ok := t.st.series[p.ID]; !ok {
			t.st.series[p.ID] = struct{}{} // provisional; rolled back on reject
			added = append(added, p.ID)
		}
	}
	if max := t.st.Quotas.MaxSeries; len(added) > 0 && len(t.st.series) > max {
		// Batches apply atomically: reject the whole thing and roll the
		// provisional series back, so a tenant sitting exactly at its
		// quota keeps writing to existing series but cannot create more.
		for _, id := range added {
			delete(t.st.series, id)
		}
		have := len(t.st.series)
		ts.mu.Unlock()
		t.s.quotaRejected(t.st.ID)
		return 0, &quotaError{tenant: t.st.ID, have: have, add: len(added), max: max}
	}
	newServices := false
	for _, p := range nspts {
		if svc, _, _ := p.ID.Parts(); svc != "" {
			plain := unnamespaceService(t.st.ID, svc)
			if _, ok := t.st.services[plain]; !ok {
				t.st.services[plain] = struct{}{}
				newServices = true
			}
		}
	}
	var jerr error
	if newServices {
		jerr = ts.journalLocked(t.st)
	}
	ts.mu.Unlock()
	if jerr != nil {
		return 0, jerr
	}

	return t.s.store.AppendBatch(nspts)
}

// ingestHandler returns (building on first use) the tenant's /ingest
// handler over its namespacing store.
func (s *Server) ingestHandler(st *tenantState) *distributed.IngestHandler {
	s.handlersMu.Lock()
	defer s.handlersMu.Unlock()
	h, ok := s.ingest[st.ID]
	if !ok {
		h = distributed.NewIngestHandler(tenantStore{s: s, st: st}, s.opts.Ingest)
		// Handler metrics are registry-global: every tenant's handler
		// shares the same counter handles (the registry dedups by name
		// and labels), so instrumenting each one is idempotent.
		h.Instrument(s.reg)
		s.ingest[st.ID] = h
	}
	return h
}

// profilesHandler returns the tenant's /profiles handler.
func (s *Server) profilesHandler(st *tenantState) *distributed.ProfilesHandler {
	s.handlersMu.Lock()
	defer s.handlersMu.Unlock()
	h, ok := s.profiles[st.ID]
	if !ok {
		h = distributed.NewProfilesHandler(tenantStore{s: s, st: st}, s.opts.Profiles)
		h.Instrument(s.reg)
		s.profiles[st.ID] = h
	}
	return h
}

// quotaRejected bumps the tenant's quota-rejection counter.
func (s *Server) quotaRejected(tenant string) {
	s.reg.NewCounter(MetricQuotaRejections,
		"Batches rejected by the per-tenant series quota.", obs.Labels{"tenant": tenant}).Inc()
}
