package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/wal"
)

// OpStatus is the lifecycle state of one async operation.
type OpStatus string

const (
	// OpPending: accepted and journaled, waiting for a job worker.
	OpPending OpStatus = "pending"
	// OpRunning: a job worker is executing it.
	OpRunning OpStatus = "running"
	// OpSucceeded: terminal; Result holds the output.
	OpSucceeded OpStatus = "succeeded"
	// OpFailed: terminal; Error holds the reason.
	OpFailed OpStatus = "failed"
)

// Terminal reports whether the status is final.
func (s OpStatus) Terminal() bool { return s == OpSucceeded || s == OpFailed }

// Operation is one long-running job: submitted with a POST that returns
// 202 + Location: /operations/{id}, polled until Terminal. Every state
// transition is journaled before it is acknowledged, so a SIGKILLed
// server restarts knowing exactly which operations were in flight and
// re-runs them to a terminal state.
type Operation struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	Kind      string          `json:"kind"`
	Params    json.RawMessage `json:"params,omitempty"`
	Status    OpStatus        `json:"status"`
	Attempts  int             `json:"attempts"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
	UpdatedAt time.Time       `json:"updated_at"`
}

// maxOpAttempts bounds how many times a crash-interrupted operation is
// re-run before it is declared failed: runners are idempotent, but an
// operation that SIGKILLs the server every time it runs must not wedge
// the queue forever.
const maxOpAttempts = 3

// opRetention caps how many terminal operations a journal compaction
// keeps (oldest evicted first). In-flight operations are always kept.
const opRetention = 512

// OpStore is the journaled operation table.
type OpStore struct {
	mu           sync.Mutex
	journal      *wal.Journal
	byID         map[string]*Operation
	order        []string // IDs in creation order
	compactBytes int64

	ops      map[string]*obs.Counter // by status; nil-safe when uninstrumented
	inflight *obs.Gauge
}

// openOpStore replays (or creates) the operation journal at path.
// Recovered non-terminal operations are reset to pending with an
// incremented attempt count; Recovered lists them in creation order for
// the queue to resubmit.
func openOpStore(path string, compactBytes int64) (*OpStore, []*Operation, error) {
	os := &OpStore{byID: make(map[string]*Operation), compactBytes: compactBytes}
	j, _, err := wal.OpenJournal(path, func(payload []byte) error {
		var op Operation
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("controlplane: bad operation record: %w", err)
		}
		if _, ok := os.byID[op.ID]; !ok {
			os.order = append(os.order, op.ID)
		}
		os.byID[op.ID] = &op
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	os.journal = j
	var recovered []*Operation
	for _, id := range os.order {
		op := os.byID[id]
		if op.Status.Terminal() {
			continue
		}
		op.Status = OpPending
		op.Attempts++
		if op.Attempts > maxOpAttempts {
			op.Status = OpFailed
			op.Error = fmt.Sprintf("abandoned after %d interrupted attempts", op.Attempts-1)
		}
		if err := os.journalLocked(op); err != nil {
			return nil, nil, err
		}
		if op.Status == OpPending {
			recovered = append(recovered, op)
		}
	}
	return os, recovered, nil
}

// Instrument publishes operation counters to reg.
func (s *OpStore) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops = make(map[string]*obs.Counter)
	for _, st := range []OpStatus{OpPending, OpRunning, OpSucceeded, OpFailed} {
		s.ops[string(st)] = reg.NewCounter(MetricOpsTotal,
			"Async operation state transitions, by new status.", obs.Labels{"status": string(st)})
	}
	s.inflight = reg.NewGauge(MetricOpsInFlight,
		"Operations currently pending or running.", nil)
}

// journalLocked appends op's current state. Caller holds s.mu.
func (s *OpStore) journalLocked(op *Operation) error {
	payload, err := json.Marshal(op)
	if err != nil {
		return err
	}
	if err := s.journal.Append(payload); err != nil {
		return err
	}
	if s.journal.Size() > s.compactBytes {
		s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the journal to one record per live operation,
// evicting the oldest terminal operations beyond opRetention. Caller
// holds s.mu. Compaction failure is non-fatal (the journal still holds
// every record; it is just bigger than we'd like).
func (s *OpStore) compactLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.byID[id].Status.Terminal() {
			terminal++
		}
	}
	evict := terminal - opRetention
	keep := s.order[:0]
	var payloads [][]byte
	for _, id := range s.order {
		op := s.byID[id]
		if evict > 0 && op.Status.Terminal() {
			evict--
			delete(s.byID, id)
			continue
		}
		keep = append(keep, id)
		if p, err := json.Marshal(op); err == nil {
			payloads = append(payloads, p)
		}
	}
	s.order = append([]string(nil), keep...)
	_ = s.journal.Rewrite(payloads)
}

// create journals a fresh pending operation and returns it.
func (s *OpStore) create(tenant, kind string, params json.RawMessage, now time.Time) (*Operation, error) {
	op := &Operation{
		ID:        "op-" + randomHex(8),
		Tenant:    tenant,
		Kind:      kind,
		Params:    params,
		Status:    OpPending,
		CreatedAt: now.UTC(),
		UpdatedAt: now.UTC(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.journalLocked(op); err != nil {
		return nil, err
	}
	s.byID[op.ID] = op
	s.order = append(s.order, op.ID)
	s.ops[string(OpPending)].Inc()
	s.inflight.Inc()
	return s.snapshotLocked(op), nil
}

// transition moves op to status (with optional result/error), journaling
// the change durably before it becomes visible.
func (s *OpStore) transition(id string, status OpStatus, result json.RawMessage, errMsg string, now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("controlplane: unknown operation %s", id)
	}
	op.Status = status
	op.Result = result
	op.Error = errMsg
	op.UpdatedAt = now.UTC()
	if err := s.journalLocked(op); err != nil {
		return err
	}
	s.ops[string(status)].Inc()
	if status.Terminal() {
		s.inflight.Dec()
	}
	return nil
}

// snapshotLocked deep-copies op for handlers. Caller holds s.mu.
func (s *OpStore) snapshotLocked(op *Operation) *Operation {
	cp := *op
	cp.Params = append(json.RawMessage(nil), op.Params...)
	cp.Result = append(json.RawMessage(nil), op.Result...)
	return &cp
}

// Get returns a copy of the operation (nil if unknown).
func (s *OpStore) Get(id string) *Operation {
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.byID[id]
	if !ok {
		return nil
	}
	return s.snapshotLocked(op)
}

// ListTenant returns the tenant's operations in creation order ("" lists
// all — the admin view).
func (s *OpStore) ListTenant(tenant string) []*Operation {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Operation
	for _, id := range s.order {
		op := s.byID[id]
		if tenant == "" || op.Tenant == tenant {
			out = append(out, s.snapshotLocked(op))
		}
	}
	return out
}

// Close closes the operation journal.
func (s *OpStore) Close() error { return s.journal.Close() }

// RunnerFunc executes one operation kind. It must be idempotent: a
// crash-interrupted operation is re-run from the start on recovery (the
// store's appends are idempotent, so re-running a half-finished backfill
// converges). The returned JSON becomes the operation's Result.
type RunnerFunc func(ctx context.Context, op *Operation) (json.RawMessage, error)

// queue drains pending operations through a fixed pool of job workers.
type queue struct {
	store   *OpStore
	runners map[string]RunnerFunc
	now     func() time.Time
	tracer  *obs.Tracer

	ch     chan string
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newQueue(store *OpStore, now func() time.Time, tracer *obs.Tracer) *queue {
	ctx, cancel := context.WithCancel(context.Background())
	return &queue{
		store:   store,
		runners: make(map[string]RunnerFunc),
		now:     now,
		tracer:  tracer,
		ch:      make(chan string, 256),
		ctx:     ctx,
		cancel:  cancel,
	}
}

// register installs the runner for one operation kind.
func (q *queue) register(kind string, fn RunnerFunc) { q.runners[kind] = fn }

// kinds reports the registered operation kinds.
func (q *queue) kinds() []string {
	out := make([]string, 0, len(q.runners))
	for k := range q.runners {
		out = append(out, k)
	}
	return out
}

// start launches n job workers.
func (q *queue) start(n int) {
	for i := 0; i < n; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for {
				select {
				case <-q.ctx.Done():
					return
				case id := <-q.ch:
					q.run(id)
				}
			}
		}()
	}
}

// submit enqueues an already-journaled operation. A full channel fails
// loudly rather than blocking an HTTP handler.
func (q *queue) submit(id string) error {
	select {
	case q.ch <- id:
		return nil
	default:
		return fmt.Errorf("controlplane: job queue full (%d pending)", cap(q.ch))
	}
}

// run executes one operation to a terminal state. Runner panics become
// failures, not server crashes.
func (q *queue) run(id string) {
	op := q.store.Get(id)
	if op == nil || op.Status.Terminal() {
		return
	}
	if err := q.store.transition(id, OpRunning, nil, "", q.now()); err != nil {
		return
	}
	var tr *obs.Trace
	if q.tracer != nil {
		tr = q.tracer.StartTrace("op:" + op.Kind)
		tr.Annotate("operation", op.ID)
		tr.Annotate("tenant", op.Tenant)
	}
	result, err := q.runSafely(op)
	if tr != nil {
		if err != nil {
			tr.Annotate("error", err.Error())
		}
		tr.Finish()
	}
	if err != nil {
		q.store.transition(id, OpFailed, nil, err.Error(), q.now())
		return
	}
	q.store.transition(id, OpSucceeded, result, "", q.now())
}

// runSafely invokes the runner with panic containment.
func (q *queue) runSafely(op *Operation) (result json.RawMessage, err error) {
	fn, ok := q.runners[op.Kind]
	if !ok {
		return nil, fmt.Errorf("unknown operation kind %q", op.Kind)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("operation panicked: %v", r)
		}
	}()
	return fn(q.ctx, op)
}

// stop cancels in-flight runners and waits for the workers to exit.
func (q *queue) stop() {
	q.cancel()
	q.wg.Wait()
}
