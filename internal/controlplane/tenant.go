package controlplane

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/tsdb"
	"fbdetect/internal/wal"
)

// Quotas bounds one tenant's footprint on the shared store. Zero fields
// take the server's defaults at registration.
type Quotas struct {
	// MaxSeries caps the distinct metric series the tenant may create.
	// A batch that would push the tenant past the cap is rejected whole
	// with a 403 (not a 429: waiting won't help, the tenant must drop
	// series or ask for a bigger quota). Writing at exactly the cap is
	// allowed.
	MaxSeries int `json:"max_series"`
	// RatePerSec refills the tenant's token bucket: the sustained
	// request rate allowed across /ingest, /profiles, and /scan.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket depth — how far above the sustained rate a
	// tenant may momentarily spike before drawing 429 + Retry-After.
	Burst int `json:"burst"`
}

// withDefaults fills zero fields from def.
func (q Quotas) withDefaults(def Quotas) Quotas {
	if q.MaxSeries <= 0 {
		q.MaxSeries = def.MaxSeries
	}
	if q.RatePerSec <= 0 {
		q.RatePerSec = def.RatePerSec
	}
	if q.Burst <= 0 {
		q.Burst = def.Burst
	}
	return q
}

// Tenant is one registered API consumer. Key is the bearer credential;
// it is returned on registration and stored server-side (this is a
// reproduction, not a KMS — production would store a hash).
type Tenant struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Key       string    `json:"key,omitempty"`
	Quotas    Quotas    `json:"quotas"`
	CreatedAt time.Time `json:"created_at"`
}

// tenantRecord is the journaled form of one tenant: the Tenant plus the
// service names it has written, so series-quota usage can be recounted
// from the store after a restart.
type tenantRecord struct {
	Tenant   Tenant   `json:"tenant"`
	Services []string `json:"services,omitempty"`
}

// tenantState is one tenant's live state.
type tenantState struct {
	Tenant
	services map[string]struct{}
	series   map[tsdb.MetricID]struct{}
	bucket   *bucket
}

// TenantStore holds the registered tenants, journaled through the WAL's
// blob journal so registrations and service-set growth survive a crash.
type TenantStore struct {
	mu      sync.Mutex
	journal *wal.Journal
	byID    map[string]*tenantState
	byKey   map[string]*tenantState
	order   []string // IDs in registration order
}

// openTenantStore replays (or creates) the tenant journal at path. The
// series sets are rebuilt by recounting each journaled service's metrics
// in db — usage survives restarts without journaling every series ID.
func openTenantStore(path string, db *tsdb.DB, defaults Quotas, now time.Time) (*TenantStore, error) {
	ts := &TenantStore{
		byID:  make(map[string]*tenantState),
		byKey: make(map[string]*tenantState),
	}
	j, _, err := wal.OpenJournal(path, func(payload []byte) error {
		var rec tenantRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("controlplane: bad tenant record: %w", err)
		}
		ts.applyLocked(rec, defaults, now)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ts.journal = j
	for _, st := range ts.byID {
		for svc := range st.services {
			for _, id := range db.Metrics(namespaceService(st.ID, svc)) {
				st.series[id] = struct{}{}
			}
		}
	}
	return ts, nil
}

// applyLocked installs one journaled record (latest record per ID wins).
// Only used during replay, before the store is shared.
func (ts *TenantStore) applyLocked(rec tenantRecord, defaults Quotas, now time.Time) {
	st, ok := ts.byID[rec.Tenant.ID]
	if !ok {
		st = &tenantState{
			services: make(map[string]struct{}),
			series:   make(map[tsdb.MetricID]struct{}),
		}
		ts.byID[rec.Tenant.ID] = st
		ts.order = append(ts.order, rec.Tenant.ID)
	} else {
		delete(ts.byKey, st.Key)
	}
	st.Tenant = rec.Tenant
	st.Tenant.Quotas = st.Tenant.Quotas.withDefaults(defaults)
	st.bucket = newBucket(st.Tenant.Quotas.RatePerSec, st.Tenant.Quotas.Burst, now)
	for _, svc := range rec.Services {
		st.services[svc] = struct{}{}
	}
	ts.byKey[st.Key] = st
}

// record renders st's journal form. Caller holds ts.mu.
func (st *tenantState) record() tenantRecord {
	rec := tenantRecord{Tenant: st.Tenant}
	for svc := range st.services {
		rec.Services = append(rec.Services, svc)
	}
	sort.Strings(rec.Services)
	return rec
}

// journalLocked appends st's current record. Caller holds ts.mu.
func (ts *TenantStore) journalLocked(st *tenantState) error {
	payload, err := json.Marshal(st.record())
	if err != nil {
		return err
	}
	return ts.journal.Append(payload)
}

// Register creates a tenant with a fresh random ID and API key, journals
// it durably, and returns it (Key included — the only time the caller
// sees it).
func (ts *TenantStore) Register(name string, q Quotas, defaults Quotas, now time.Time) (Tenant, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return Tenant{}, fmt.Errorf("controlplane: tenant name required")
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st := &tenantState{
		Tenant: Tenant{
			ID:        "t-" + randomHex(6),
			Name:      name,
			Key:       randomHex(24),
			Quotas:    q.withDefaults(defaults),
			CreatedAt: now.UTC(),
		},
		services: make(map[string]struct{}),
		series:   make(map[tsdb.MetricID]struct{}),
	}
	st.bucket = newBucket(st.Quotas.RatePerSec, st.Quotas.Burst, now)
	if err := ts.journalLocked(st); err != nil {
		return Tenant{}, err
	}
	ts.byID[st.ID] = st
	ts.byKey[st.Key] = st
	ts.order = append(ts.order, st.ID)
	return st.Tenant, nil
}

// byAPIKey resolves a bearer key to its tenant state (nil if unknown).
func (ts *TenantStore) byAPIKey(key string) *tenantState {
	if key == "" {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.byKey[key]
}

// get returns the tenant state for id (nil if unknown).
func (ts *TenantStore) get(id string) *tenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.byID[id]
}

// List returns every tenant in registration order, keys redacted.
func (ts *TenantStore) List() []Tenant {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Tenant, 0, len(ts.order))
	for _, id := range ts.order {
		t := ts.byID[id].Tenant
		t.Key = ""
		out = append(out, t)
	}
	return out
}

// Close closes the tenant journal.
func (ts *TenantStore) Close() error { return ts.journal.Close() }

// randomHex returns n crypto-random bytes hex-encoded.
func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("controlplane: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b)
}

// namespaceService maps a tenant-visible service name into the shared
// TSDB's namespace: "<tenantID>:<service>". MetricIDs are
// service/entity/metric, so prefixing the service component isolates
// every tenant series under a key no other tenant's requests can form.
func namespaceService(tenantID, service string) string {
	return tenantID + ":" + service
}

// unnamespaceService strips the tenant prefix for responses. Unprefixed
// names pass through.
func unnamespaceService(tenantID, service string) string {
	return strings.TrimPrefix(service, tenantID+":")
}

// namespaceID rewrites one metric ID into the tenant's namespace.
func namespaceID(tenantID string, id tsdb.MetricID) tsdb.MetricID {
	service, entity, metric := id.Parts()
	if service == "" {
		// Malformed IDs (no service part) still get isolated: the whole
		// ID becomes the metric under the tenant's empty service.
		return tsdb.ID(namespaceService(tenantID, ""), entity, metric)
	}
	return tsdb.ID(namespaceService(tenantID, service), entity, metric)
}

// quotaError is the StatusError the namespacing store returns when a
// batch would exceed the tenant's series quota; /ingest maps it to 403.
type quotaError struct {
	tenant  string
	have    int
	add     int
	max     int
	message string
}

func (e *quotaError) Error() string {
	if e.message != "" {
		return e.message
	}
	return fmt.Sprintf("tenant %s series quota exceeded: %d existing + %d new > %d allowed",
		e.tenant, e.have, e.add, e.max)
}

func (e *quotaError) HTTPStatus() int { return http.StatusForbidden }
