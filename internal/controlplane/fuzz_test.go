package controlplane

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"fbdetect/internal/resilience"
)

// fuzzServer is built once per process: opening WAL-backed stores per
// fuzz execution would turn the fuzzer into a filesystem benchmark.
var (
	fuzzOnce   sync.Once
	fuzzSrv    *Server
	fuzzTenant Tenant
	fuzzErr    error
)

const fuzzAdminKey = "fuzz-admin-3b1f0d2c"

func fuzzSetup() {
	dir, err := os.MkdirTemp("", "cp-fuzz-*")
	if err != nil {
		fuzzErr = err
		return
	}
	clk := resilience.NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)).AutoAdvance()
	fuzzSrv, fuzzErr = NewServer(Options{
		DataDir:  dir,
		AdminKey: fuzzAdminKey,
		Clock:    clk,
		// Generous limits: the fuzzer probes parsing, and a rate-limited
		// 429 on every exec would hide the interesting paths.
		DefaultQuotas: Quotas{MaxSeries: 1 << 20, RatePerSec: 1 << 20, Burst: 1 << 20},
	})
	if fuzzErr != nil {
		return
	}
	fuzzTenant, fuzzErr = fuzzSrv.tenants.Register("fuzz", Quotas{}, fuzzSrv.opts.DefaultQuotas, clk.Now())
}

// fuzzRoutes is the authenticated surface the fuzzer drives. Backfill
// submissions are safe: runner-side caps bound count and throttle, so a
// fuzzer-crafted operation cannot wedge a job worker.
var fuzzRoutes = []struct{ method, path string }{
	{"POST", "/ingest"},
	{"POST", "/profiles"},
	{"POST", "/scan"},
	{"POST", "/operations"},
	{"GET", "/operations"},
	{"GET", "/operations/op-00000000"},
	{"POST", "/admin/tenants"},
	{"GET", "/admin/tenants"},
	{"GET", "/admin/workers"},
	{"POST", "/admin/workers"},
	{"POST", "/admin/workers/drain"},
}

// FuzzAPIRequest throws arbitrary auth headers and request bodies at the
// control-plane mux: every response must be a valid HTTP status (no
// panics, no hangs), unauthenticated requests must never be served, and
// admin endpoints must never open up to a tenant key.
func FuzzAPIRequest(f *testing.F) {
	f.Add(uint8(0), uint8(0), "Bearer abc", `{"metric":"web//cpu","time":"2026-08-08T12:00:00Z","value":1}`)
	f.Add(uint8(3), uint8(1), "", `{"kind":"backfill","params":{"service":"web","metric":"cpu","count":8}}`)
	f.Add(uint8(3), uint8(2), "x", `{"kind":"sweep","params":{"service":"web"}}`)
	f.Add(uint8(2), uint8(1), "Bearer ", `{"service":"web","scan_time":"2026-08-08T12:00:00Z"}`)
	f.Add(uint8(6), uint8(3), "junk", `{"name":"t","quotas":{"max_series":-1}}`)
	f.Add(uint8(10), uint8(3), "Basic Zm9v", `{"url":"http://w1","drain":true}`)
	f.Add(uint8(0), uint8(2), "Bearer \x00\xff", "not json at all\n\n{{{")

	f.Fuzz(func(t *testing.T, routeSel, authSel uint8, authRaw, body string) {
		fuzzOnce.Do(fuzzSetup)
		if fuzzErr != nil {
			t.Skipf("fuzz server unavailable: %v", fuzzErr)
		}
		route := fuzzRoutes[int(routeSel)%len(fuzzRoutes)]
		req := httptest.NewRequest(route.method, route.path, strings.NewReader(body))
		admin := false
		switch authSel % 4 {
		case 0: // raw fuzzer-controlled header
			req.Header.Set("Authorization", authRaw)
		case 1: // valid tenant key
			req.Header.Set("Authorization", "Bearer "+fuzzTenant.Key)
		case 2: // fuzzer-controlled X-API-Key
			req.Header.Set("X-API-Key", authRaw)
		case 3: // admin key
			req.Header.Set("Authorization", "Bearer "+fuzzAdminKey)
			admin = true
		}
		rr := httptest.NewRecorder()
		fuzzSrv.Handler().ServeHTTP(rr, req)

		if rr.Code < 100 || rr.Code > 599 {
			t.Fatalf("%s %s: invalid status %d", route.method, route.path, rr.Code)
		}
		isAdminRoute := strings.HasPrefix(route.path, "/admin/")
		if isAdminRoute && !admin && rr.Code != http.StatusUnauthorized &&
			rr.Code != http.StatusMethodNotAllowed && rr.Code != http.StatusNotFound {
			// A fuzzed credential must never unlock the admin plane
			// (unless the fuzzer literally reproduces the admin key,
			// which a 16-byte random constant makes implausible).
			if authRaw != fuzzAdminKey && !strings.Contains(authRaw, fuzzAdminKey) {
				t.Fatalf("%s %s with non-admin auth => %d, want 401", route.method, route.path, rr.Code)
			}
		}
		if !isAdminRoute && authSel%4 != 1 && authSel%4 != 3 {
			// Fuzzed tenant credentials likewise must not authenticate.
			if rr.Code != http.StatusUnauthorized && rr.Code != http.StatusNotFound &&
				rr.Code != http.StatusMethodNotAllowed &&
				!strings.Contains(authRaw, fuzzTenant.Key) {
				t.Fatalf("%s %s with fuzzed auth %q => %d, want 401", route.method, route.path, authRaw, rr.Code)
			}
		}
	})
}
