package controlplane

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"fbdetect/internal/tsdb"
)

// Built-in operation kinds.
const (
	// OpKindBackfill writes a deterministic synthetic series (optionally
	// with a step change) through the tenant's quota-enforced store —
	// the bulk-load path, and the crash drill's workhorse: its writes
	// are idempotent TSDB appends, so a SIGKILL mid-backfill re-runs to
	// the same final state.
	OpKindBackfill = "backfill"
	// OpKindSweep scans one tenant service and reports, for a ladder of
	// thresholds, how many regressions each floor would surface — the
	// floor-curve sweep used to pick a deployment threshold.
	OpKindSweep = "sweep"
	// OpKindRebalance health-checks the worker ring and reports the
	// current service→worker assignment. Without a ring it fails
	// terminally (exercising the failure path).
	OpKindRebalance = "rebalance"
)

// Backfill abuse bounds: one operation may not write more points or
// sleep longer per batch than these, so a hostile (or fuzzed) request
// cannot wedge a job worker.
const (
	maxBackfillPoints     = 1 << 20
	maxBackfillThrottleMS = 10_000
)

// registerRunners installs the built-in operation kinds.
func (s *Server) registerRunners() {
	s.queue.register(OpKindBackfill, s.runBackfill)
	s.queue.register(OpKindSweep, s.runSweep)
	s.queue.register(OpKindRebalance, s.runRebalance)
}

// backfillParams parameterizes one backfill operation.
type backfillParams struct {
	Service string  `json:"service"`
	Entity  string  `json:"entity"`
	Metric  string  `json:"metric"`
	Start   string  `json:"start"` // RFC 3339; defaults to Count steps before now
	StepSec int     `json:"step_seconds"`
	Count   int     `json:"count"`
	Base    float64 `json:"base"`
	// StepAt/Factor plant a level shift at sample index StepAt: values
	// from there on are Base*Factor — a synthetic regression for the
	// detection pipeline to find.
	StepAt int     `json:"step_at"`
	Factor float64 `json:"factor"`
	// ThrottleMS sleeps between batches, stretching the run so crash
	// drills have a window to SIGKILL the server mid-operation.
	ThrottleMS int `json:"throttle_ms"`
	Batch      int `json:"batch"`
}

// runBackfill generates the series and appends it through the tenant's
// namespacing store, so quota enforcement and service tracking apply to
// backfills exactly as to live ingest.
func (s *Server) runBackfill(ctx context.Context, op *Operation) (json.RawMessage, error) {
	var p backfillParams
	if err := json.Unmarshal(op.Params, &p); err != nil {
		return nil, fmt.Errorf("bad backfill params: %w", err)
	}
	if p.Service == "" || p.Metric == "" || p.Count <= 0 {
		return nil, fmt.Errorf("backfill requires service, metric, and count > 0")
	}
	if p.Count > maxBackfillPoints {
		return nil, fmt.Errorf("backfill count %d exceeds limit %d", p.Count, maxBackfillPoints)
	}
	if p.ThrottleMS > maxBackfillThrottleMS {
		return nil, fmt.Errorf("backfill throttle_ms %d exceeds limit %d", p.ThrottleMS, maxBackfillThrottleMS)
	}
	st := s.tenants.get(op.Tenant)
	if st == nil {
		return nil, fmt.Errorf("tenant %s no longer exists", op.Tenant)
	}
	if p.Entity == "" {
		p.Entity = "host0"
	}
	if p.StepSec <= 0 {
		p.StepSec = int(s.opts.Step / time.Second)
	}
	if p.Base == 0 {
		p.Base = 100
	}
	if p.Factor == 0 {
		p.Factor = 1
	}
	if p.Batch <= 0 {
		p.Batch = 64
	}
	step := time.Duration(p.StepSec) * time.Second
	start := s.now().Add(-time.Duration(p.Count) * step)
	if p.Start != "" {
		t, err := time.Parse(time.RFC3339, p.Start)
		if err != nil {
			return nil, fmt.Errorf("bad backfill start: %w", err)
		}
		start = t
	}

	store := tenantStore{s: s, st: st}
	id := tsdb.ID(p.Service, p.Entity, p.Metric)
	written := 0
	for off := 0; off < p.Count; off += p.Batch {
		if err := ctx.Err(); err != nil {
			// Server shutting down: the journaled pending state re-runs
			// this operation (idempotently) after restart.
			return nil, err
		}
		n := p.Batch
		if off+n > p.Count {
			n = p.Count - off
		}
		pts := make([]tsdb.Point, n)
		for i := 0; i < n; i++ {
			k := off + i
			v := p.Base
			if p.StepAt > 0 && k >= p.StepAt {
				v = p.Base * p.Factor
			}
			pts[i] = tsdb.Point{ID: id, T: start.Add(time.Duration(k) * step), V: v}
		}
		n, err := store.AppendBatch(pts)
		if err != nil {
			return nil, err
		}
		written += n
		if p.ThrottleMS > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(p.ThrottleMS) * time.Millisecond):
			}
		}
	}
	return json.Marshal(map[string]any{
		"written": written,
		"series":  string(id),
		"start":   start.UTC().Format(time.RFC3339),
		"end":     start.Add(time.Duration(p.Count-1) * step).UTC().Format(time.RFC3339),
	})
}

// sweepParams parameterizes one floor-curve sweep.
type sweepParams struct {
	Service    string    `json:"service"`
	ScanTime   time.Time `json:"scan_time"`
	Thresholds []float64 `json:"thresholds"`
}

// sweepPoint is one rung of the resulting floor curve.
type sweepPoint struct {
	Threshold float64 `json:"threshold"`
	Reported  int     `json:"reported"`
}

// runSweep scans the tenant's service once (through the shared worker,
// serialized with HTTP /scan on the pipeline mutex) and counts how many
// reported regressions clear each candidate threshold.
func (s *Server) runSweep(ctx context.Context, op *Operation) (json.RawMessage, error) {
	var p sweepParams
	if err := json.Unmarshal(op.Params, &p); err != nil {
		return nil, fmt.Errorf("bad sweep params: %w", err)
	}
	if p.Service == "" {
		return nil, fmt.Errorf("sweep requires service")
	}
	if p.ScanTime.IsZero() {
		p.ScanTime = s.now()
	}
	if len(p.Thresholds) == 0 {
		p.Thresholds = []float64{0.0005, 0.001, 0.005, 0.01, 0.05}
	}
	st := s.tenants.get(op.Tenant)
	if st == nil {
		return nil, fmt.Errorf("tenant %s no longer exists", op.Tenant)
	}
	resp, err := s.scanTenantService(ctx, st, p.Service, p.ScanTime)
	if err != nil {
		return nil, err
	}
	sort.Float64s(p.Thresholds)
	curve := make([]sweepPoint, len(p.Thresholds))
	for i, th := range p.Thresholds {
		n := 0
		for _, r := range resp.Reported {
			if math.Abs(r.Relative) >= th {
				n++
			}
		}
		curve[i] = sweepPoint{Threshold: th, Reported: n}
	}
	return json.Marshal(map[string]any{
		"service": p.Service,
		"curve":   curve,
		"funnel":  resp.Funnel,
	})
}

// runRebalance health-checks the worker ring and reports where each of
// the tenant's services currently lands on it.
func (s *Server) runRebalance(ctx context.Context, op *Operation) (json.RawMessage, error) {
	if s.coord == nil {
		return nil, fmt.Errorf("no worker ring configured")
	}
	s.coord.Pool().CheckNow(ctx)
	st := s.tenants.get(op.Tenant)
	if st == nil {
		return nil, fmt.Errorf("tenant %s no longer exists", op.Tenant)
	}
	assignment := map[string]string{}
	s.tenants.mu.Lock()
	services := make([]string, 0, len(st.services))
	for svc := range st.services {
		services = append(services, svc)
	}
	s.tenants.mu.Unlock()
	sort.Strings(services)
	for _, svc := range services {
		assignment[svc] = s.coord.WorkerFor(namespaceService(st.ID, svc))
	}
	return json.Marshal(map[string]any{
		"workers":    s.coord.Workers(),
		"assignment": assignment,
	})
}
