package controlplane

import (
	"sync"
	"time"
)

// bucket is a token bucket: capacity `burst`, refilled at `rate` tokens
// per second. Each admitted request spends one token. The clock is
// injected by the caller (the server's resilience.Clock) so limit edges
// are testable on virtual time.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
}

// newBucket returns a full bucket as of now. Non-positive rate or burst
// disables limiting (take always admits) — the "unlimited tenant" knob.
func newBucket(rate float64, burst int, now time.Time) *bucket {
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take attempts to spend one token at time now. When the bucket is
// empty it reports how long until the next token exists — the
// Retry-After hint — without going into debt.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 || b.burst <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}
