package controlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fbdetect/internal/resilience"
)

// Client talks to a control-plane server as one tenant. It exists for
// the async-operation contract: submit with POST /operations, then poll
// the returned Location honoring the server's Retry-After hints.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Key is the tenant API key (or the admin key for admin calls).
	Key string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// Clock paces polling; tests inject a FakeClock. Default real time.
	Clock resilience.Clock
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) clock() resilience.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return resilience.RealClock()
}

// do issues one authenticated JSON request.
func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.Key)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.httpClient().Do(req)
}

// readError drains resp into a descriptive error.
func readError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
}

// SubmitOperation POSTs an operation and returns the accepted Operation
// plus the Location to poll.
func (c *Client) SubmitOperation(ctx context.Context, kind string, params any) (*Operation, string, error) {
	var raw json.RawMessage
	if params != nil {
		p, err := json.Marshal(params)
		if err != nil {
			return nil, "", err
		}
		raw = p
	}
	resp, err := c.do(ctx, http.MethodPost, "/operations", opParams{Kind: kind, Params: raw})
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, "", readError(resp)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		return nil, "", fmt.Errorf("202 without Location header")
	}
	var op Operation
	if err := json.NewDecoder(resp.Body).Decode(&op); err != nil {
		return nil, "", err
	}
	return &op, loc, nil
}

// GetOperation fetches one operation by its poll location. For a
// non-terminal operation the error is nil and retryAfter carries the
// server's Retry-After hint (defaulted to a second if absent).
func (c *Client) GetOperation(ctx context.Context, location string) (op *Operation, retryAfter time.Duration, err error) {
	resp, err := c.do(ctx, http.MethodGet, location, nil)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, readError(resp)
	}
	op = new(Operation)
	if err := json.NewDecoder(resp.Body).Decode(op); err != nil {
		return nil, 0, err
	}
	retryAfter = time.Second
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		retryAfter = time.Duration(sec) * time.Second
	}
	return op, retryAfter, nil
}

// WaitOperation polls location until the operation is terminal, sleeping
// the server's Retry-After between polls (on the injected clock), and
// returns the terminal operation. An operation that ends failed is
// returned along with a Permanent error — retrying the poll cannot fix
// a failed operation.
func (c *Client) WaitOperation(ctx context.Context, location string) (*Operation, error) {
	clk := c.clock()
	for {
		op, retryAfter, err := c.GetOperation(ctx, location)
		if err != nil {
			return nil, err
		}
		if op.Status.Terminal() {
			if op.Status == OpFailed {
				return op, resilience.Permanent(fmt.Errorf("operation %s failed: %s", op.ID, op.Error))
			}
			return op, nil
		}
		if err := clk.Sleep(ctx, retryAfter); err != nil {
			return nil, resilience.RetryAfter(err, retryAfter)
		}
	}
}

// RegisterTenant registers a tenant through the admin API (the client's
// Key must be the admin key) and returns it, API key included.
func (c *Client) RegisterTenant(ctx context.Context, name string, q Quotas) (Tenant, error) {
	resp, err := c.do(ctx, http.MethodPost, "/admin/tenants", registerTenantRequest{Name: name, Quotas: q})
	if err != nil {
		return Tenant{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return Tenant{}, readError(resp)
	}
	var t Tenant
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return Tenant{}, err
	}
	return t, nil
}
