package fleet

import (
	"math"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/popshift"
	"fbdetect/internal/tsdb"
)

var popT0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func popTestConfig(pop *Population) Config {
	tree, err := NewTree(&Node{Name: "root", SelfWeight: 1, Children: []*Node{
		{Name: "work", SelfWeight: 50},
	}})
	if err != nil {
		panic(err)
	}
	return Config{
		Name:           "popsvc",
		Servers:        1000,
		Step:           time.Minute,
		SamplesPerStep: 1e6,
		BaseCPU:        0.5,
		CPUNoise:       0.05,
		Tree:           tree,
		Seed:           7,
		Population:     pop,
	}
}

func twoStrata() *Population {
	return &Population{
		Strata: []Stratum{
			{Generation: "old", Fraction: 0.8, CostFactor: 1},
			{Generation: "new", Fraction: 0.2, CostFactor: 0.7},
		},
	}
}

// TestGenerationFractionBounds is the regression test for the
// validation fix: per-generation fractions outside [0,1] must fail
// loudly even when the set sums to 1.
func TestGenerationFractionBounds(t *testing.T) {
	cases := []struct {
		name string
		gens []Generation
		want string
	}{
		{"negative offsets sum to one", []Generation{
			{Name: "a", Fraction: 1.5, SpeedFactor: 1},
			{Name: "b", Fraction: -0.5, SpeedFactor: 1},
		}, "out of [0,1]"},
		{"single negative", []Generation{
			{Name: "a", Fraction: -0.2, SpeedFactor: 1},
			{Name: "b", Fraction: 1.2, SpeedFactor: 1},
		}, "out of [0,1]"},
		{"nan fraction", []Generation{
			{Name: "a", Fraction: math.NaN(), SpeedFactor: 1},
			{Name: "b", Fraction: 1, SpeedFactor: 1},
		}, "out of [0,1]"},
		{"sum below one still caught", []Generation{
			{Name: "a", Fraction: 0.5, SpeedFactor: 1},
			{Name: "b", Fraction: 0.3, SpeedFactor: 1},
		}, "sum to"},
	}
	for _, tc := range cases {
		cfg := popTestConfig(nil)
		cfg.Generations = tc.gens
		_, err := NewService(cfg)
		if err == nil {
			t.Errorf("%s: invalid generations accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The valid case must still construct.
	cfg := popTestConfig(nil)
	cfg.Generations = []Generation{
		{Name: "a", Fraction: 0.6, SpeedFactor: 1},
		{Name: "b", Fraction: 0.4, SpeedFactor: 1.2},
	}
	if _, err := NewService(cfg); err != nil {
		t.Errorf("valid generations rejected: %v", err)
	}
}

func TestPopulationValidation(t *testing.T) {
	cases := []struct {
		name string
		pop  *Population
		want string
	}{
		{"one stratum", &Population{Strata: []Stratum{
			{Generation: "g", Fraction: 1},
		}}, ">= 2 strata"},
		{"fractions do not sum", &Population{Strata: []Stratum{
			{Generation: "a", Fraction: 0.5},
			{Generation: "b", Fraction: 0.2},
		}}, "sum to"},
		{"negative fraction", &Population{Strata: []Stratum{
			{Generation: "a", Fraction: 1.5},
			{Generation: "b", Fraction: -0.5},
		}}, "[0,1]"},
		{"untagged stratum", &Population{Strata: []Stratum{
			{Fraction: 0.5},
			{Generation: "b", Fraction: 0.5},
		}}, "no population features"},
		{"reserved bytes", &Population{Strata: []Stratum{
			{Generation: "a;b", Fraction: 0.5},
			{Generation: "c", Fraction: 0.5},
		}}, "reserved bytes"},
		{"duplicate stratum", &Population{Strata: []Stratum{
			{Generation: "a", Fraction: 0.5},
			{Generation: "a", Fraction: 0.5},
		}}, "duplicate"},
		{"negative cost factor", &Population{Strata: []Stratum{
			{Generation: "a", Fraction: 0.5, CostFactor: -1},
			{Generation: "b", Fraction: 0.5},
		}}, "negative cost factor"},
		{"shift wrong arity", &Population{
			Strata: []Stratum{
				{Generation: "a", Fraction: 0.5},
				{Generation: "b", Fraction: 0.5},
			},
			Shifts: []MixShift{{At: popT0, Fractions: []float64{1}}},
		}, "1 fractions for 2 strata"},
		{"shift bad sum", &Population{
			Strata: []Stratum{
				{Generation: "a", Fraction: 0.5},
				{Generation: "b", Fraction: 0.5},
			},
			Shifts: []MixShift{{At: popT0, Fractions: []float64{0.9, 0.9}}},
		}, "sum to"},
		{"overlapping ramps", &Population{
			Strata: []Stratum{
				{Generation: "a", Fraction: 0.5},
				{Generation: "b", Fraction: 0.5},
			},
			Shifts: []MixShift{
				{At: popT0, Ramp: time.Hour, Fractions: []float64{0.2, 0.8}},
				{At: popT0.Add(30 * time.Minute), Fractions: []float64{0.5, 0.5}},
			},
		}, "overlaps"},
	}
	for _, tc := range cases {
		_, err := NewService(popTestConfig(tc.pop))
		if err == nil {
			t.Errorf("%s: invalid population accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := NewService(popTestConfig(twoStrata())); err != nil {
		t.Errorf("valid population rejected: %v", err)
	}
}

func TestFractionsAt(t *testing.T) {
	pop := twoStrata()
	pop.Shifts = []MixShift{
		{At: popT0.Add(time.Hour), Ramp: 2 * time.Hour, Fractions: []float64{0.2, 0.8}},
		{At: popT0.Add(4 * time.Hour), Fractions: []float64{0.5, 0.5}},
	}
	check := func(at time.Time, want0 float64) {
		t.Helper()
		fr := pop.fractionsAt(at)
		if math.Abs(fr[0]-want0) > 1e-12 || math.Abs(fr[0]+fr[1]-1) > 1e-12 {
			t.Errorf("fractionsAt(%v) = %v, want [%v, %v]", at, fr, want0, 1-want0)
		}
	}
	check(popT0, 0.8)                                // before any shift
	check(popT0.Add(time.Hour), 0.8)                 // ramp start
	check(popT0.Add(2*time.Hour), 0.5)               // halfway up the ramp
	check(popT0.Add(3*time.Hour), 0.2)               // ramp complete
	check(popT0.Add(3*time.Hour+30*time.Minute), 0.2) // between shifts
	check(popT0.Add(4*time.Hour), 0.5)               // step shift applied
}

// TestPopulationEmission runs a short simulation and checks the emitted
// series: weight series track the scheduled mix exactly, per-stratum
// gCPU series stay near their own cost levels, and the aggregate tracks
// the population-weighted mix.
func TestPopulationEmission(t *testing.T) {
	pop := &Population{
		Strata: []Stratum{
			{Generation: "old", Region: "west", Fraction: 0.9, CostFactor: 1},
			{Generation: "new", Region: "west", Fraction: 0.1, CostFactor: 0.5},
		},
		Shifts: []MixShift{{At: popT0.Add(time.Hour), Fractions: []float64{0.1, 0.9}}},
	}
	cfg := popTestConfig(pop)
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New(time.Minute)
	if err := svc.Run(db, nil, popT0, popT0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}

	oldTag := popshift.Stratum{Gen: "old", Region: "west"}
	newTag := popshift.Stratum{Gen: "new", Region: "west"}

	// Weight series: exact, noise-free, stepping at the shift.
	wOld, err := db.Full(tsdb.ID("popsvc", popshift.TagEntity("", oldTag), popshift.WeightMetric))
	if err != nil {
		t.Fatal(err)
	}
	if wOld.Values[0] != 0.9 || wOld.Values[len(wOld.Values)-1] != 0.1 {
		t.Errorf("old weight endpoints = %v, %v; want 0.9, 0.1",
			wOld.Values[0], wOld.Values[len(wOld.Values)-1])
	}
	wNew, err := db.Full(tsdb.ID("popsvc", popshift.TagEntity("", newTag), popshift.WeightMetric))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wOld.Values {
		if math.Abs(wOld.Values[i]+wNew.Values[i]-1) > 1e-12 {
			t.Fatalf("weights at step %d do not sum to 1", i)
		}
	}

	// Per-stratum gCPU: the cheap stratum's series must sit near half the
	// expensive one's, and neither may move at the shift (behavior is
	// constant; only the mix moved).
	mean := func(vs []float64) float64 {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	gOld, err := db.Full(tsdb.ID("popsvc", popshift.TagEntity("work", oldTag), "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	gNew, err := db.Full(tsdb.ID("popsvc", popshift.TagEntity("work", newTag), "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	mOld, mNew := mean(gOld.Values), mean(gNew.Values)
	if math.Abs(mNew/mOld-0.5) > 0.05 {
		t.Errorf("stratum cost ratio = %v, want ~0.5", mNew/mOld)
	}
	preOld, postOld := mean(gOld.Values[:60]), mean(gOld.Values[60:])
	if math.Abs(postOld-preOld) > 0.05*preOld {
		t.Errorf("per-stratum behavior moved across the shift: %v -> %v", preOld, postOld)
	}

	// Aggregate gCPU: must step down as the cheap stratum takes over
	// (mix factor 0.95 -> 0.55).
	agg, err := db.Full(tsdb.ID("popsvc", "work", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	preAgg, postAgg := mean(agg.Values[:60]), mean(agg.Values[60:])
	wantRatio := (0.1*1 + 0.9*0.5) / (0.9*1 + 0.1*0.5)
	if math.Abs(postAgg/preAgg-wantRatio) > 0.05 {
		t.Errorf("aggregate mix ratio = %v, want ~%v", postAgg/preAgg, wantRatio)
	}
}

// TestPopulationNilLeavesSeriesBitExact: configuring no population must
// leave every emitted series bit-identical to the pre-population
// simulator — the rng sequence is not perturbed.
func TestPopulationNilLeavesSeriesBitExact(t *testing.T) {
	run := func(pop *Population) *tsdb.DB {
		cfg := popTestConfig(pop)
		svc, err := NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db := tsdb.New(time.Minute)
		if err := svc.Run(db, nil, popT0, popT0.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		return db
	}
	plain := run(nil)
	stratified := run(twoStrata())
	for _, id := range plain.Metrics("popsvc") {
		a, err := plain.Full(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := stratified.Full(id)
		if err != nil {
			t.Fatalf("series %s missing with population configured: %v", id, err)
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("series %s length changed", id)
		}
	}
	// The sharp check: a population whose strata all have cost factor 1
	// and never shift leaves the aggregates bit-identical (mix factor is
	// exactly 1 and population draws come from a separate rng).
	neutral := &Population{Strata: []Stratum{
		{Generation: "a", Fraction: 0.5, CostFactor: 1},
		{Generation: "b", Fraction: 0.5, CostFactor: 1},
	}}
	withNeutral := run(neutral)
	for _, id := range plain.Metrics("popsvc") {
		a, _ := plain.Full(id)
		b, err := withNeutral.Full(id)
		if err != nil {
			t.Fatalf("series %s missing: %v", id, err)
		}
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				t.Fatalf("series %s diverges at step %d: %v != %v (rng perturbed)",
					id, i, a.Values[i], b.Values[i])
			}
		}
	}
}
