package fleet

import (
	"math/rand"

	"fbdetect/internal/stacktrace"
)

// ExpectedSamples returns a SampleSet whose weights are the exact expected
// sample mass for each root-to-node path given totalSamples stack-trace
// samples: weight(path to n) = totalSamples * SelfWeight(n) / TotalWeight.
// Root-cause attribution and cost-shift analysis consume these exact sets;
// the paper's production system approximates them with enough raw samples.
func (t *Tree) ExpectedSamples(totalSamples float64) *stacktrace.SampleSet {
	ss := stacktrace.NewSampleSet()
	total := t.TotalWeight()
	if total == 0 || totalSamples <= 0 {
		return ss
	}
	var walk func(n *Node, path stacktrace.Trace)
	walk = func(n *Node, path stacktrace.Trace) {
		frame := stacktrace.Frame{Subroutine: n.Name, Class: n.Class, Metadata: n.Metadata}
		path = append(path, frame)
		if n.SelfWeight > 0 {
			tr := make(stacktrace.Trace, len(path))
			copy(tr, path)
			ss.Add(tr, totalSamples*n.SelfWeight/total)
		}
		for _, c := range n.Children {
			walk(c, path)
		}
	}
	walk(t.Root, nil)
	return ss
}

// DrawSamples draws n random stack-trace samples from the tree's
// self-weight distribution, modeling what the fleet-wide profilers capture
// in one collection interval.
func (t *Tree) DrawSamples(rng *rand.Rand, n int) *stacktrace.SampleSet {
	ss := stacktrace.NewSampleSet()
	total := t.TotalWeight()
	if total == 0 || n <= 0 {
		return ss
	}
	// Build the cumulative distribution over nodes once.
	type entry struct {
		node *Node
		cum  float64
	}
	var entries []entry
	cum := 0.0
	var walk func(n *Node)
	walk = func(nd *Node) {
		if nd.SelfWeight > 0 {
			cum += nd.SelfWeight
			entries = append(entries, entry{nd, cum})
		}
		for _, c := range nd.Children {
			walk(c)
		}
	}
	walk(t.Root)
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		// Binary search the cumulative table.
		lo, hi := 0, len(entries)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if entries[mid].cum < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ss.Add(t.tracePath(entries[lo].node), 1)
	}
	return ss
}

func (t *Tree) tracePath(n *Node) stacktrace.Trace {
	var rev []*Node
	for ; n != nil; n = n.parent {
		rev = append(rev, n)
	}
	tr := make(stacktrace.Trace, len(rev))
	for i, nd := range rev {
		tr[len(rev)-1-i] = stacktrace.Frame{Subroutine: nd.Name, Class: nd.Class,
			Metadata: nd.Metadata}
	}
	return tr
}
