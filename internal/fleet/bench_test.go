package fleet

import (
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/tsdb"
)

func BenchmarkServiceRunOneHour(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree := Generate(rng, 100, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc, err := NewService(Config{
			Name: "bench", Servers: 10000, Step: time.Minute,
			SamplesPerStep: 1e5, BaseCPU: 0.5, CPUNoise: 0.05,
			BaseThroughput: 1000, Tree: tree, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		db := tsdb.New(time.Minute)
		if err := svc.Run(db, nil, t0, t0.Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpectedSamples(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree := Generate(rng, 500, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.ExpectedSamples(1e6)
	}
}

func BenchmarkDrawSamples10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree := Generate(rng, 500, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.DrawSamples(rng, 10000)
	}
}

func BenchmarkTreeClone(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree := Generate(rng, 500, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Clone()
	}
}
