package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"fbdetect/internal/tracing"
	"fbdetect/internal/tsdb"
)

// EndpointSpec declares one user-facing endpoint of a service and the
// subroutines a request to it executes. Endpoint-level regression
// detection (paper §3) monitors the aggregate cost per request across all
// involved subroutines, which may run on different threads.
type EndpointSpec struct {
	Name        string
	Subroutines []string
	// RPS is the request rate used when generating traces and the
	// baseline for the per-endpoint throughput series.
	RPS float64
	// CostNoise is the relative noise on per-request cost.
	CostNoise float64
	// BaseLatency, when positive, enables a per-endpoint latency series
	// ("endpoint_latency"); latency scales with the endpoint's unit cost,
	// so subroutine regressions surface in it.
	BaseLatency float64
	// BaseErrorRate, when positive, enables a per-endpoint error-rate
	// series ("endpoint_errors").
	BaseErrorRate float64
}

// endpointUnitCost returns the per-request cost of the endpoint under the
// given tree: the sum of its subroutines' self weights (arbitrary cost
// units; a code change scaling a subroutine's weight scales the endpoints
// that use it).
func endpointUnitCost(tree *Tree, spec EndpointSpec) float64 {
	var sum float64
	for _, sub := range spec.Subroutines {
		if n := tree.Node(sub); n != nil {
			sum += n.SelfWeight
		}
	}
	return sum
}

// EmitEndpoints appends per-endpoint mean-cost series ("endpoint_cost")
// for [from, to) into db, evaluating each endpoint's cost under the call
// tree in effect at each step. Metric IDs use the endpoint name as the
// entity.
func (s *Service) EmitEndpoints(db *tsdb.DB, specs []EndpointSpec, from, to time.Time) error {
	if db.Step() != s.cfg.Step {
		return fmt.Errorf("fleet: db step %s != service step %s", db.Step(), s.cfg.Step)
	}
	for _, spec := range specs {
		if len(spec.Subroutines) == 0 {
			return fmt.Errorf("fleet: endpoint %q has no subroutines", spec.Name)
		}
	}
	for t := from; t.Before(to); t = t.Add(s.cfg.Step) {
		tree := s.TreeAt(t)
		season := s.seasonFactor(t)
		for _, spec := range specs {
			unitCost := endpointUnitCost(tree, spec)
			cost := unitCost * season
			noise := spec.CostNoise
			if noise <= 0 {
				noise = 0.01
			}
			entity := "endpoint:" + spec.Name
			jitter := func(base float64) float64 {
				v := base * (1 + s.rng.NormFloat64()*noise)
				if v < 0 {
					v = 0
				}
				return v
			}
			if err := db.Append(tsdb.ID(s.cfg.Name, entity, "endpoint_cost"), t, jitter(cost)); err != nil {
				return err
			}
			// Per-RPC-endpoint latency, throughput and error rate (paper
			// §2: "latency, throughput, and error rate per RPC endpoint").
			if spec.BaseLatency > 0 {
				// Latency tracks the endpoint's unit cost relative to its
				// initial value via the cost itself; scale the base by
				// the (seasonless) unit cost normalized to a 1.0 epoch
				// using the cost magnitude directly.
				lat := spec.BaseLatency * unitCost / endpointUnitCost(s.epochs[0].tree, spec)
				if err := db.Append(tsdb.ID(s.cfg.Name, entity, "endpoint_latency"), t, jitter(lat)); err != nil {
					return err
				}
			}
			if spec.RPS > 0 {
				if err := db.Append(tsdb.ID(s.cfg.Name, entity, "endpoint_rps"), t, jitter(spec.RPS*season)); err != nil {
					return err
				}
			}
			if spec.BaseErrorRate > 0 {
				if err := db.Append(tsdb.ID(s.cfg.Name, entity, "endpoint_errors"), t, jitter(spec.BaseErrorRate)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// GenerateTraces produces n end-to-end request traces for the endpoint at
// time at, splitting each request's cost across its subroutines on
// simulated threads. The tracing.Aggregator consumes these to compute
// endpoint statistics the same way production end-to-end tracing does.
func (s *Service) GenerateTraces(rng *rand.Rand, spec EndpointSpec, at time.Time, n int) []*tracing.RequestTrace {
	tree := s.TreeAt(at)
	traces := make([]*tracing.RequestTrace, 0, n)
	for i := 0; i < n; i++ {
		tr := &tracing.RequestTrace{
			TraceID:  fmt.Sprintf("%s-%d-%d", spec.Name, at.UnixNano(), i),
			Endpoint: spec.Name,
		}
		for ti, sub := range spec.Subroutines {
			node := tree.Node(sub)
			if node == nil {
				continue
			}
			noise := spec.CostNoise
			if noise <= 0 {
				noise = 0.01
			}
			cost := node.SelfWeight * (1 + rng.NormFloat64()*noise)
			if cost < 0 {
				cost = 0
			}
			tr.Spans = append(tr.Spans, tracing.TraceSpan{
				Subroutine: sub,
				Thread:     ti % 4, // spread work across threads
				CPU:        time.Duration(cost * float64(time.Millisecond)),
				Start:      at,
			})
		}
		traces = append(traces, tr)
	}
	return traces
}
