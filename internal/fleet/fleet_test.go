package fleet

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/stats"
	"fbdetect/internal/tsdb"
)

var t0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

// smallTree builds a fixed tree:
//
//	main (0)
//	├── render (10)
//	│   ├── Cache::get (5)
//	│   └── Cache::put (5)
//	└── fetch (30)
func smallTree(t *testing.T) *Tree {
	t.Helper()
	root := &Node{Name: "main", SelfWeight: 0, Children: []*Node{
		{Name: "render", SelfWeight: 10, Children: []*Node{
			{Name: "Cache::get", Class: "Cache", SelfWeight: 5},
			{Name: "Cache::put", Class: "Cache", SelfWeight: 5},
		}},
		{Name: "fetch", SelfWeight: 30},
	}}
	tree, err := NewTree(root)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(nil); err == nil {
		t.Error("nil root should fail")
	}
	dup := &Node{Name: "a", Children: []*Node{{Name: "a"}}}
	if _, err := NewTree(dup); err == nil {
		t.Error("duplicate names should fail")
	}
	neg := &Node{Name: "a", SelfWeight: -1}
	if _, err := NewTree(neg); err == nil {
		t.Error("negative weight should fail")
	}
	unnamed := &Node{Name: ""}
	if _, err := NewTree(unnamed); err == nil {
		t.Error("unnamed node should fail")
	}
}

func TestTreeGCPU(t *testing.T) {
	tree := smallTree(t)
	// total = 50; render subtree = 20; fetch = 30; Cache::get = 5.
	if got := tree.GCPU("render"); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("gCPU(render) = %v, want 0.4", got)
	}
	if got := tree.GCPU("fetch"); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("gCPU(fetch) = %v, want 0.6", got)
	}
	if got := tree.GCPU("main"); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("gCPU(main) = %v, want 1", got)
	}
	if tree.GCPU("nope") != 0 {
		t.Error("unknown subroutine should be 0")
	}
	all := tree.GCPUAll()
	if math.Abs(all["Cache::get"]-0.1) > 1e-9 {
		t.Errorf("GCPUAll[Cache::get] = %v", all["Cache::get"])
	}
}

func TestTreePath(t *testing.T) {
	tree := smallTree(t)
	p := tree.Path("Cache::get")
	want := []string{"main", "render", "Cache::get"}
	if len(p) != 3 {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("path = %v, want %v", p, want)
		}
	}
	if tree.Path("nope") != nil {
		t.Error("unknown path should be nil")
	}
}

func TestScaleAndShift(t *testing.T) {
	tree := smallTree(t)
	if err := tree.ScaleSelfWeight("fetch", 1.5); err != nil {
		t.Fatal(err)
	}
	// total = 20 + 45 = 65; fetch = 45.
	if got := tree.GCPU("fetch"); math.Abs(got-45.0/65) > 1e-9 {
		t.Errorf("scaled gCPU = %v", got)
	}
	if err := tree.ScaleSelfWeight("nope", 2); err == nil {
		t.Error("unknown subroutine should fail")
	}
	if err := tree.ScaleSelfWeight("fetch", -1); err == nil {
		t.Error("negative factor should fail")
	}

	tree2 := smallTree(t)
	before := tree2.TotalWeight()
	if err := tree2.ShiftWeight("Cache::get", "Cache::put", 3); err != nil {
		t.Fatal(err)
	}
	if tree2.TotalWeight() != before {
		t.Error("shift must preserve total cost")
	}
	if tree2.Node("Cache::get").SelfWeight != 2 || tree2.Node("Cache::put").SelfWeight != 8 {
		t.Error("shift amounts wrong")
	}
	if err := tree2.ShiftWeight("Cache::get", "Cache::put", 100); err == nil {
		t.Error("over-shift should fail")
	}
	if err := tree2.ShiftWeight("x", "y", 1); err == nil {
		t.Error("unknown nodes should fail")
	}
}

func TestAddSubroutine(t *testing.T) {
	tree := smallTree(t)
	if err := tree.AddSubroutine("render", "render_new", "", 5); err != nil {
		t.Fatal(err)
	}
	if tree.GCPU("render_new") == 0 {
		t.Error("new subroutine invisible")
	}
	p := tree.Path("render_new")
	if len(p) != 3 || p[1] != "render" {
		t.Errorf("path = %v", p)
	}
	if err := tree.AddSubroutine("nope", "x", "", 1); err == nil {
		t.Error("unknown parent should fail")
	}
	if err := tree.AddSubroutine("render", "fetch", "", 1); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestCloneIsolation(t *testing.T) {
	tree := smallTree(t)
	clone := tree.Clone()
	clone.ScaleSelfWeight("fetch", 10)
	if tree.GCPU("fetch") == clone.GCPU("fetch") {
		t.Error("clone shares state")
	}
	// Paths preserved in clone.
	if p := clone.Path("Cache::get"); len(p) != 3 {
		t.Errorf("clone path = %v", p)
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := Generate(rng, 200, 4)
	subs := tree.Subroutines()
	if len(subs) < 190 || len(subs) > 210 {
		t.Errorf("generated %d subroutines", len(subs))
	}
	// gCPU of the root must be 1.
	if got := tree.GCPU(tree.Root.Name); math.Abs(got-1) > 1e-9 {
		t.Errorf("root gCPU = %v", got)
	}
	// Some nodes must have classes.
	hasClass := false
	for _, s := range subs {
		if tree.Node(s).Class != "" {
			hasClass = true
		}
	}
	if !hasClass {
		t.Error("no classes generated")
	}
}

func TestExpectedSamples(t *testing.T) {
	tree := smallTree(t)
	ss := tree.ExpectedSamples(1000)
	if math.Abs(ss.Total()-1000) > 1e-6 {
		t.Errorf("total = %v", ss.Total())
	}
	// gCPU from expected samples must equal true gCPU.
	for _, sub := range tree.Subroutines() {
		want := tree.GCPU(sub)
		if got := ss.GCPU(sub); math.Abs(got-want) > 1e-9 {
			t.Errorf("gCPU(%s) = %v, want %v", sub, got, want)
		}
	}
	// Classes flow through to frames.
	if got := ss.ClassOf("Cache::get"); got != "Cache" {
		t.Errorf("ClassOf = %q", got)
	}
	if tree.ExpectedSamples(0).Len() != 0 {
		t.Error("zero samples should be empty")
	}
}

func TestDrawSamplesConvergeToGCPU(t *testing.T) {
	tree := smallTree(t)
	rng := rand.New(rand.NewSource(2))
	ss := tree.DrawSamples(rng, 20000)
	if ss.Total() != 20000 {
		t.Fatalf("total = %v", ss.Total())
	}
	for _, sub := range []string{"render", "fetch", "Cache::get"} {
		want := tree.GCPU(sub)
		got := ss.GCPU(sub)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("drawn gCPU(%s) = %v, want ~%v", sub, got, want)
		}
	}
}

func TestIssueActive(t *testing.T) {
	is := DefaultIssue(LoadSpike, t0, time.Hour)
	if !is.Active(t0) || !is.Active(t0.Add(30*time.Minute)) {
		t.Error("should be active")
	}
	if is.Active(t0.Add(-time.Second)) || is.Active(t0.Add(time.Hour)) {
		t.Error("should be inactive outside [start, end)")
	}
	if is.ThroughputFactor <= 1 {
		t.Error("load spike should raise throughput")
	}
	if ServerFailure.String() != "server-failure" {
		t.Error("IssueType.String wrong")
	}
}

func serviceConfig(t *testing.T, tree *Tree) Config {
	t.Helper()
	return Config{
		Name:            "svc",
		Servers:         1000,
		Step:            time.Minute,
		SamplesPerStep:  10000,
		BaseCPU:         0.5,
		CPUNoise:        0.1,
		BaseThroughput:  100,
		ThroughputNoise: 2,
		BaseLatency:     50,
		LatencyNoise:    1,
		BaseErrorRate:   0.001,
		ErrorNoise:      0.0001,
		Tree:            tree,
		Seed:            7,
	}
}

func TestServiceValidation(t *testing.T) {
	tree := smallTree(t)
	bad := []Config{
		{},
		{Name: "x", Servers: 0, Step: time.Minute, Tree: tree},
		{Name: "x", Servers: 1, Step: 0, Tree: tree},
		{Name: "x", Servers: 1, Step: time.Minute},
		{Name: "x", Servers: 1, Step: time.Minute, Tree: tree, BaseCPU: 2},
	}
	for i, cfg := range bad {
		if _, err := NewService(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	gens := serviceConfig(t, tree)
	gens.Generations = []Generation{{Name: "g1", Fraction: 0.5, SpeedFactor: 1}}
	if _, err := NewService(gens); err == nil {
		t.Error("fractions not summing to 1 should fail")
	}
}

func TestServiceRunEmitsMetrics(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New(time.Minute)
	if err := svc.Run(db, nil, t0, t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	cpu, err := db.Full(tsdb.ID("svc", "", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Len() != 120 {
		t.Errorf("cpu points = %d", cpu.Len())
	}
	m := stats.Mean(cpu.Values)
	if m < 0.45 || m > 0.55 {
		t.Errorf("cpu mean = %v, want ~0.5", m)
	}
	g, err := db.Full(tsdb.ID("svc", "fetch", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	if gm := stats.Mean(g.Values); math.Abs(gm-0.6) > 0.01 {
		t.Errorf("gcpu(fetch) mean = %v, want ~0.6", gm)
	}
	for _, metric := range []string{"throughput", "latency", "error_rate"} {
		if _, err := db.Full(tsdb.ID("svc", "", metric)); err != nil {
			t.Errorf("missing %s: %v", metric, err)
		}
	}
}

func TestServiceChangeShiftsGCPU(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	changeAt := t0.Add(time.Hour)
	svc.ScheduleChange(ScheduledChange{
		At:     changeAt,
		Effect: func(tr *Tree) error { return tr.ScaleSelfWeight("fetch", 1.2) },
		Record: &changelog.Change{ID: "D123", Title: "speed up fetch (not)", Subroutines: []string{"fetch"}},
	})
	db := tsdb.New(time.Minute)
	var log changelog.Log
	if err := svc.Run(db, &log, t0, t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	g, _ := db.Full(tsdb.ID("svc", "fetch", "gcpu"))
	before := stats.Mean(g.Values[:60])
	after := stats.Mean(g.Values[60:])
	if after-before < 0.02 {
		t.Errorf("gcpu change = %v, expected visible regression", after-before)
	}
	// CPU should also rise (total cost grew).
	cpu, _ := db.Full(tsdb.ID("svc", "", "cpu"))
	cb := stats.Mean(cpu.Values[:60])
	ca := stats.Mean(cpu.Values[60:])
	if ca <= cb {
		t.Errorf("cpu did not rise: %v -> %v", cb, ca)
	}
	// The change was recorded with service and deploy time filled in.
	if log.Len() != 1 {
		t.Fatalf("log has %d changes", log.Len())
	}
	rec := log.Between("svc", t0, t0.Add(2*time.Hour))[0]
	if rec.Service != "svc" || !rec.DeployedAt.Equal(changeAt) || rec.ID != "D123" {
		t.Errorf("recorded change = %+v", rec)
	}
}

func TestServiceIssueIsTransient(t *testing.T) {
	tree := smallTree(t)
	cfg := serviceConfig(t, tree)
	cfg.ThroughputNoise = 0.5
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.ScheduleIssue(DefaultIssue(TrafficShift, t0.Add(30*time.Minute), 30*time.Minute))
	db := tsdb.New(time.Minute)
	if err := svc.Run(db, nil, t0, t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	thr, _ := db.Full(tsdb.ID("svc", "", "throughput"))
	pre := stats.Mean(thr.Values[:30])
	during := stats.Mean(thr.Values[31:59])
	post := stats.Mean(thr.Values[61:])
	if during >= pre*0.8 {
		t.Errorf("issue had no visible impact: pre=%v during=%v", pre, during)
	}
	if math.Abs(post-pre) > pre*0.05 {
		t.Errorf("did not recover: pre=%v post=%v", pre, post)
	}
}

func TestSeasonality(t *testing.T) {
	tree := smallTree(t)
	cfg := serviceConfig(t, tree)
	cfg.SeasonalAmp = 0.2
	cfg.SeasonalPeriod = time.Hour
	cfg.CPUNoise = 0.001
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New(time.Minute)
	if err := svc.Run(db, nil, t0, t0.Add(4*time.Hour)); err != nil {
		t.Fatal(err)
	}
	cpu, _ := db.Full(tsdb.ID("svc", "", "cpu"))
	// Strong autocorrelation at the 60-minute lag. The estimator's
	// (n-lag)/n bias caps it at 0.75 for 4 periods of a pure sinusoid.
	if c := stats.Autocorrelation(cpu.Values, 60); c < 0.7 {
		t.Errorf("seasonal autocorrelation = %v", c)
	}
}

func TestTreeAtEpochs(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	changeAt := t0.Add(time.Hour)
	svc.ScheduleChange(ScheduledChange{
		At:     changeAt,
		Effect: func(tr *Tree) error { return tr.ScaleSelfWeight("fetch", 2) },
	})
	before := svc.TreeAt(t0)
	if got := before.GCPU("fetch"); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("pre-change gCPU = %v", got)
	}
	after := svc.TreeAt(t0.Add(2 * time.Hour))
	if got := after.GCPU("fetch"); got <= 0.6 {
		t.Errorf("post-change gCPU = %v", got)
	}
	// TreeAt before the change still returns the old tree after
	// materialization.
	if got := svc.TreeAt(t0).GCPU("fetch"); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("pre-change gCPU after materialization = %v", got)
	}
}

func TestExpectedSamplesBetweenMixesEpochs(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	changeAt := t0.Add(time.Hour)
	svc.ScheduleChange(ScheduledChange{
		At:     changeAt,
		Effect: func(tr *Tree) error { return tr.ScaleSelfWeight("fetch", 2) },
	})
	// Window entirely before the change: old gCPU.
	pre := svc.ExpectedSamplesBetween(t0, changeAt, 1000)
	if got := pre.GCPU("fetch"); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("pre gCPU = %v", got)
	}
	// Window entirely after: new gCPU = 60/80 = 0.75.
	post := svc.ExpectedSamplesBetween(changeAt, changeAt.Add(time.Hour), 1000)
	if got := post.GCPU("fetch"); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("post gCPU = %v", got)
	}
	// Straddling window: between the two.
	mixRaw := svc.ExpectedSamplesBetween(t0, t0.Add(2*time.Hour), 1000)
	if got := mixRaw.GCPU("fetch"); got <= 0.6 || got >= 0.75 {
		t.Errorf("straddling gCPU = %v, want in (0.6, 0.75)", got)
	}
	if math.Abs(mixRaw.Total()-1000) > 1e-6 {
		t.Errorf("total = %v", mixRaw.Total())
	}
}
