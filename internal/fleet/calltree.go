// Package fleet simulates the production environment FBDetect monitors:
// services with synthetic call trees running on heterogeneous server
// generations, emitting subroutine-level gCPU series, service-level CPU,
// throughput, latency, and error-rate series into a time-series database,
// with seasonality, transient issues (failures, maintenance, load spikes,
// rolling updates, canary tests, traffic shifts), and scheduled code or
// configuration changes that perturb subroutine costs.
//
// The simulator substitutes for Meta's fleet per DESIGN.md: the detection
// pipeline consumes time series and stack-trace samples, and this package
// produces both with the statistical structure the paper describes
// (normal per-server noise, binomial sampling noise on gCPU, regressions
// as mean shifts).
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Node is one subroutine in a service's call tree. SelfWeight is the
// relative amount of CPU burned in the subroutine itself (exclusive time);
// a stack-trace sample lands on a node with probability proportional to
// SelfWeight and yields the root-to-node path as its trace.
type Node struct {
	Name       string
	Class      string
	SelfWeight float64
	// Metadata annotates the subroutine's stack frames, as set via
	// SetFrameMetadata in production code (paper §3); samples through
	// this node carry it, enabling metadata-annotated regression
	// detection.
	Metadata string
	Children []*Node
	parent   *Node
}

// Tree is a service's call tree.
type Tree struct {
	Root   *Node
	byName map[string]*Node
}

// NewTree builds a tree from the given root and indexes nodes by name.
// Node names must be unique.
func NewTree(root *Node) (*Tree, error) {
	t := &Tree{Root: root, byName: map[string]*Node{}}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Name == "" {
			return fmt.Errorf("fleet: unnamed node")
		}
		if _, dup := t.byName[n.Name]; dup {
			return fmt.Errorf("fleet: duplicate subroutine %q", n.Name)
		}
		if n.SelfWeight < 0 {
			return fmt.Errorf("fleet: negative self weight on %q", n.Name)
		}
		t.byName[n.Name] = n
		for _, c := range n.Children {
			c.parent = n
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if root == nil {
		return nil, fmt.Errorf("fleet: nil root")
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return t, nil
}

// Node returns the node with the given name, or nil.
func (t *Tree) Node(name string) *Node { return t.byName[name] }

// Subroutines returns all subroutine names, sorted.
func (t *Tree) Subroutines() []string {
	out := make([]string, 0, len(t.byName))
	for name := range t.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalWeight returns the sum of all self weights.
func (t *Tree) TotalWeight() float64 {
	var sum float64
	for _, n := range t.byName {
		sum += n.SelfWeight
	}
	return sum
}

// Path returns the root-to-node subroutine names for the named node, or
// nil if unknown.
func (t *Tree) Path(name string) []string {
	n := t.byName[name]
	if n == nil {
		return nil
	}
	var rev []string
	for ; n != nil; n = n.parent {
		rev = append(rev, n.Name)
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// GCPU returns the true (noise-free) gCPU of the subroutine: the fraction
// of total self weight attributed to the subroutine or any node beneath it.
func (t *Tree) GCPU(name string) float64 {
	n := t.byName[name]
	if n == nil {
		return 0
	}
	total := t.TotalWeight()
	if total == 0 {
		return 0
	}
	return subtreeWeight(n) / total
}

func subtreeWeight(n *Node) float64 {
	w := n.SelfWeight
	for _, c := range n.Children {
		w += subtreeWeight(c)
	}
	return w
}

// GCPUAll returns the true gCPU of every subroutine.
func (t *Tree) GCPUAll() map[string]float64 {
	out := make(map[string]float64, len(t.byName))
	total := t.TotalWeight()
	if total == 0 {
		return out
	}
	var walk func(n *Node) float64
	walk = func(n *Node) float64 {
		w := n.SelfWeight
		for _, c := range n.Children {
			w += walk(c)
		}
		out[n.Name] = w / total
		return w
	}
	walk(t.Root)
	return out
}

// GCPUMetadata returns the true (noise-free) fraction of samples whose
// stack passes through a node annotated with exactly the given metadata:
// the total self weight at or beneath annotated nodes over the total.
func (t *Tree) GCPUMetadata(metadata string) float64 {
	total := t.TotalWeight()
	if total == 0 || metadata == "" {
		return 0
	}
	var annotated float64
	var walk func(n *Node, covered bool)
	walk = func(n *Node, covered bool) {
		covered = covered || n.Metadata == metadata
		if covered {
			annotated += n.SelfWeight
		}
		for _, c := range n.Children {
			walk(c, covered)
		}
	}
	walk(t.Root, false)
	return annotated / total
}

// SetMetadata annotates the named subroutine's frames, mirroring the
// production SetFrameMetadata API (paper §3).
func (t *Tree) SetMetadata(name, metadata string) error {
	n := t.byName[name]
	if n == nil {
		return fmt.Errorf("fleet: unknown subroutine %q", name)
	}
	n.Metadata = metadata
	return nil
}

// ScaleSelfWeight multiplies the named subroutine's self weight by factor,
// modeling a code change that makes the subroutine cheaper or more
// expensive. It returns an error for unknown subroutines or negative
// factors.
func (t *Tree) ScaleSelfWeight(name string, factor float64) error {
	n := t.byName[name]
	if n == nil {
		return fmt.Errorf("fleet: unknown subroutine %q", name)
	}
	if factor < 0 {
		return fmt.Errorf("fleet: negative factor %v", factor)
	}
	n.SelfWeight *= factor
	return nil
}

// ShiftWeight moves amount of self weight from one subroutine to another,
// modeling the code refactoring that causes cost-shift false positives
// (paper Figure 1(b)). The total cost is unchanged.
func (t *Tree) ShiftWeight(from, to string, amount float64) error {
	src := t.byName[from]
	dst := t.byName[to]
	if src == nil || dst == nil {
		return fmt.Errorf("fleet: unknown subroutine in shift %q -> %q", from, to)
	}
	if amount < 0 || amount > src.SelfWeight {
		return fmt.Errorf("fleet: cannot shift %v from %q (has %v)", amount, from, src.SelfWeight)
	}
	src.SelfWeight -= amount
	dst.SelfWeight += amount
	return nil
}

// AddSubroutine attaches a new leaf under the named parent, modeling a
// change that introduces a brand-new subroutine (relevant for the
// cost-shift detector's "domain did not exist before" rule).
func (t *Tree) AddSubroutine(parent, name, class string, selfWeight float64) error {
	p := t.byName[parent]
	if p == nil {
		return fmt.Errorf("fleet: unknown parent %q", parent)
	}
	if _, dup := t.byName[name]; dup {
		return fmt.Errorf("fleet: duplicate subroutine %q", name)
	}
	if selfWeight < 0 {
		return fmt.Errorf("fleet: negative self weight")
	}
	n := &Node{Name: name, Class: class, SelfWeight: selfWeight, parent: p}
	p.Children = append(p.Children, n)
	t.byName[name] = n
	return nil
}

// Clone returns a deep copy of the tree; scheduled changes are applied to
// clones so a service can expose both pre- and post-change trees.
func (t *Tree) Clone() *Tree {
	var copyNode func(n *Node) *Node
	copyNode = func(n *Node) *Node {
		c := &Node{Name: n.Name, Class: n.Class, SelfWeight: n.SelfWeight,
			Metadata: n.Metadata}
		for _, child := range n.Children {
			cc := copyNode(child)
			cc.parent = c
			c.Children = append(c.Children, cc)
		}
		return c
	}
	clone, err := NewTree(copyNode(t.Root))
	if err != nil {
		// Cloning a valid tree cannot fail.
		panic("fleet: clone failed: " + err.Error())
	}
	return clone
}

// Generate builds a random call tree with approximately numSubroutines
// nodes and the given maximum branching factor. Self weights follow a
// heavy-tailed (log-normal) distribution, reproducing the paper's
// observation that non-trivial subroutines have a small median gCPU
// (0.0083% in FrontFaaS) with a long tail. Every fifth subroutine is
// assigned to a class to exercise the class cost domain.
func Generate(rng *rand.Rand, numSubroutines, maxBranch int) *Tree {
	if numSubroutines < 1 {
		numSubroutines = 1
	}
	if maxBranch < 2 {
		maxBranch = 2
	}
	counter := 0
	newNode := func() *Node {
		counter++
		name := fmt.Sprintf("sub_%04d", counter)
		class := ""
		if counter%5 == 0 {
			class = fmt.Sprintf("Class%02d", counter/5%20)
			name = class + "::" + name
		}
		// Log-normal self weights: median 1, heavy upper tail.
		w := lognormal(rng, 0, 1.5)
		return &Node{Name: name, Class: class, SelfWeight: w}
	}
	root := newNode()
	root.SelfWeight *= 0.1 // roots burn little self time
	nodes := []*Node{root}
	for counter < numSubroutines {
		parent := nodes[rng.Intn(len(nodes))]
		if len(parent.Children) >= maxBranch {
			continue
		}
		n := newNode()
		n.parent = parent
		parent.Children = append(parent.Children, n)
		nodes = append(nodes, n)
	}
	t, err := NewTree(root)
	if err != nil {
		panic("fleet: generate failed: " + err.Error())
	}
	return t
}

func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	x := rng.NormFloat64()*sigma + mu
	if x > 20 {
		x = 20
	}
	if x < -20 {
		x = -20
	}
	return math.Exp(x)
}
