package fleet

import (
	"math/rand"
	"testing"
	"time"

	"fbdetect/internal/stats"
	"fbdetect/internal/tracing"
	"fbdetect/internal/tsdb"
)

func endpointSpecs() []EndpointSpec {
	return []EndpointSpec{
		{Name: "/feed", Subroutines: []string{"render", "fetch"}, RPS: 100, CostNoise: 0.02},
		{Name: "/cache", Subroutines: []string{"Cache::get"}, RPS: 50, CostNoise: 0.02},
	}
}

func TestEmitEndpointsSeries(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New(time.Minute)
	if err := svc.EmitEndpoints(db, endpointSpecs(), t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	s, err := db.Full(tsdb.ID("svc", "endpoint:/feed", "endpoint_cost"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 60 {
		t.Fatalf("points = %d", s.Len())
	}
	// /feed cost = render(10) + fetch(30) = 40 units.
	if m := stats.Mean(s.Values); m < 38 || m > 42 {
		t.Errorf("mean endpoint cost = %v, want ~40", m)
	}
}

func TestEmitEndpointsReflectsChanges(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	svc.ScheduleChange(ScheduledChange{
		At:     t0.Add(30 * time.Minute),
		Effect: func(tr *Tree) error { return tr.ScaleSelfWeight("fetch", 1.5) },
	})
	db := tsdb.New(time.Minute)
	if err := svc.EmitEndpoints(db, endpointSpecs(), t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	feed, _ := db.Full(tsdb.ID("svc", "endpoint:/feed", "endpoint_cost"))
	before := stats.Mean(feed.Values[:30])
	after := stats.Mean(feed.Values[30:])
	// fetch 30 -> 45, so /feed cost 40 -> 55.
	if after-before < 10 {
		t.Errorf("endpoint cost shift = %v, want ~15", after-before)
	}
	// /cache does not use fetch: unchanged.
	cache, _ := db.Full(tsdb.ID("svc", "endpoint:/cache", "endpoint_cost"))
	cb := stats.Mean(cache.Values[:30])
	ca := stats.Mean(cache.Values[30:])
	if diff := ca - cb; diff > cb*0.05 {
		t.Errorf("unrelated endpoint moved: %v", diff)
	}
}

func TestEmitEndpointsValidation(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New(time.Minute)
	bad := []EndpointSpec{{Name: "/empty"}}
	if err := svc.EmitEndpoints(db, bad, t0, t0.Add(time.Minute)); err == nil {
		t.Error("endpoint without subroutines accepted")
	}
	db2 := tsdb.New(time.Hour) // step mismatch
	if err := svc.EmitEndpoints(db2, endpointSpecs(), t0, t0.Add(time.Minute)); err == nil {
		t.Error("step mismatch accepted")
	}
}

func TestGenerateTracesAggregate(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	spec := endpointSpecs()[0]
	traces := svc.GenerateTraces(rng, spec, t0, 200)
	if len(traces) != 200 {
		t.Fatalf("traces = %d", len(traces))
	}
	agg := tracing.NewAggregator()
	for _, tr := range traces {
		if err := agg.Record(tr); err != nil {
			t.Fatal(err)
		}
	}
	snap := agg.Snapshot()
	if len(snap) != 1 || snap[0].Endpoint != "/feed" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Mean per-request cost ~40ms (render 10 + fetch 30, in ms units).
	mean := snap[0].MeanCPU
	if mean < 38*time.Millisecond || mean > 42*time.Millisecond {
		t.Errorf("mean cost = %v, want ~40ms", mean)
	}
	// Spans are spread across threads.
	threads := map[int]bool{}
	for _, sp := range traces[0].Spans {
		threads[sp.Thread] = true
	}
	if len(threads) < 2 {
		t.Errorf("spans on %d threads, want >= 2", len(threads))
	}
}

func TestEmitEndpointsRPCMetrics(t *testing.T) {
	tree := smallTree(t)
	svc, err := NewService(serviceConfig(t, tree))
	if err != nil {
		t.Fatal(err)
	}
	svc.ScheduleChange(ScheduledChange{
		At:     t0.Add(30 * time.Minute),
		Effect: func(tr *Tree) error { return tr.ScaleSelfWeight("fetch", 1.5) },
	})
	specs := []EndpointSpec{{
		Name: "/feed", Subroutines: []string{"render", "fetch"},
		RPS: 500, CostNoise: 0.01, BaseLatency: 80, BaseErrorRate: 0.002,
	}}
	db := tsdb.New(time.Minute)
	if err := svc.EmitEndpoints(db, specs, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Latency follows the cost regression: fetch 30->45 means /feed unit
	// cost 40->55, so latency 80 -> 110.
	lat, err := db.Full(tsdb.ID("svc", "endpoint:/feed", "endpoint_latency"))
	if err != nil {
		t.Fatal(err)
	}
	lb := stats.Mean(lat.Values[:30])
	la := stats.Mean(lat.Values[30:])
	if la/lb < 1.2 {
		t.Errorf("latency did not follow cost: %v -> %v", lb, la)
	}
	// RPS and error rate stay at their baselines.
	rps, err := db.Full(tsdb.ID("svc", "endpoint:/feed", "endpoint_rps"))
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Mean(rps.Values); m < 480 || m > 520 {
		t.Errorf("rps mean = %v", m)
	}
	errs, err := db.Full(tsdb.ID("svc", "endpoint:/feed", "endpoint_errors"))
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Mean(errs.Values); m < 0.0015 || m > 0.0025 {
		t.Errorf("error-rate mean = %v", m)
	}
}
