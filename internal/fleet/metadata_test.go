package fleet

import (
	"math"
	"testing"
	"time"

	"fbdetect/internal/stats"
	"fbdetect/internal/tsdb"
)

// metaTree: handler fans out to vip and free processing; vip frames are
// annotated.
func metaTree(t *testing.T) *Tree {
	t.Helper()
	root := &Node{Name: "main", SelfWeight: 0, Children: []*Node{
		{Name: "handler", SelfWeight: 10, Children: []*Node{
			{Name: "process_vip", Metadata: "user:vip", SelfWeight: 10, Children: []*Node{
				{Name: "vip_extras", SelfWeight: 5},
			}},
			{Name: "process_free", Metadata: "user:free", SelfWeight: 60},
		}},
		{Name: "misc", SelfWeight: 15},
	}}
	tree, err := NewTree(root)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestGCPUMetadata(t *testing.T) {
	tree := metaTree(t)
	// vip: process_vip(10) + vip_extras(5, covered by ancestor) = 15/100.
	if got := tree.GCPUMetadata("user:vip"); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("gCPU(user:vip) = %v, want 0.15", got)
	}
	if got := tree.GCPUMetadata("user:free"); math.Abs(got-0.60) > 1e-9 {
		t.Errorf("gCPU(user:free) = %v, want 0.6", got)
	}
	if tree.GCPUMetadata("nope") != 0 || tree.GCPUMetadata("") != 0 {
		t.Error("unknown/empty metadata should be 0")
	}
}

func TestSetMetadata(t *testing.T) {
	tree := metaTree(t)
	if err := tree.SetMetadata("misc", "bg:cleanup"); err != nil {
		t.Fatal(err)
	}
	if got := tree.GCPUMetadata("bg:cleanup"); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("after SetMetadata: %v", got)
	}
	if err := tree.SetMetadata("ghost", "x"); err == nil {
		t.Error("unknown subroutine accepted")
	}
}

func TestExpectedSamplesCarryMetadata(t *testing.T) {
	tree := metaTree(t)
	ss := tree.ExpectedSamples(1000)
	if got := ss.MetadataOf("process_vip"); got != "user:vip" {
		t.Errorf("MetadataOf = %q", got)
	}
	if got := ss.GCPUMetadata("user:vip"); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("sample gCPU(user:vip) = %v, want 0.15", got)
	}
	// Clone preserves metadata.
	if got := tree.Clone().GCPUMetadata("user:vip"); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("clone lost metadata: %v", got)
	}
}

func TestMetadataAnnotatedRegressionDetectable(t *testing.T) {
	// A regression confined to vip processing: the vip metadata series
	// moves sharply while the (much larger) handler series moves little —
	// the paper's motivation for metadata-annotated detection.
	tree := metaTree(t)
	cfg := serviceConfig(t, tree)
	cfg.EmitMetadata = []string{"user:vip"}
	cfg.EmitSubroutines = []string{"handler"}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.ScheduleChange(ScheduledChange{
		At:     t0.Add(time.Hour),
		Effect: func(tr *Tree) error { return tr.ScaleSelfWeight("vip_extras", 3) },
	})
	db := tsdb.New(time.Minute)
	if err := svc.Run(db, nil, t0, t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	vip, err := db.Full(tsdb.ID("svc", "meta:user:vip", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	before := stats.Mean(vip.Values[:60])
	after := stats.Mean(vip.Values[60:])
	relVIP := (after - before) / before
	if relVIP < 0.5 {
		t.Errorf("vip relative change = %v, want > 0.5", relVIP)
	}
	handler, _ := db.Full(tsdb.ID("svc", "handler", "gcpu"))
	hb := stats.Mean(handler.Values[:60])
	ha := stats.Mean(handler.Values[60:])
	relHandler := math.Abs(ha-hb) / hb
	if relHandler > relVIP/3 {
		t.Errorf("handler moved %v, should be much smaller than vip's %v", relHandler, relVIP)
	}
}
