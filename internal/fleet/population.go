package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fbdetect/internal/popshift"
	"fbdetect/internal/tsdb"
)

// Stratum is one population cell of a heterogeneous fleet: servers of
// one generation, in one region, serving one traffic class. The
// simulator emits per-stratum metric series (entity
// "<base>@gen=..;region=..;class=..") and a population-weight series
// per stratum, which the pop-shift diagnosis stage consumes.
type Stratum struct {
	Generation   string
	Region       string
	TrafficClass string
	// Fraction is the stratum's initial share of the service's servers.
	// Fractions across strata must be in [0,1] and sum to 1.
	Fraction float64
	// CostFactor is the per-server CPU-cost multiplier for work running
	// on this stratum relative to the service baseline (an older
	// generation without a hardware offload runs the same code hotter).
	// 0 means 1.
	CostFactor float64
}

// Tag returns the stratum's population features as a popshift tag.
func (s Stratum) Tag() popshift.Stratum {
	return popshift.Stratum{Gen: s.Generation, Region: s.Region, Class: s.TrafficClass}
}

func (s Stratum) costFactor() float64 {
	if s.CostFactor == 0 {
		return 1
	}
	return s.CostFactor
}

// MixShift rebalances the population to new fractions at a point in
// simulated time: a generation rollout (Ramp > 0 spreads the move
// linearly over the ramp window), a regional failover (Ramp 0 steps
// instantly), or a traffic-class migration.
type MixShift struct {
	At   time.Time
	Ramp time.Duration
	// Fractions are the target shares, index-aligned with
	// Population.Strata; they must be in [0,1] and sum to 1.
	Fractions []float64
}

// Population describes a stratified fleet and its scheduled mix shifts.
type Population struct {
	Strata []Stratum
	Shifts []MixShift
}

// validate checks the population for the loud-failure guarantees the
// simulator promises: valid tag values, sane fractions, ordered
// non-overlapping shifts.
func (p *Population) validate() error {
	if len(p.Strata) < 2 {
		return fmt.Errorf("fleet: population needs >= 2 strata, got %d", len(p.Strata))
	}
	if err := validFractions(fractionsOf(p.Strata), len(p.Strata)); err != nil {
		return fmt.Errorf("fleet: population strata: %w", err)
	}
	seen := make(map[popshift.Stratum]bool, len(p.Strata))
	for i, st := range p.Strata {
		tag := st.Tag()
		if tag.IsZero() {
			return fmt.Errorf("fleet: stratum %d has no population features", i)
		}
		if !tag.Valid() {
			return fmt.Errorf("fleet: stratum %d tag %+v contains reserved bytes (@;=/)", i, tag)
		}
		if seen[tag] {
			return fmt.Errorf("fleet: duplicate stratum %v", tag)
		}
		seen[tag] = true
		if st.CostFactor < 0 {
			return fmt.Errorf("fleet: stratum %v has negative cost factor %v", tag, st.CostFactor)
		}
	}
	var prevEnd time.Time
	for i, sh := range p.Shifts {
		if err := validFractions(sh.Fractions, len(p.Strata)); err != nil {
			return fmt.Errorf("fleet: mix shift %d: %w", i, err)
		}
		if sh.Ramp < 0 {
			return fmt.Errorf("fleet: mix shift %d has negative ramp", i)
		}
		if i > 0 && sh.At.Before(prevEnd) {
			return fmt.Errorf("fleet: mix shift %d at %v overlaps the previous shift ending %v",
				i, sh.At, prevEnd)
		}
		prevEnd = sh.At.Add(sh.Ramp)
	}
	return nil
}

func fractionsOf(strata []Stratum) []float64 {
	out := make([]float64, len(strata))
	for i, s := range strata {
		out[i] = s.Fraction
	}
	return out
}

// validFractions enforces the shared fraction contract: the right
// count, each in [0,1], summing to 1.
func validFractions(fr []float64, n int) error {
	if len(fr) != n {
		return fmt.Errorf("%d fractions for %d strata", len(fr), n)
	}
	sum := 0.0
	for i, f := range fr {
		if f < 0 || f > 1 || math.IsNaN(f) {
			return fmt.Errorf("fraction %d is %v, want [0,1]", i, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("fractions sum to %v, want 1", sum)
	}
	return nil
}

// fractionsAt returns the population mix in effect at t: the initial
// strata fractions, moved by every shift whose ramp has begun —
// linearly interpolated inside a ramp, fully applied after it.
func (p *Population) fractionsAt(t time.Time) []float64 {
	cur := fractionsOf(p.Strata)
	for _, sh := range p.Shifts {
		if t.Before(sh.At) {
			break
		}
		if sh.Ramp <= 0 || !t.Before(sh.At.Add(sh.Ramp)) {
			copy(cur, sh.Fractions)
			continue
		}
		alpha := float64(t.Sub(sh.At)) / float64(sh.Ramp)
		for i := range cur {
			cur[i] += alpha * (sh.Fractions[i] - cur[i])
		}
		break // inside a ramp; later shifts cannot have started (validated)
	}
	return cur
}

// mixCostFactor is the population-weighted per-server cost multiplier at
// the given mix: what the aggregate (fleet-averaged) series scale by.
func (p *Population) mixCostFactor(fr []float64) float64 {
	mix := 0.0
	for i, st := range p.Strata {
		mix += fr[i] * st.costFactor()
	}
	return mix
}

// popEmitter carries the per-step population emission state of one
// service run. Population draws use their own rng so that configuring a
// population (or changing its strata count) never perturbs the main
// sequence — Population == nil leaves every existing series bit-exact.
type popEmitter struct {
	pop  *Population
	rng  *rand.Rand
	tags []popshift.Stratum
	fr   []float64 // mix at the current step
	mix  float64   // population-weighted cost factor at the current step
}

func newPopEmitter(pop *Population, seed int64) *popEmitter {
	if pop == nil {
		return nil
	}
	tags := make([]popshift.Stratum, len(pop.Strata))
	for i, st := range pop.Strata {
		tags[i] = st.Tag()
	}
	// Offset the seed so the population stream differs from the main
	// stream even at seed 0.
	return &popEmitter{pop: pop, rng: rand.New(rand.NewSource(seed + 0x9e3779b9)), tags: tags}
}

// step advances the emitter to time t and emits the per-stratum weight
// series. Nil-safe; returns the mix cost factor (1 when no population).
func (e *popEmitter) step(db *tsdb.DB, service string, t time.Time) (float64, error) {
	if e == nil {
		return 1, nil
	}
	e.fr = e.pop.fractionsAt(t)
	e.mix = e.pop.mixCostFactor(e.fr)
	for i, tag := range e.tags {
		id := tsdb.ID(service, popshift.TagEntity("", tag), popshift.WeightMetric)
		if err := db.Append(id, t, e.fr[i]); err != nil {
			return 0, err
		}
	}
	return e.mix, nil
}

// emitGCPU emits the per-stratum twins of one aggregate gCPU series:
// the stratum's own cost p·CostFactor with binomial sampling noise at
// the stratum's share of the sample budget. Nil-safe.
func (e *popEmitter) emitGCPU(db *tsdb.DB, service, entity string, t time.Time, p float64, n float64, quantize func(float64) float64) error {
	if e == nil {
		return nil
	}
	for i, st := range e.pop.Strata {
		v := clamp01(p * st.costFactor())
		ns := n * e.fr[i]
		if ns < 1 {
			ns = 1 // a stratum never resolves finer than one sample
		}
		sd := math.Sqrt(v * (1 - v) / ns)
		g := v + e.rng.NormFloat64()*sd
		if g < 0 {
			g = 0
		}
		g = quantize(g)
		id := tsdb.ID(service, popshift.TagEntity(entity, e.tags[i]), "gcpu")
		if err := db.Append(id, t, g); err != nil {
			return err
		}
	}
	return nil
}

// emitCPU emits the per-stratum twins of the service-level cpu series:
// the per-server utilization on each stratum, with fleet noise shrunk
// by the stratum's server count. Nil-safe.
func (e *popEmitter) emitCPU(db *tsdb.DB, service string, t time.Time, baseCPU, noiseSD, servers float64) error {
	if e == nil {
		return nil
	}
	for i, st := range e.pop.Strata {
		m := servers * e.fr[i]
		if m < 1 {
			m = 1
		}
		v := clamp01(baseCPU*st.costFactor() + e.rng.NormFloat64()*noiseSD/math.Sqrt(m))
		id := tsdb.ID(service, popshift.TagEntity("", e.tags[i]), "cpu")
		if err := db.Append(id, t, v); err != nil {
			return err
		}
	}
	return nil
}
