package fleet

import "time"

// IssueType enumerates the transient production issues the paper lists as
// false-positive sources (§1): "server failures, maintenance operations,
// load spikes, software rolling updates, canary tests, and traffic shifts,
// which can last from seconds to hours."
type IssueType int

// Transient issue types.
const (
	ServerFailure IssueType = iota
	Maintenance
	LoadSpike
	RollingUpdate
	CanaryTest
	TrafficShift
)

var issueNames = [...]string{
	"server-failure", "maintenance", "load-spike",
	"rolling-update", "canary-test", "traffic-shift",
}

func (t IssueType) String() string {
	if int(t) < len(issueNames) {
		return issueNames[t]
	}
	return "unknown"
}

// Issue is one transient perturbation of a service's metrics over
// [Start, End). The multipliers scale the affected metrics while the issue
// is active; metrics return to normal afterwards, which is what makes
// these regressions "go away" and distinguishes them from true
// regressions.
type Issue struct {
	Type  IssueType
	Start time.Time
	End   time.Time
	// CPUFactor, ThroughputFactor, LatencyFactor, ErrorFactor scale the
	// respective service metrics during the issue; 1 means unaffected.
	CPUFactor        float64
	ThroughputFactor float64
	LatencyFactor    float64
	ErrorFactor      float64
}

// Active reports whether the issue is in effect at t.
func (is Issue) Active(t time.Time) bool {
	return !t.Before(is.Start) && t.Before(is.End)
}

// DefaultIssue returns an issue of the given type with representative
// impact factors over [start, start+d).
func DefaultIssue(typ IssueType, start time.Time, d time.Duration) Issue {
	is := Issue{
		Type: typ, Start: start, End: start.Add(d),
		CPUFactor: 1, ThroughputFactor: 1, LatencyFactor: 1, ErrorFactor: 1,
	}
	switch typ {
	case ServerFailure:
		is.ThroughputFactor = 0.7
		is.ErrorFactor = 5
	case Maintenance:
		is.ThroughputFactor = 0.85
		is.CPUFactor = 0.9
	case LoadSpike:
		is.ThroughputFactor = 1.4
		is.CPUFactor = 1.3
		is.LatencyFactor = 1.5
	case RollingUpdate:
		is.CPUFactor = 1.1
		is.LatencyFactor = 1.2
		is.ThroughputFactor = 0.95
	case CanaryTest:
		is.CPUFactor = 1.05
	case TrafficShift:
		is.ThroughputFactor = 0.6
		is.CPUFactor = 0.8
	}
	return is
}
