package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/tsdb"
)

// Generation describes one server generation in a heterogeneous fleet.
// Mixed generations are a major variance source at hyperscale (paper §2).
type Generation struct {
	Name        string
	Fraction    float64 // fraction of the service's servers
	SpeedFactor float64 // CPU-time multiplier relative to the baseline
}

// Config describes a simulated service.
type Config struct {
	Name    string
	Servers int
	Step    time.Duration
	// SamplesPerStep is the total number of stack-trace samples collected
	// across the fleet per step; it controls binomial noise on gCPU.
	SamplesPerStep float64
	// BaseCPU is the per-server mean process CPU utilization in [0, 1].
	BaseCPU float64
	// CPUNoise is the per-server CPU noise standard deviation.
	CPUNoise float64
	// SeasonalAmp and SeasonalPeriod define a sinusoidal diurnal pattern
	// added multiplicatively to CPU and throughput; amp 0 disables it.
	SeasonalAmp    float64
	SeasonalPeriod time.Duration
	// BaseThroughput is the fleet-wide requests/sec; BaseLatency the mean
	// latency (ms); BaseErrorRate the error fraction.
	BaseThroughput  float64
	ThroughputNoise float64
	BaseLatency     float64
	LatencyNoise    float64
	BaseErrorRate   float64
	ErrorNoise      float64
	// Generations describes the fleet mix; empty means one homogeneous
	// generation.
	Generations []Generation
	// Population stratifies the fleet into tagged population cells
	// (generation × region × traffic class) with scheduled mix shifts.
	// When set, the simulator emits per-stratum metric series and
	// population-weight series alongside the aggregates, and the
	// aggregates scale with the population-weighted cost factor — the
	// raw material for the pop-shift diagnosis stage. Nil leaves every
	// existing series bit-exact.
	Population *Population
	Tree       *Tree
	Seed       int64
	// EmitSubroutines limits gCPU emission to the named subroutines; nil
	// emits every subroutine in the tree (can be large).
	EmitSubroutines []string
	// EmitMetadata lists metadata annotations to emit dedicated gCPU
	// series for (metric entity "meta:<value>"), enabling
	// metadata-annotated regression detection (paper §3).
	EmitMetadata []string
	// QuantizeSamples rounds emitted gCPU values to the decimal grid a
	// counting profiler can actually resolve: 1/10^ceil(log10(n)) for n
	// samples per step (capped at 1e-9). A sample counter cannot report
	// fractions finer than 1/n, so full float64 mantissas on gCPU are
	// simulation artifacts; quantizing removes them, which also lets the
	// chunked store pack fleet telemetry as scaled integers.
	QuantizeSamples bool
}

func (c Config) validate() error {
	if c.Name == "" {
		return fmt.Errorf("fleet: service name required")
	}
	if c.Servers <= 0 {
		return fmt.Errorf("fleet: servers must be positive")
	}
	if c.Step <= 0 {
		return fmt.Errorf("fleet: step must be positive")
	}
	if c.Tree == nil {
		return fmt.Errorf("fleet: call tree required")
	}
	if c.BaseCPU < 0 || c.BaseCPU > 1 {
		return fmt.Errorf("fleet: base CPU out of [0,1]: %v", c.BaseCPU)
	}
	if c.Population != nil {
		if err := c.Population.validate(); err != nil {
			return err
		}
	}
	return nil
}

// ScheduledChange is a code or configuration change applied to the
// service's call tree at a point in simulated time.
type ScheduledChange struct {
	At     time.Time
	Effect func(*Tree) error
	Record *changelog.Change // optional metadata recorded into the change log
}

// treeEpoch is the call tree in effect starting at a given time.
type treeEpoch struct {
	start time.Time
	tree  *Tree
}

// Service simulates one service. Construct with NewService; methods are
// not safe for concurrent use.
type Service struct {
	cfg           Config
	rng           *rand.Rand
	epochs        []treeEpoch // sorted by start; epochs[0].start is zero time
	changes       []ScheduledChange
	nextChange    int // index of the first change not yet materialized
	issues        []Issue
	initialWeight float64
	avgSpeed      float64
	sampleScale   float64     // gCPU quantization grid (0: quantization off)
	pop           *popEmitter // nil unless Config.Population is set
}

// NewService validates the config and returns a simulator for the service.
func NewService(cfg Config) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	avgSpeed := 1.0
	if len(cfg.Generations) > 0 {
		avgSpeed = 0
		frac := 0.0
		for _, g := range cfg.Generations {
			// Each fraction must be a valid share on its own: a set like
			// {1.5, -0.5} sums to 1 but describes an impossible fleet, and
			// negative fractions silently flip speed-factor contributions.
			if g.Fraction < 0 || g.Fraction > 1 || math.IsNaN(g.Fraction) {
				return nil, fmt.Errorf("fleet: generation %q fraction %v out of [0,1]",
					g.Name, g.Fraction)
			}
			avgSpeed += g.Fraction * g.SpeedFactor
			frac += g.Fraction
		}
		if math.Abs(frac-1) > 1e-6 {
			return nil, fmt.Errorf("fleet: generation fractions sum to %v, want 1", frac)
		}
	}
	sampleScale := 0.0
	if cfg.QuantizeSamples && cfg.SamplesPerStep > 0 {
		sampleScale = math.Pow(10, math.Ceil(math.Log10(cfg.SamplesPerStep)))
		if sampleScale > 1e9 {
			sampleScale = 1e9
		}
	}
	return &Service{
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		epochs:        []treeEpoch{{tree: cfg.Tree.Clone()}},
		initialWeight: cfg.Tree.TotalWeight(),
		avgSpeed:      avgSpeed,
		sampleScale:   sampleScale,
		pop:           newPopEmitter(cfg.Population, cfg.Seed),
	}, nil
}

// Name returns the service name.
func (s *Service) Name() string { return s.cfg.Name }

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// ScheduleChange registers a change to apply at ch.At. Changes may be
// scheduled in any order, but must be scheduled before the simulation
// reads (via Run, TreeAt, or ExpectedSamplesBetween) past their deploy
// time.
func (s *Service) ScheduleChange(ch ScheduledChange) {
	s.changes = append(s.changes, ch)
	sort.SliceStable(s.changes[s.nextChange:], func(i, j int) bool {
		return s.changes[s.nextChange+i].At.Before(s.changes[s.nextChange+j].At)
	})
}

// ScheduleIssue registers a transient issue.
func (s *Service) ScheduleIssue(is Issue) {
	s.issues = append(s.issues, is)
}

// TreeAt returns the call tree in effect at t. Before Run applies a
// scheduled change the tree for times past the change is not yet
// materialized; TreeAt materializes epochs on demand instead, so it is
// always consistent with scheduled changes.
func (s *Service) TreeAt(t time.Time) *Tree {
	s.materializeUpTo(t)
	cur := s.epochs[0].tree
	for _, e := range s.epochs[1:] {
		if e.start.After(t) {
			break
		}
		cur = e.tree
	}
	return cur
}

// materializeUpTo applies scheduled changes with At <= t that have not yet
// produced an epoch.
func (s *Service) materializeUpTo(t time.Time) {
	for s.nextChange < len(s.changes) && !s.changes[s.nextChange].At.After(t) {
		ch := s.changes[s.nextChange]
		s.nextChange++
		next := s.epochs[len(s.epochs)-1].tree.Clone()
		if err := ch.Effect(next); err != nil {
			// Skip invalid effects; callers validate their schedules.
			continue
		}
		s.epochs = append(s.epochs, treeEpoch{start: ch.At, tree: next})
	}
}

// seasonFactor returns the multiplicative seasonal factor at t.
func (s *Service) seasonFactor(t time.Time) float64 {
	if s.cfg.SeasonalAmp == 0 || s.cfg.SeasonalPeriod <= 0 {
		return 1
	}
	phase := float64(t.UnixNano()%int64(s.cfg.SeasonalPeriod)) / float64(s.cfg.SeasonalPeriod)
	return 1 + s.cfg.SeasonalAmp*math.Sin(2*math.Pi*phase)
}

// issueFactors returns the combined multiplicative impact of active issues
// at t on (cpu, throughput, latency, error rate).
func (s *Service) issueFactors(t time.Time) (cpu, thr, lat, errRate float64) {
	cpu, thr, lat, errRate = 1, 1, 1, 1
	for _, is := range s.issues {
		if is.Active(t) {
			cpu *= is.CPUFactor
			thr *= is.ThroughputFactor
			lat *= is.LatencyFactor
			errRate *= is.ErrorFactor
		}
	}
	return cpu, thr, lat, errRate
}

// Run simulates [from, to) and appends every metric series to db,
// recording scheduled change metadata into log (which may be nil).
func (s *Service) Run(db *tsdb.DB, log *changelog.Log, from, to time.Time) error {
	if db.Step() != s.cfg.Step {
		return fmt.Errorf("fleet: db step %s != service step %s", db.Step(), s.cfg.Step)
	}
	if log != nil {
		for _, ch := range s.changes {
			if ch.Record != nil && !ch.At.Before(from) && ch.At.Before(to) {
				rec := *ch.Record
				rec.Service = s.cfg.Name
				rec.DeployedAt = ch.At
				log.Record(&rec)
			}
		}
	}
	emit := s.cfg.EmitSubroutines
	for t := from; t.Before(to); t = t.Add(s.cfg.Step) {
		tree := s.TreeAt(t)
		season := s.seasonFactor(t)
		cpuF, thrF, latF, errF := s.issueFactors(t)

		// Population mix for this step: emits the per-stratum weight
		// series and yields the population-weighted cost factor the
		// aggregates scale by (1 when no population is configured).
		mix, err := s.pop.step(db, s.cfg.Name, t)
		if err != nil {
			return err
		}

		// Process-level CPU: base scaled by total subroutine cost, with
		// fleet-averaged noise (per-server sigma shrinks by sqrt(m)).
		costScale := tree.TotalWeight() / s.initialWeight
		m := float64(s.cfg.Servers)
		cpuNoise := s.rng.NormFloat64() * s.cfg.CPUNoise / math.Sqrt(m)
		cpuBase := s.cfg.BaseCPU * costScale * s.avgSpeedFactor() * season * cpuF
		cpu := clamp01(cpuBase*mix + cpuNoise)
		if err := db.Append(tsdb.ID(s.cfg.Name, "", "cpu"), t, cpu); err != nil {
			return err
		}
		if err := s.pop.emitCPU(db, s.cfg.Name, t, cpuBase, s.cfg.CPUNoise, m); err != nil {
			return err
		}

		// Throughput, latency, error rate.
		thr := s.cfg.BaseThroughput*season*thrF +
			s.rng.NormFloat64()*s.cfg.ThroughputNoise
		if thr < 0 {
			thr = 0
		}
		if err := db.Append(tsdb.ID(s.cfg.Name, "", "throughput"), t, thr); err != nil {
			return err
		}
		if s.cfg.BaseLatency > 0 {
			lat := s.cfg.BaseLatency*latF*costScale +
				s.rng.NormFloat64()*s.cfg.LatencyNoise
			if lat < 0 {
				lat = 0
			}
			if err := db.Append(tsdb.ID(s.cfg.Name, "", "latency"), t, lat); err != nil {
				return err
			}
		}
		if s.cfg.BaseErrorRate > 0 {
			er := s.cfg.BaseErrorRate*errF + s.rng.NormFloat64()*s.cfg.ErrorNoise
			if er < 0 {
				er = 0
			}
			if err := db.Append(tsdb.ID(s.cfg.Name, "", "error_rate"), t, er); err != nil {
				return err
			}
		}

		// Subroutine-level gCPU with binomial sampling noise:
		// sd = sqrt(p(1-p)/n) for n samples per step.
		n := s.cfg.SamplesPerStep
		if n > 0 {
			gcpus := tree.GCPUAll()
			subs := emit
			if subs == nil {
				subs = tree.Subroutines()
			}
			seen := make(map[string]bool, len(subs))
			for _, sub := range subs {
				if seen[sub] {
					continue // tolerate duplicates in EmitSubroutines
				}
				seen[sub] = true
				p := clamp01(gcpus[sub]) // float error can leave [0,1] and poison the sqrt
				agg := clamp01(p * mix)  // fleet average over the population mix
				sd := math.Sqrt(agg * (1 - agg) / n)
				g := agg + s.rng.NormFloat64()*sd
				if g < 0 {
					g = 0
				}
				g = s.quantize(g)
				if err := db.Append(tsdb.ID(s.cfg.Name, sub, "gcpu"), t, g); err != nil {
					return err
				}
				if err := s.pop.emitGCPU(db, s.cfg.Name, sub, t, p, n, s.quantize); err != nil {
					return err
				}
			}
			for _, meta := range s.cfg.EmitMetadata {
				p := clamp01(tree.GCPUMetadata(meta))
				agg := clamp01(p * mix)
				sd := math.Sqrt(agg * (1 - agg) / n)
				g := agg + s.rng.NormFloat64()*sd
				if g < 0 {
					g = 0
				}
				g = s.quantize(g)
				if err := db.Append(tsdb.ID(s.cfg.Name, "meta:"+meta, "gcpu"), t, g); err != nil {
					return err
				}
				if err := s.pop.emitGCPU(db, s.cfg.Name, "meta:"+meta, t, p, n, s.quantize); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// quantize rounds a gCPU value onto the sampling-resolution grid; a
// no-op (identity) when QuantizeSamples is off. It sits after the rng
// draws, so enabling quantization does not perturb the rng sequence.
func (s *Service) quantize(g float64) float64 {
	if s.sampleScale == 0 {
		return g
	}
	return math.Round(g*s.sampleScale) / s.sampleScale
}

func (s *Service) avgSpeedFactor() float64 {
	if s.avgSpeed == 0 {
		return 1
	}
	return s.avgSpeed
}

// ExpectedSamplesBetween returns the exact expected stack-trace sample set
// over [from, to): per-epoch expected samples weighted by the fraction of
// the interval each epoch covers.
func (s *Service) ExpectedSamplesBetween(from, to time.Time, totalSamples float64) *stacktrace.SampleSet {
	s.materializeUpTo(to)
	span := to.Sub(from)
	if span <= 0 {
		return stacktrace.NewSampleSet()
	}
	out := stacktrace.NewSampleSet()
	for i, e := range s.epochs {
		start := e.start
		if start.Before(from) {
			start = from
		}
		end := to
		if i+1 < len(s.epochs) && s.epochs[i+1].start.Before(to) {
			end = s.epochs[i+1].start
		}
		if !end.After(start) {
			continue
		}
		frac := float64(end.Sub(start)) / float64(span)
		out = out.Merge(e.tree.ExpectedSamples(totalSamples * frac))
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
