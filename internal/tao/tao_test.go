package tao

import (
	"sync"
	"testing"
	"time"

	"fbdetect/internal/stats"
	"fbdetect/internal/tsdb"
)

var t0 = time.Date(2024, 9, 1, 0, 0, 0, 0, time.UTC)

func TestObjectPutGet(t *testing.T) {
	s := NewStore()
	if err := s.ObjectPut(&Object{ID: 1, Type: "user"}); err != nil {
		t.Fatal(err)
	}
	o, ok := s.ObjectGet(1, "user")
	if !ok || o.Type != "user" {
		t.Errorf("get = %+v, %v", o, ok)
	}
	if _, ok := s.ObjectGet(2, "user"); ok {
		t.Error("missing object found")
	}
	// Type mismatch.
	if _, ok := s.ObjectGet(1, "post"); ok {
		t.Error("type mismatch should miss")
	}
	if err := s.ObjectPut(&Object{ID: 3}); err == nil {
		t.Error("untyped object accepted")
	}
	if err := s.ObjectPut(nil); err == nil {
		t.Error("nil object accepted")
	}
}

func TestAssocOrderingNewestFirst(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.AssocAdd(Assoc{ID1: 1, ID2: ObjectID(10 + i), Type: "friend",
			Time: t0.Add(time.Duration(i) * time.Minute)})
	}
	got := s.AssocRange(1, "friend", 0, 3)
	if len(got) != 3 {
		t.Fatalf("range = %d", len(got))
	}
	// Newest first: ID2 = 14, 13, 12.
	if got[0].ID2 != 14 || got[1].ID2 != 13 || got[2].ID2 != 12 {
		t.Errorf("order = %v %v %v", got[0].ID2, got[1].ID2, got[2].ID2)
	}
	// Offset.
	got = s.AssocRange(1, "friend", 3, 10)
	if len(got) != 2 || got[0].ID2 != 11 {
		t.Errorf("offset range = %v", got)
	}
	if n := s.AssocCount(1, "friend"); n != 5 {
		t.Errorf("count = %d", n)
	}
	if _, ok := s.AssocGet(1, "friend", 12); !ok {
		t.Error("AssocGet missed")
	}
	if _, ok := s.AssocGet(1, "friend", 99); ok {
		t.Error("AssocGet found ghost")
	}
	if err := s.AssocAdd(Assoc{ID1: 1}); err == nil {
		t.Error("untyped assoc accepted")
	}
}

func TestAssocAddOutOfOrderTimes(t *testing.T) {
	s := NewStore()
	s.AssocAdd(Assoc{ID1: 1, ID2: 2, Type: "like", Time: t0.Add(time.Hour)})
	s.AssocAdd(Assoc{ID1: 1, ID2: 3, Type: "like", Time: t0}) // older, added later
	got := s.AssocRange(1, "like", 0, 2)
	if got[0].ID2 != 2 || got[1].ID2 != 3 {
		t.Errorf("order after out-of-order insert: %v %v", got[0].ID2, got[1].ID2)
	}
}

func TestTypeCountsAndReset(t *testing.T) {
	s := NewStore()
	s.ObjectPut(&Object{ID: 1, Type: "user"})
	s.ObjectGet(1, "user")
	s.ObjectGet(1, "user")
	s.AssocAdd(Assoc{ID1: 1, ID2: 2, Type: "friend", Time: t0})
	counts := s.TypeCounts()
	if counts["user"][OpObjGet] != 2 || counts["user"][OpObjPut] != 1 {
		t.Errorf("user counts = %v", counts["user"])
	}
	if counts["friend"][OpAssocAdd] != 1 {
		t.Errorf("friend counts = %v", counts["friend"])
	}
	types := s.DataTypes()
	if len(types) != 2 || types[0] != "friend" {
		t.Errorf("types = %v", types)
	}
	prev := s.ResetCounts()
	if prev["user"][OpObjGet] != 2 {
		t.Error("reset did not return previous counts")
	}
	if len(s.TypeCounts()) != 0 {
		t.Error("counts not reset")
	}
}

func TestOpKindString(t *testing.T) {
	if OpObjGet.String() != "obj_get" || OpAssocRange.String() != "assoc_range" {
		t.Error("OpKind names wrong")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ObjectID(g*1000 + i)
				s.ObjectPut(&Object{ID: id, Type: "user"})
				s.ObjectGet(id, "user")
				s.AssocAdd(Assoc{ID1: id, ID2: id + 1, Type: "friend", Time: t0})
				s.AssocRange(id, "friend", 0, 5)
			}
		}(g)
	}
	wg.Wait()
	counts := s.TypeCounts()
	if counts["user"][OpObjPut] != 1600 || counts["friend"][OpAssocAdd] != 1600 {
		t.Errorf("concurrent counts = %v", counts)
	}
}

func TestWorkloadValidation(t *testing.T) {
	store := NewStore()
	mix := []TypeMix{{DataType: "user", ReadsPerStep: 10}}
	bad := []WorkloadConfig{
		{},
		{Service: "tao", Step: 0, Mixes: mix},
		{Service: "tao", Step: time.Minute},
	}
	for i, cfg := range bad {
		if _, err := NewWorkload(cfg, store); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewWorkload(WorkloadConfig{Service: "t", Step: time.Minute, Mixes: mix}, nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestWorkloadEmitsPerTypeSeries(t *testing.T) {
	store := NewStore()
	w, err := NewWorkload(WorkloadConfig{
		Service: "tao",
		Step:    time.Minute,
		Mixes: []TypeMix{
			{DataType: "user", ReadsPerStep: 100, WritesPerStep: 20},
			{DataType: "post", ReadsPerStep: 50, WritesPerStep: 10},
		},
		RateNoise: 0.02,
		Seed:      1,
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New(time.Minute)
	if err := w.Run(db, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	reads, err := db.Full(tsdb.ID("tao", "type:user", "reads_per_step"))
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Mean(reads.Values); m < 90 || m > 110 {
		t.Errorf("user reads mean = %v, want ~100", m)
	}
	thr, err := db.Full(tsdb.ID("tao", "", "throughput"))
	if err != nil {
		t.Fatal(err)
	}
	if m := stats.Mean(thr.Values); m < 160 || m > 200 {
		t.Errorf("throughput mean = %v, want ~180", m)
	}
	// The workload really hit the store.
	counts := store.TypeCounts()
	if counts["user"][OpObjGet] == 0 || counts["post"][OpAssocRange] == 0 {
		t.Errorf("store not exercised: %v", counts)
	}
}

func TestWorkloadMixEventIsIORegression(t *testing.T) {
	store := NewStore()
	w, err := NewWorkload(WorkloadConfig{
		Service:   "tao",
		Step:      time.Minute,
		Mixes:     []TypeMix{{DataType: "user", ReadsPerStep: 100, WritesPerStep: 10}},
		RateNoise: 0.02,
		Seed:      2,
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	w.ScheduleMixEvent(MixEvent{At: t0.Add(30 * time.Minute), DataType: "user", ReadFactor: 1.5})
	db := tsdb.New(time.Minute)
	if err := w.Run(db, t0, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	reads, _ := db.Full(tsdb.ID("tao", "type:user", "reads_per_step"))
	before := stats.Mean(reads.Values[:30])
	after := stats.Mean(reads.Values[30:])
	if after/before < 1.4 {
		t.Errorf("I/O regression not visible: %v -> %v", before, after)
	}
	// Writes unchanged.
	writes, _ := db.Full(tsdb.ID("tao", "type:user", "writes_per_step"))
	wb := stats.Mean(writes.Values[:30])
	wa := stats.Mean(writes.Values[30:])
	if wa/wb > 1.2 {
		t.Errorf("writes unexpectedly moved: %v -> %v", wb, wa)
	}
}
