package tao

import (
	"testing"
	"time"
)

func BenchmarkObjectOps(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := ObjectID(i % 10000)
		s.ObjectPut(&Object{ID: id, Type: "user"})
		s.ObjectGet(id, "user")
	}
}

func BenchmarkAssocRange(b *testing.B) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		s.AssocAdd(Assoc{ID1: 1, ID2: ObjectID(i), Type: "friend",
			Time: t0.Add(time.Duration(i) * time.Second)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AssocRange(1, "friend", 0, 50)
	}
}

func BenchmarkAssocAdd(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AssocAdd(Assoc{ID1: ObjectID(i % 1000), ID2: ObjectID(i),
			Type: "like", Time: t0.Add(time.Duration(i) * time.Second)})
	}
}
