// Package tao implements a small in-memory graph store modeled on TAO
// (Bronson et al., ATC '13), the database substrate of paper §3: FBDetect
// monitors TAO's per-data-type I/O from the serverless platforms and its
// overall query-processing throughput.
//
// The data model is TAO's: typed objects and typed directed associations
// between them. The store counts every operation per data type, which is
// the series FBDetect's per-data-type I/O regression detection consumes.
package tao

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ObjectID identifies an object.
type ObjectID uint64

// Object is a typed node with opaque payload fields.
type Object struct {
	ID   ObjectID
	Type string
	Data map[string]string
}

// Assoc is a typed directed edge (id1 --type--> id2) with a creation time,
// ordered newest-first in range queries as in TAO.
type Assoc struct {
	ID1, ID2 ObjectID
	Type     string
	Time     time.Time
	Data     map[string]string
}

// OpKind enumerates the store's operations for per-type accounting.
type OpKind int

// Operation kinds.
const (
	OpObjGet OpKind = iota
	OpObjPut
	OpAssocGet
	OpAssocRange
	OpAssocCount
	OpAssocAdd
)

var opNames = [...]string{"obj_get", "obj_put", "assoc_get", "assoc_range", "assoc_count", "assoc_add"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return "unknown"
}

// assocKey identifies an association list.
type assocKey struct {
	id1   ObjectID
	atype string
}

// Store is a concurrency-safe in-memory TAO-like graph store with
// per-data-type operation counters.
type Store struct {
	mu      sync.RWMutex
	objects map[ObjectID]*Object
	assocs  map[assocKey][]Assoc

	countMu sync.Mutex
	counts  map[string]map[OpKind]int64 // data type -> op -> count
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		objects: map[ObjectID]*Object{},
		assocs:  map[assocKey][]Assoc{},
		counts:  map[string]map[OpKind]int64{},
	}
}

func (s *Store) count(dataType string, op OpKind) {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	m, ok := s.counts[dataType]
	if !ok {
		m = map[OpKind]int64{}
		s.counts[dataType] = m
	}
	m[op]++
}

// ObjectPut inserts or replaces an object.
func (s *Store) ObjectPut(o *Object) error {
	if o == nil || o.Type == "" {
		return fmt.Errorf("tao: object requires a type")
	}
	s.mu.Lock()
	s.objects[o.ID] = o
	s.mu.Unlock()
	s.count(o.Type, OpObjPut)
	return nil
}

// ObjectGet fetches an object by id; the expected type is used for
// accounting and validated when the object exists.
func (s *Store) ObjectGet(id ObjectID, otype string) (*Object, bool) {
	s.mu.RLock()
	o, ok := s.objects[id]
	s.mu.RUnlock()
	s.count(otype, OpObjGet)
	if !ok || (otype != "" && o.Type != otype) {
		return nil, false
	}
	return o, true
}

// AssocAdd appends an association; lists stay ordered newest first.
func (s *Store) AssocAdd(a Assoc) error {
	if a.Type == "" {
		return fmt.Errorf("tao: assoc requires a type")
	}
	key := assocKey{a.ID1, a.Type}
	s.mu.Lock()
	list := s.assocs[key]
	// Insert keeping newest-first order.
	i := sort.Search(len(list), func(i int) bool { return list[i].Time.Before(a.Time) })
	list = append(list, Assoc{})
	copy(list[i+1:], list[i:])
	list[i] = a
	s.assocs[key] = list
	s.mu.Unlock()
	s.count(a.Type, OpAssocAdd)
	return nil
}

// AssocGet returns the association (id1, atype, id2) if present.
func (s *Store) AssocGet(id1 ObjectID, atype string, id2 ObjectID) (Assoc, bool) {
	s.mu.RLock()
	defer func() { s.mu.RUnlock(); s.count(atype, OpAssocGet) }()
	for _, a := range s.assocs[assocKey{id1, atype}] {
		if a.ID2 == id2 {
			return a, true
		}
	}
	return Assoc{}, false
}

// AssocRange returns up to limit newest associations of (id1, atype)
// starting at offset.
func (s *Store) AssocRange(id1 ObjectID, atype string, offset, limit int) []Assoc {
	s.mu.RLock()
	list := s.assocs[assocKey{id1, atype}]
	var out []Assoc
	if offset < len(list) {
		end := offset + limit
		if end > len(list) {
			end = len(list)
		}
		out = append(out, list[offset:end]...)
	}
	s.mu.RUnlock()
	s.count(atype, OpAssocRange)
	return out
}

// AssocCount returns the number of associations of (id1, atype).
func (s *Store) AssocCount(id1 ObjectID, atype string) int {
	s.mu.RLock()
	n := len(s.assocs[assocKey{id1, atype}])
	s.mu.RUnlock()
	s.count(atype, OpAssocCount)
	return n
}

// TypeCounts returns a copy of the per-data-type operation counters.
func (s *Store) TypeCounts() map[string]map[OpKind]int64 {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	out := make(map[string]map[OpKind]int64, len(s.counts))
	for t, ops := range s.counts {
		m := make(map[OpKind]int64, len(ops))
		for k, v := range ops {
			m[k] = v
		}
		out[t] = m
	}
	return out
}

// ResetCounts zeroes the counters and returns the previous values, used
// by the metrics emitter to bucket counts per time step.
func (s *Store) ResetCounts() map[string]map[OpKind]int64 {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	out := s.counts
	s.counts = map[string]map[OpKind]int64{}
	return out
}

// DataTypes returns the data types seen so far, sorted.
func (s *Store) DataTypes() []string {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	out := make([]string, 0, len(s.counts))
	for t := range s.counts {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
