package tao

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fbdetect/internal/tsdb"
)

// TypeMix is the request mix for one data type: how many operations of
// each kind a workload issues per step for this type.
type TypeMix struct {
	DataType string
	// ReadsPerStep and WritesPerStep are the baseline operation counts
	// per emission step.
	ReadsPerStep  float64
	WritesPerStep float64
}

// MixEvent scales one data type's request rates from At onward; a client
// code change that starts issuing more I/O for a data type is exactly the
// per-data-type I/O regression FBDetect detects for TAO (paper §3).
type MixEvent struct {
	At          time.Time
	DataType    string
	ReadFactor  float64
	WriteFactor float64
}

// WorkloadConfig drives a synthetic client against a Store.
type WorkloadConfig struct {
	Service string // service name used in emitted metric IDs
	Step    time.Duration
	Mixes   []TypeMix
	// RateNoise is the relative noise on per-step operation counts.
	RateNoise float64
	// Objects is the keyspace size per data type.
	Objects int
	Seed    int64
}

// Workload issues real operations against a Store step by step and emits
// per-data-type I/O series plus an overall query-throughput series.
type Workload struct {
	cfg    WorkloadConfig
	store  *Store
	rng    *rand.Rand
	events []MixEvent
}

// NewWorkload validates the config and returns a workload over store.
func NewWorkload(cfg WorkloadConfig, store *Store) (*Workload, error) {
	if cfg.Service == "" {
		return nil, fmt.Errorf("tao: service name required")
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("tao: step must be positive")
	}
	if len(cfg.Mixes) == 0 {
		return nil, fmt.Errorf("tao: at least one type mix required")
	}
	if store == nil {
		return nil, fmt.Errorf("tao: nil store")
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 1000
	}
	return &Workload{cfg: cfg, store: store, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// ScheduleMixEvent registers a rate change.
func (w *Workload) ScheduleMixEvent(e MixEvent) {
	w.events = append(w.events, e)
	sort.SliceStable(w.events, func(i, j int) bool { return w.events[i].At.Before(w.events[j].At) })
}

// ratesAt returns the effective (reads, writes) per step for a mix at t.
func (w *Workload) ratesAt(mix TypeMix, t time.Time) (reads, writes float64) {
	reads, writes = mix.ReadsPerStep, mix.WritesPerStep
	for _, e := range w.events {
		if e.At.After(t) {
			break
		}
		if e.DataType != mix.DataType {
			continue
		}
		if e.ReadFactor > 0 {
			reads *= e.ReadFactor
		}
		if e.WriteFactor > 0 {
			writes *= e.WriteFactor
		}
	}
	return reads, writes
}

// Run drives the workload for [from, to), executing real store operations
// and emitting, per data type, "reads_per_step" and "writes_per_step"
// series, plus a service-level "throughput" series, into db.
func (w *Workload) Run(db *tsdb.DB, from, to time.Time) error {
	if db.Step() != w.cfg.Step {
		return fmt.Errorf("tao: db step %s != workload step %s", db.Step(), w.cfg.Step)
	}
	for t := from; t.Before(to); t = t.Add(w.cfg.Step) {
		var total float64
		for _, mix := range w.cfg.Mixes {
			reads, writes := w.ratesAt(mix, t)
			nReads := w.jitterCount(reads)
			nWrites := w.jitterCount(writes)
			w.issueOps(mix.DataType, nReads, nWrites, t)
			total += float64(nReads + nWrites)
			if err := db.Append(tsdb.ID(w.cfg.Service, "type:"+mix.DataType, "reads_per_step"),
				t, float64(nReads)); err != nil {
				return err
			}
			if err := db.Append(tsdb.ID(w.cfg.Service, "type:"+mix.DataType, "writes_per_step"),
				t, float64(nWrites)); err != nil {
				return err
			}
		}
		if err := db.Append(tsdb.ID(w.cfg.Service, "", "throughput"), t, total); err != nil {
			return err
		}
	}
	return nil
}

func (w *Workload) jitterCount(rate float64) int {
	noise := w.cfg.RateNoise
	if noise <= 0 {
		noise = 0.01
	}
	n := rate * (1 + w.rng.NormFloat64()*noise)
	if n < 0 {
		n = 0
	}
	return int(n)
}

// issueOps executes real operations against the store: a read mix of
// object gets, assoc ranges and counts; writes split between object puts
// and assoc adds.
func (w *Workload) issueOps(dataType string, reads, writes int, t time.Time) {
	keyspace := ObjectID(w.cfg.Objects)
	for i := 0; i < writes; i++ {
		id := ObjectID(w.rng.Intn(int(keyspace)))
		if i%2 == 0 {
			w.store.ObjectPut(&Object{ID: id, Type: dataType,
				Data: map[string]string{"v": "1"}})
		} else {
			w.store.AssocAdd(Assoc{
				ID1: id, ID2: ObjectID(w.rng.Intn(int(keyspace))),
				Type: dataType, Time: t,
			})
		}
	}
	for i := 0; i < reads; i++ {
		id := ObjectID(w.rng.Intn(int(keyspace)))
		switch i % 3 {
		case 0:
			w.store.ObjectGet(id, dataType)
		case 1:
			w.store.AssocRange(id, dataType, 0, 10)
		case 2:
			w.store.AssocCount(id, dataType)
		}
	}
}
