package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the WAL's second durability primitive: an append-only log of
// opaque payloads, for state machines whose records are not tsdb points —
// the control plane journals tenant registrations and async-operation
// transitions through it so a SIGKILLed server restarts with every
// acknowledged state change intact.
//
// Records reuse the point-WAL's framing ([4B length][4B CRC-32C][payload])
// and crash semantics: every Append is fsynced before it returns (journal
// records are rare, low-volume state transitions, so group commit would
// buy nothing), and opening a journal replays intact records and
// truncates a torn tail — the expected signature of a crash mid-write —
// back to the last whole record. Compaction is whole-file: Rewrite
// serializes the caller's current live state to a temp file and renames
// it over the journal atomically.
type Journal struct {
	path string

	mu     sync.Mutex
	f      *os.File
	size   int64
	closed bool
}

// journalMaxPayload bounds one record so a corrupt length field cannot
// drive a multi-gigabyte allocation during replay.
const journalMaxPayload = 16 << 20

// OpenJournal opens (creating if needed) the journal at path and replays
// it: every intact record's payload is passed to apply in append order.
// A torn or corrupt tail is truncated back to the last intact record.
// apply may be nil (replayed records are discarded, e.g. for a fresh
// rewrite). An apply error aborts the open.
func OpenJournal(path string, apply func(payload []byte) error) (*Journal, ReplayStats, error) {
	var stats ReplayStats
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, stats, fmt.Errorf("wal: creating journal dir: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, stats, fmt.Errorf("wal: reading journal: %w", err)
	}
	off := 0
	for off < len(data) {
		payload, size, derr := decodeJournalRecord(data[off:])
		if derr != nil {
			// Torn tail: drop everything from the first bad record and
			// truncate so appends resume from intact state.
			stats.TornTail = true
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return nil, stats, fmt.Errorf("wal: truncating torn journal tail: %w", terr)
			}
			break
		}
		if apply != nil {
			if aerr := apply(payload); aerr != nil {
				return nil, stats, fmt.Errorf("wal: replaying journal record %d: %w", stats.Records, aerr)
			}
		}
		stats.Records++
		off += size
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("wal: stat journal: %w", err)
	}
	return &Journal{path: path, f: f, size: st.Size()}, stats, nil
}

// ReplayStats summarizes what opening a journal found.
type ReplayStats struct {
	// Records is how many intact records were replayed.
	Records int
	// TornTail reports the file ended in a partial or corrupt record
	// (a crash landed mid-write) and was truncated back to intact state.
	TornTail bool
}

// Append durably appends one payload: the record is written and fsynced
// before Append returns, so an acknowledged state transition survives an
// immediate SIGKILL.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > journalMaxPayload {
		return fmt.Errorf("wal: journal payload must be 1..%d bytes, got %d", journalMaxPayload, len(payload))
	}
	rec := appendJournalRecord(nil, payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: append to closed journal")
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("wal: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: journal fsync: %w", err)
	}
	j.size += int64(len(rec))
	return nil
}

// Size returns the journal file's current size in bytes — the compaction
// trigger callers poll.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Rewrite compacts the journal to exactly payloads, in order: they are
// written to a temp file, fsynced, and atomically renamed over the
// journal. A crash at any point leaves either the old or the new file,
// never a mix. The caller passes its current live state (e.g. one record
// per surviving operation), discarding superseded transitions.
func (j *Journal) Rewrite(payloads [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: rewrite of closed journal")
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: journal rewrite: %w", err)
	}
	var buf []byte
	for _, p := range payloads {
		if len(p) == 0 || len(p) > journalMaxPayload {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: journal payload must be 1..%d bytes, got %d", journalMaxPayload, len(p))
		}
		buf = appendJournalRecord(buf, p)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: journal rewrite write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: journal rewrite fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: journal rewrite close: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("wal: journal rewrite rename: %w", err)
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening rewritten journal: %w", err)
	}
	j.f = nf
	j.size = int64(len(buf))
	old.Close()
	return nil
}

// Close fsyncs and closes the journal. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.f.Sync()
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// appendJournalRecord frames payload onto b:
// [4B payload length][4B CRC-32C of payload][payload], little-endian —
// the same layout as the point WAL, minus the kind byte (the journal is
// payload-agnostic; its owner defines the schema).
func appendJournalRecord(b, payload []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, recordHeaderSize)...)
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// decodeJournalRecord parses the record at the head of b, returning the
// payload and total bytes consumed. Truncation or checksum mismatch is an
// error; the caller treats it as a torn tail.
func decodeJournalRecord(b []byte) (payload []byte, size int, err error) {
	if len(b) < recordHeaderSize {
		return nil, 0, fmt.Errorf("wal: truncated journal record header (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 1 || n > journalMaxPayload {
		return nil, 0, fmt.Errorf("wal: implausible journal payload length %d", n)
	}
	if len(b) < recordHeaderSize+n {
		return nil, 0, fmt.Errorf("wal: truncated journal payload (%d of %d bytes)", len(b)-recordHeaderSize, n)
	}
	payload = b[recordHeaderSize : recordHeaderSize+n]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, 0, fmt.Errorf("wal: journal record checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, recordHeaderSize + n, nil
}
