package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/tsdb"
)

var t0 = time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

// testPoints builds a deterministic multi-metric batch stream.
func testPoints(metrics, steps int) [][]tsdb.Point {
	batches := make([][]tsdb.Point, 0, steps)
	for i := 0; i < steps; i++ {
		batch := make([]tsdb.Point, 0, metrics)
		for m := 0; m < metrics; m++ {
			batch = append(batch, tsdb.Point{
				ID: tsdb.ID("svc", fmt.Sprintf("sub%d", m), "gcpu"),
				T:  t0.Add(time.Duration(i) * time.Minute),
				V:  float64(i*metrics + m),
			})
		}
		batches = append(batches, batch)
	}
	return batches
}

// applyAll builds the reference store the recovered one must match.
func applyAll(t *testing.T, batches [][]tsdb.Point) *tsdb.DB {
	t.Helper()
	db := tsdb.New(time.Minute)
	for _, b := range batches {
		if _, err := db.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func assertSameDB(t *testing.T, want, got *tsdb.DB) {
	t.Helper()
	wm, gm := want.Metrics(""), got.Metrics("")
	if len(wm) != len(gm) {
		t.Fatalf("metric count %d, want %d", len(gm), len(wm))
	}
	for i, id := range wm {
		if gm[i] != id {
			t.Fatalf("metric[%d] = %s, want %s", i, gm[i], id)
		}
		ws, _ := want.Full(id)
		gs, err := got.Full(id)
		if err != nil {
			t.Fatal(err)
		}
		if !ws.Start.Equal(gs.Start) || ws.Len() != gs.Len() {
			t.Fatalf("%s: shape %v, want %v", id, gs, ws)
		}
		for j := range ws.Values {
			if ws.Values[j] != gs.Values[j] {
				t.Fatalf("%s[%d] = %v, want %v", id, j, gs.Values[j], ws.Values[j])
			}
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	pts := testPoints(5, 3)[1]
	b := appendRecord(nil, pts)
	got, size, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(b) {
		t.Fatalf("size = %d, want %d", size, len(b))
	}
	for i, p := range pts {
		g := got[i]
		if g.ID != p.ID || !g.T.Equal(p.T) || g.V != p.V {
			t.Fatalf("point %d = %+v, want %+v", i, g, p)
		}
	}
	// Flipping any byte must fail the checksum or the header sanity
	// checks — never decode silently.
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x40
		if _, _, err := decodeRecord(mut); err == nil {
			t.Fatalf("flipped byte %d decoded cleanly", i)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncAlways, SyncBatch, SyncNever} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: sync})
			if err != nil {
				t.Fatal(err)
			}
			batches := testPoints(7, 20)
			for _, b := range batches {
				if err := l.Append(b); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			db, stats, err := Recover(dir, time.Minute, tsdb.Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if stats.TornTail {
				t.Error("clean log reported a torn tail")
			}
			if stats.ReplayedRecords != len(batches) {
				t.Errorf("replayed %d records, want %d", stats.ReplayedRecords, len(batches))
			}
			assertSameDB(t, applyAll(t, batches), db)
		})
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l.Instrument(reg)
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := tsdb.ID("svc", fmt.Sprintf("w%d", w), "gcpu")
			for i := 0; i < perWriter; i++ {
				pts := []tsdb.Point{{ID: id, T: t0.Add(time.Duration(i) * time.Minute), V: float64(i)}}
				if err := l.Append(pts); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	db, stats, err := Recover(dir, time.Minute, tsdb.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplayedRecords != writers*perWriter {
		t.Errorf("replayed %d records, want %d", stats.ReplayedRecords, writers*perWriter)
	}
	if db.Len() != writers {
		t.Errorf("series = %d, want %d", db.Len(), writers)
	}
	for _, w := range []int{0, writers - 1} {
		s, err := db.Full(tsdb.ID("svc", fmt.Sprintf("w%d", w), "gcpu"))
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != perWriter {
			t.Errorf("writer %d series length %d, want %d", w, s.Len(), perWriter)
		}
	}
	// Group commit means strictly fewer fsyncs than records under
	// concurrency... but with one writer at a time it can degenerate to
	// 1:1, so only sanity-check the counters exist and moved.
	if snap := reg.NewCounter(MetricFsyncs, "", nil).Value(); snap <= 0 {
		t.Errorf("fsync counter = %v, want > 0", snap)
	}
	if snap := reg.NewCounter(MetricAppendedRecords, "", nil).Value(); snap != writers*perWriter {
		t.Errorf("appended records counter = %v, want %d", snap, writers*perWriter)
	}
}

func TestTornTailTruncatedAndTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	batches := testPoints(3, 10)
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop off its last 5 bytes.
	seg := filepath.Join(dir, segmentName(1))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	db, stats, err := Recover(dir, time.Minute, tsdb.Options{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TornTail {
		t.Fatal("torn tail not detected")
	}
	if stats.ReplayedRecords != len(batches)-1 {
		t.Errorf("replayed %d, want %d", stats.ReplayedRecords, len(batches)-1)
	}
	if got := reg.NewCounter(MetricTornTails, "", nil).Value(); got != 1 {
		t.Errorf("torn tail counter = %v", got)
	}
	assertSameDB(t, applyAll(t, batches[:len(batches)-1]), db)

	// The torn bytes were truncated away: appending and re-recovering
	// yields the full clean state again.
	l2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(batches[len(batches)-1]); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	db2, stats2, err := Recover(dir, time.Minute, tsdb.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.TornTail {
		t.Error("second recovery still sees a torn tail")
	}
	assertSameDB(t, applyAll(t, batches), db2)
}

func TestCorruptMiddleSegmentFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so the corruption lands mid-log.
	l, err := Open(dir, Options{Sync: SyncAlways, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testPoints(4, 30) {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v (err %v)", segs, err)
	}
	// Flip a byte in the first segment's first record payload.
	path := filepath.Join(dir, segmentName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderSize+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir, time.Minute, tsdb.Options{}, nil); err == nil {
		t.Fatal("corrupt non-final segment recovered silently")
	}
}

func TestSnapshotCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	store, err := OpenStore(dir, time.Minute, Options{Sync: SyncAlways, MaxSegmentBytes: 512}, tsdb.Options{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	batches := testPoints(5, 40)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		if _, err := store.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segsAfter, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsAfter) != 1 {
		t.Errorf("segments after compaction = %v, want exactly the fresh one", segsAfter)
	}
	if got := reg.NewCounter(MetricSnapshots, "", nil).Value(); got != 1 {
		t.Errorf("snapshot counter = %v", got)
	}
	if reg.NewCounter(MetricCompactedSegments, "", nil).Value() == 0 {
		t.Error("no segments compacted despite rotation-forcing appends")
	}
	for _, b := range batches[half:] {
		if _, err := store.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir, time.Minute, Options{}, tsdb.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Stats.SnapshotSeries == 0 {
		t.Error("recovery ignored the snapshot")
	}
	assertSameDB(t, applyAll(t, batches), store2.DB)

	// And appending after recovery keeps working.
	extra := []tsdb.Point{{ID: tsdb.ID("svc", "sub0", "gcpu"), T: t0.Add(41 * time.Minute), V: 1}}
	if n, err := store2.AppendBatch(extra); err != nil || n != 1 {
		t.Fatalf("append after recovery: n=%d err=%v", n, err)
	}
}

func TestSnapshotStepMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, time.Minute, Options{}, tsdb.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.AppendBatch(testPoints(2, 2)[0]); err != nil {
		t.Fatal(err)
	}
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
	store.Close()
	if _, _, err := Recover(dir, time.Hour, tsdb.Options{}, nil); err == nil {
		t.Fatal("snapshot with mismatched step recovered silently")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways, MaxSegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	batches := testPoints(2, 25)
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("no rotation happened: segments %v", segs)
	}
	db, _, err := Recover(dir, time.Minute, tsdb.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDB(t, applyAll(t, batches), db)
}

func TestClosedLogRejectsAppends(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testPoints(1, 1)[0]); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestBatchDelayFlushes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncBatch, BatchDelay: 5 * time.Millisecond, BatchBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testPoints(1, 1)[0]); err != nil {
		t.Fatal(err)
	}
	// Without reaching BatchBytes, the delay timer must still flush.
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		flushed := l.flushedSeq >= 1
		l.mu.Unlock()
		if flushed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch-delay flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}
