// Package wal makes the tsdb store crash-recoverable: a segmented,
// CRC-checksummed, length-prefixed binary write-ahead log with
// group-commit batching, plus snapshot/compact and recovery that rebuilds
// a DB from snapshot + tail segments while tolerating a torn final
// record.
//
// The paper's system monitors the fleet continuously (§5.1's always-on
// scans over ~800k live series); a process restart must not amnesia the
// history those scans window over. The durability discipline is the
// standard storage-engine one: every ingested batch is appended to the
// log (and, per SyncPolicy, fsynced) before it is applied to the
// in-memory store or acknowledged to the client, so after a SIGKILL the
// log replays to exactly the acknowledged state. Replay is idempotent —
// tsdb.AppendBatch skips points a snapshot already covers — which lets
// Snapshot run concurrently with appends and lets clients blindly re-send
// unacknowledged batches after a crash.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/tsdb"
)

// SyncPolicy controls when appended records are fsynced.
type SyncPolicy int

const (
	// SyncBatch (the default) makes Append durable at group-commit
	// boundaries: a flush+fsync happens when pending bytes reach
	// BatchBytes or the oldest pending record has waited BatchDelay.
	// Append returns after buffering; a crash can lose at most the last
	// unflushed window.
	SyncBatch SyncPolicy = iota
	// SyncAlways makes every Append return only after its record is
	// written and fsynced. Concurrent appenders are folded into one
	// fsync (group commit), so throughput degrades with fsync latency,
	// not fsync latency × writers. This is the policy the crash-recovery
	// equivalence test runs under: an acknowledged batch is durable.
	SyncAlways
	// SyncNever leaves flushing to the OS page cache (fsync only on
	// rotation, snapshot, and close). Fastest, weakest.
	SyncNever
)

// ParseSyncPolicy maps the -wal-sync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "never", "none", "os":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, batch, or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "batch"
	}
}

// Options tunes a Log. The zero value takes defaults.
type Options struct {
	// Sync is the durability policy (default SyncBatch).
	Sync SyncPolicy
	// BatchBytes triggers a group-commit flush once this many bytes are
	// pending (default 256 KiB).
	BatchBytes int
	// BatchDelay bounds how long a buffered record may wait for a flush
	// under SyncBatch (default 50ms).
	BatchDelay time.Duration
	// MaxSegmentBytes rotates to a fresh segment file once the current
	// one exceeds this size (default 8 MiB).
	MaxSegmentBytes int64
	// FsyncDelay injects a sleep before every fsync — a fault-injection
	// knob that widens the window in which a SIGKILL catches
	// acknowledged-but-unapplied state, used by the crash-recovery CI
	// job. Zero in production.
	FsyncDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.BatchBytes <= 0 {
		o.BatchBytes = 256 << 10
	}
	if o.BatchDelay <= 0 {
		o.BatchDelay = 50 * time.Millisecond
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	return o
}

// WAL metric names (registered by Instrument).
const (
	MetricAppendedBytes     = "fbdetect_wal_appended_bytes_total"
	MetricAppendedRecords   = "fbdetect_wal_appended_records_total"
	MetricAppendedPoints    = "fbdetect_wal_appended_points_total"
	MetricFsyncs            = "fbdetect_wal_fsyncs_total"
	MetricReplayedRecords   = "fbdetect_wal_replayed_records_total"
	MetricReplayedPoints    = "fbdetect_wal_replayed_points_total"
	MetricTornTails         = "fbdetect_wal_torn_tail_total"
	MetricSnapshots         = "fbdetect_wal_snapshots_total"
	MetricCompactedSegments = "fbdetect_wal_compacted_segments_total"
)

const (
	segPrefix    = "wal-"
	segSuffix    = ".seg"
	snapshotName = "snapshot.db"
)

func segmentName(index uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, index, segSuffix)
}

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's segment indexes, sorted ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []uint64
	for _, e := range entries {
		if n, ok := parseSegmentName(e.Name()); ok {
			idx = append(idx, n)
		}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx, nil
}

func unixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// Log is an append-only write-ahead log over a directory of segment
// files. Safe for concurrent Append.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File // current segment
	segIndex uint64
	segSize  int64

	buf        []byte // encoded records not yet written
	bufRecords int
	bufPoints  int
	firstWait  time.Time // when the oldest buffered record arrived
	timerArmed bool

	seq        uint64 // records enqueued
	flushedSeq uint64 // records durably flushed (per policy)
	flushing   bool   // a leader is writing outside the lock
	flushErr   error  // sticky: a failed write poisons the log
	closed     bool

	// metrics (nil-safe when uninstrumented)
	appendedBytes   *obs.Counter
	appendedRecords *obs.Counter
	appendedPoints  *obs.Counter
	fsyncs          *obs.Counter
	snapshots       *obs.Counter
	compacted       *obs.Counter
}

// Open opens (creating if needed) a log in dir, appending to the highest
// existing segment. Most callers want Recover or OpenStore instead, which
// replay existing state first.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing segments: %w", err)
	}
	index := uint64(1)
	if len(segs) > 0 {
		index = segs[len(segs)-1]
	}
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegment(index); err != nil {
		return nil, err
	}
	return l, nil
}

// Instrument publishes the log's append/fsync counters to reg.
func (l *Log) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.appendedBytes = reg.NewCounter(MetricAppendedBytes,
		"Bytes appended to WAL segments.", nil)
	l.appendedRecords = reg.NewCounter(MetricAppendedRecords,
		"Records (ingest batches) appended to the WAL.", nil)
	l.appendedPoints = reg.NewCounter(MetricAppendedPoints,
		"Points appended to the WAL.", nil)
	l.fsyncs = reg.NewCounter(MetricFsyncs,
		"fsync calls issued by the WAL.", nil)
	l.snapshots = reg.NewCounter(MetricSnapshots,
		"Snapshots written.", nil)
	l.compacted = reg.NewCounter(MetricCompactedSegments,
		"Segment files deleted by compaction.", nil)
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// openSegment opens segment index for appending. Caller holds l.mu or
// has exclusive access.
func (l *Log) openSegment(index uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(index)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	l.f, l.segIndex, l.segSize = f, index, st.Size()
	return nil
}

// Append encodes pts as one record and appends it to the log. Under
// SyncAlways it returns only once the record is fsynced; under SyncBatch
// it returns once buffered (flushes ride group-commit thresholds); under
// SyncNever it returns once buffered and flushing is best-effort.
func (l *Log) Append(pts []tsdb.Point) error {
	if len(pts) == 0 {
		return nil
	}
	rec := appendRecord(nil, pts)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append to closed log")
	}
	if l.flushErr != nil {
		return l.flushErr
	}
	if len(l.buf) == 0 {
		l.firstWait = time.Now()
	}
	l.buf = append(l.buf, rec...)
	l.bufRecords++
	l.bufPoints += len(pts)
	l.seq++
	target := l.seq

	switch l.opts.Sync {
	case SyncAlways:
		// Wait until a flush covers this record, becoming the leader when
		// no flush is running. Followers that enqueued while the leader
		// was in write+fsync ride the next leader's single fsync.
		for l.flushedSeq < target {
			if l.flushErr != nil {
				return l.flushErr
			}
			if l.closed {
				return fmt.Errorf("wal: log closed during append")
			}
			if !l.flushing {
				l.flushLocked(true)
			} else {
				l.cond.Wait()
			}
		}
		return l.flushErr
	default:
		if len(l.buf) >= l.opts.BatchBytes {
			l.flushLocked(l.opts.Sync == SyncBatch)
			return l.flushErr
		}
		if l.opts.Sync == SyncBatch && !l.timerArmed {
			l.timerArmed = true
			delay := l.opts.BatchDelay
			time.AfterFunc(delay, func() {
				l.mu.Lock()
				defer l.mu.Unlock()
				l.timerArmed = false
				if l.closed || len(l.buf) == 0 {
					return
				}
				l.flushLocked(true)
			})
		}
		return nil
	}
}

// flushLocked drains the pending buffer to the current segment as the
// flush leader: it swaps the buffer out, releases the lock for the
// write(2)+fsync, re-locks, and publishes the flushed sequence. Caller
// holds l.mu; the method returns holding it. Sets l.flushErr on failure.
func (l *Log) flushLocked(sync bool) {
	for l.flushing {
		l.cond.Wait()
	}
	if len(l.buf) == 0 || l.flushErr != nil {
		return
	}
	buf := l.buf
	records, points := l.bufRecords, l.bufPoints
	l.buf = nil
	l.bufRecords, l.bufPoints = 0, 0
	upTo := l.seq
	f := l.f
	rotateAfter := l.segSize+int64(len(buf)) >= l.opts.MaxSegmentBytes
	l.flushing = true
	l.mu.Unlock()

	_, err := f.Write(buf)
	if err == nil && sync {
		if l.opts.FsyncDelay > 0 {
			time.Sleep(l.opts.FsyncDelay)
		}
		err = f.Sync()
		l.fsyncs.Inc()
	}

	l.mu.Lock()
	l.flushing = false
	if err != nil {
		l.flushErr = fmt.Errorf("wal: flush: %w", err)
	} else {
		l.flushedSeq = upTo
		l.segSize += int64(len(buf))
		l.appendedBytes.Add(float64(len(buf)))
		l.appendedRecords.Add(float64(records))
		l.appendedPoints.Add(float64(points))
		if rotateAfter {
			if rerr := l.rotateLocked(); rerr != nil && l.flushErr == nil {
				l.flushErr = rerr
			}
		}
	}
	l.cond.Broadcast()
}

// rotateLocked fsyncs and closes the current segment and opens the next.
// Caller holds l.mu with no flush in flight.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync before rotate: %w", err)
	}
	l.fsyncs.Inc()
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close before rotate: %w", err)
	}
	return l.openSegment(l.segIndex + 1)
}

// Sync flushes all buffered records and fsyncs the current segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync on closed log")
	}
	l.flushLocked(true)
	if l.flushErr != nil {
		return l.flushErr
	}
	// An empty buffer still forces the segment to disk (Append under
	// SyncNever may have left written-but-unsynced bytes).
	for l.flushing {
		l.cond.Wait()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.fsyncs.Inc()
	return nil
}

// Close flushes, fsyncs, and closes the log. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.flushLocked(true)
	for l.flushing {
		l.cond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	err := l.flushErr
	if serr := l.f.Sync(); serr == nil {
		l.fsyncs.Inc()
	} else if err == nil {
		err = serr
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Snapshot serializes db to the directory's snapshot file and compacts
// fully-replayed segments. The sequence is crash-safe at every step:
//
//  1. flush+fsync pending records and rotate to a fresh segment, so every
//     earlier segment only holds data that predates the snapshot read;
//  2. serialize db to snapshot.tmp, fsync, and atomically rename over
//     snapshot.db;
//  3. delete segments older than the rotation point.
//
// Records written between (1) and (2) land in the fresh segment and are
// usually also captured by the snapshot; replaying them is harmless
// because recovery's AppendBatch skips already-covered points.
func (l *Log) Snapshot(db *tsdb.DB) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot on closed log")
	}
	l.flushLocked(true)
	if l.flushErr != nil {
		err := l.flushErr
		l.mu.Unlock()
		return err
	}
	for l.flushing {
		l.cond.Wait()
	}
	if err := l.rotateLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	cutoff := l.segIndex // segments below this are fully captured below
	l.mu.Unlock()

	if err := writeSnapshot(l.dir, db); err != nil {
		return err
	}
	l.snapshots.Inc()

	segs, err := listSegments(l.dir)
	if err != nil {
		return fmt.Errorf("wal: listing segments for compaction: %w", err)
	}
	for _, idx := range segs {
		if idx >= cutoff {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segmentName(idx))); err != nil {
			return fmt.Errorf("wal: compacting segment %d: %w", idx, err)
		}
		l.compacted.Inc()
	}
	return nil
}
