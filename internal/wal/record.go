package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"fbdetect/internal/tsdb"
)

// On-disk record layout (little-endian):
//
//	[4B payload length][4B CRC-32C of payload][payload]
//
// payload:
//
//	[1B kind][4B point count] then per point:
//	[2B metric-ID length][ID bytes][8B unix-nano timestamp][8B IEEE-754 bits]
//
// A record is one appended batch — group commit folds many caller batches
// into one write(2), but each batch stays one checksummed unit so replay
// can tell exactly which ingest acknowledgments the disk honored.

const (
	recordHeaderSize = 8
	kindPoints       = 1
	// maxRecordPayload bounds a single record so a corrupted length field
	// cannot make replay attempt a multi-gigabyte allocation.
	maxRecordPayload = 64 << 20
)

// castagnoli is the CRC-32C table (the polynomial storage systems
// conventionally use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes one batch of points as a WAL record appended to b.
func appendRecord(b []byte, pts []tsdb.Point) []byte {
	payloadLen := 1 + 4
	for _, p := range pts {
		payloadLen += 2 + len(p.ID) + 8 + 8
	}
	start := len(b)
	b = append(b, make([]byte, recordHeaderSize+payloadLen)...)
	binary.LittleEndian.PutUint32(b[start:], uint32(payloadLen))
	payload := b[start+recordHeaderSize:]
	payload[0] = kindPoints
	binary.LittleEndian.PutUint32(payload[1:], uint32(len(pts)))
	off := 5
	for _, p := range pts {
		binary.LittleEndian.PutUint16(payload[off:], uint16(len(p.ID)))
		off += 2
		off += copy(payload[off:], p.ID)
		binary.LittleEndian.PutUint64(payload[off:], uint64(p.T.UnixNano()))
		off += 8
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(p.V))
		off += 8
	}
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, castagnoli))
	return b
}

// decodeRecord parses the record at the head of b. It returns the decoded
// points and the total record size consumed. Any truncation or checksum
// mismatch returns an error; the caller decides whether that means a torn
// tail (stop replay) or corruption (fail recovery).
func decodeRecord(b []byte) (pts []tsdb.Point, size int, err error) {
	if len(b) < recordHeaderSize {
		return nil, 0, fmt.Errorf("wal: truncated record header (%d bytes)", len(b))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b))
	if payloadLen < 5 || payloadLen > maxRecordPayload {
		return nil, 0, fmt.Errorf("wal: implausible record payload length %d", payloadLen)
	}
	if len(b) < recordHeaderSize+payloadLen {
		return nil, 0, fmt.Errorf("wal: truncated record payload (%d of %d bytes)",
			len(b)-recordHeaderSize, payloadLen)
	}
	payload := b[recordHeaderSize : recordHeaderSize+payloadLen]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return nil, 0, fmt.Errorf("wal: record checksum mismatch (got %08x, want %08x)", got, want)
	}
	if payload[0] != kindPoints {
		return nil, 0, fmt.Errorf("wal: unknown record kind %d", payload[0])
	}
	count := int(binary.LittleEndian.Uint32(payload[1:]))
	off := 5
	// Each point needs at least 18 bytes; reject counts the payload
	// cannot possibly hold before allocating.
	if count < 0 || count > (payloadLen-off)/18 {
		return nil, 0, fmt.Errorf("wal: implausible point count %d in %d-byte payload", count, payloadLen)
	}
	pts = make([]tsdb.Point, 0, count)
	for i := 0; i < count; i++ {
		if off+2 > payloadLen {
			return nil, 0, fmt.Errorf("wal: point %d: truncated ID length", i)
		}
		idLen := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if off+idLen+16 > payloadLen {
			return nil, 0, fmt.Errorf("wal: point %d: truncated body", i)
		}
		id := tsdb.MetricID(payload[off : off+idLen])
		off += idLen
		nanos := int64(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
		pts = append(pts, tsdb.Point{ID: id, T: unixNano(nanos), V: v})
	}
	if off != payloadLen {
		return nil, 0, fmt.Errorf("wal: %d trailing payload bytes after %d points", payloadLen-off, count)
	}
	return pts, recordHeaderSize + payloadLen, nil
}
