package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"fbdetect/internal/tsdb"
)

// FuzzWALRecover feeds arbitrary bytes to recovery as the final (and
// only) WAL segment. The contract under fuzz: recovery of a final
// segment never panics and never fails — any undecodable suffix is a
// torn tail by definition, truncated away — and the surviving log must
// be clean: a second recovery sees no torn tail and identical content,
// and the log accepts appends afterwards.
func FuzzWALRecover(f *testing.F) {
	// Seed with realistic shapes: a clean log, a truncated one, bit
	// flips in header and payload, and junk.
	clean := appendRecord(nil, []tsdb.Point{
		{ID: tsdb.ID("svc", "sub", "gcpu"), T: time.Unix(0, 0).UTC(), V: 1.5},
		{ID: tsdb.ID("svc", "sub2", "gcpu"), T: time.Unix(60, 0).UTC(), V: 2.5},
	})
	clean = appendRecord(clean, []tsdb.Point{
		{ID: tsdb.ID("svc", "sub", "gcpu"), T: time.Unix(60, 0).UTC(), V: 3},
	})
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add(clean[:recordHeaderSize-2])
	flipped := append([]byte(nil), clean...)
	flipped[1] ^= 0x80
	f.Add(flipped)
	flipped2 := append([]byte(nil), clean...)
	flipped2[recordHeaderSize+2] ^= 0x01
	f.Add(flipped2)
	f.Add([]byte{})
	f.Add([]byte("not a wal segment at all, just prose"))
	huge := append([]byte(nil), clean...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f // implausible length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, segment []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1))
		if err := os.WriteFile(path, segment, 0o644); err != nil {
			t.Fatal(err)
		}
		db, stats, err := Recover(dir, time.Minute, tsdb.Options{}, nil)
		if err != nil {
			t.Fatalf("recovery of a final segment must tolerate any tail: %v", err)
		}
		// Whatever was recovered, the truncated log must now be clean
		// and byte-stable: recovering again replays the same records
		// with no torn tail.
		db2, stats2, err := Recover(dir, time.Minute, tsdb.Options{}, nil)
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		if stats2.TornTail {
			t.Fatal("second recovery still sees a torn tail after truncation")
		}
		if stats2.ReplayedRecords != stats.ReplayedRecords || stats2.ReplayedPoints != stats.ReplayedPoints {
			t.Fatalf("replay not stable: first %+v, second %+v", stats, stats2)
		}
		if db.Len() != db2.Len() {
			t.Fatalf("recovered stores differ: %d vs %d series", db.Len(), db2.Len())
		}
		// The log must accept appends after recovery.
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("open after recovery: %v", err)
		}
		pt := []tsdb.Point{{ID: "svc//cpu", T: time.Unix(1e6, 0).UTC(), V: 1}}
		if err := l.Append(pt); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
	})
}
