package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// Snapshot file layout (little-endian), a full serialization of the DB:
//
//	magic "FBDSNAP1\n"
//	[8B step nanos][4B series count]
//	per series: [2B ID length][ID bytes][8B start unix-nano][4B point count][points × 8B bits]
//	[4B CRC-32C of everything after the magic]
//
// The file is written to a temp name and renamed into place, so a crash
// mid-snapshot leaves the previous snapshot intact.

var snapshotMagic = []byte("FBDSNAP1\n")

// crcWriter tees writes through a running CRC-32C.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, castagnoli, p)
	return c.w.Write(p)
}

// writeSnapshot serializes db into dir/snapshot.db atomically.
func writeSnapshot(dir string, db *tsdb.DB) error {
	tmp := filepath.Join(dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(snapshotMagic); err != nil {
		f.Close()
		return err
	}
	cw := &crcWriter{w: bw}
	var scratch [8]byte
	writeU16 := func(v uint16) {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		cw.Write(scratch[:2])
	}
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		cw.Write(scratch[:4])
	}
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		cw.Write(scratch[:8])
	}

	ids := db.Metrics("")
	writeU64(uint64(db.Step()))
	writeU32(uint32(len(ids)))
	for _, id := range ids {
		s, err := db.Full(id)
		if err != nil {
			continue // dropped between listing and read; skip
		}
		writeU16(uint16(len(id)))
		cw.Write([]byte(id))
		writeU64(uint64(s.Start.UnixNano()))
		writeU32(uint32(s.Len()))
		for _, v := range s.Values {
			writeU64(math.Float64bits(v))
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc)
	if _, err := bw.Write(scratch[:4]); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	return syncDir(dir)
}

// loadSnapshot restores dir/snapshot.db into db, returning the number of
// series restored. A missing snapshot is not an error (0, nil). A corrupt
// snapshot is: unlike a torn WAL tail (an expected crash artifact), the
// snapshot was written with fsync+rename, so damage means real data loss
// and recovery must not silently proceed from partial state.
func loadSnapshot(dir string, db *tsdb.DB) (int, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+16 || string(data[:len(snapshotMagic)]) != string(snapshotMagic) {
		return 0, fmt.Errorf("wal: snapshot missing magic header")
	}
	body := data[len(snapshotMagic):]
	if len(body) < 4 {
		return 0, fmt.Errorf("wal: snapshot truncated")
	}
	payload, trailer := body[:len(body)-4], body[len(body)-4:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(trailer); got != want {
		return 0, fmt.Errorf("wal: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}
	off := 0
	need := func(n int) error {
		if off+n > len(payload) {
			return fmt.Errorf("wal: snapshot truncated at offset %d", off)
		}
		return nil
	}
	if err := need(12); err != nil {
		return 0, err
	}
	step := time.Duration(binary.LittleEndian.Uint64(payload[off:]))
	off += 8
	if step != db.Step() {
		return 0, fmt.Errorf("wal: snapshot step %s does not match store step %s", step, db.Step())
	}
	count := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	for i := 0; i < count; i++ {
		if err := need(2); err != nil {
			return 0, err
		}
		idLen := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if err := need(idLen + 12); err != nil {
			return 0, err
		}
		id := tsdb.MetricID(payload[off : off+idLen])
		off += idLen
		start := unixNano(int64(binary.LittleEndian.Uint64(payload[off:])))
		off += 8
		n := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if n < 0 || n > (len(payload)-off)/8 {
			return 0, fmt.Errorf("wal: snapshot series %q: implausible point count %d", id, n)
		}
		values := make([]float64, n)
		for j := range values {
			values[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		db.Restore(id, timeseries.New(start, step, values))
	}
	if off != len(payload) {
		return count, fmt.Errorf("wal: %d trailing snapshot bytes", len(payload)-off)
	}
	return count, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
