package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, path string) ([][]byte, ReplayStats, *Journal) {
	t.Helper()
	var got [][]byte
	j, stats, err := OpenJournal(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return got, stats, j
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.journal")
	j, stats, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.TornTail {
		t.Fatalf("fresh journal replayed %+v", stats)
	}
	want := [][]byte{[]byte("one"), []byte(`{"id":"op-2","status":"running"}`), bytes.Repeat([]byte{0xff}, 1024)}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, stats, j2 := replayAll(t, path)
	defer j2.Close()
	if stats.Records != len(want) || stats.TornTail {
		t.Fatalf("replay stats %+v, want %d records, no torn tail", stats, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	// Appends after a replayed open extend, not clobber.
	if err := j2.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	got, _, j3 := replayAll(t, path)
	j3.Close()
	if len(got) != 4 || string(got[3]) != "four" {
		t.Fatalf("after reopen+append got %d records (%q)", len(got), got)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-write: chop the file inside the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	got, stats, j2 := replayAll(t, path)
	if !stats.TornTail || stats.Records != 2 {
		t.Fatalf("stats %+v, want torn tail with 2 intact records", stats)
	}
	if len(got) != 2 || string(got[1]) != "record-1" {
		t.Fatalf("replayed %q", got)
	}
	// The torn bytes are gone from disk: appending then replaying yields
	// exactly the intact prefix plus the new record.
	if err := j2.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	got, stats, j3 := replayAll(t, path)
	j3.Close()
	if stats.TornTail || len(got) != 3 || string(got[2]) != "after-crash" {
		t.Fatalf("after truncation+append: stats %+v records %q", stats, got)
	}
}

func TestJournalCorruptRecordTreatedAsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Append([]byte("good"))
	j.Append([]byte("flipped"))
	j.Close()

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff // corrupt the final record's payload
	os.WriteFile(path, data, 0o644)

	got, stats, j2 := replayAll(t, path)
	j2.Close()
	if !stats.TornTail || len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("stats %+v records %q", stats, got)
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append([]byte(fmt.Sprintf("transition-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()
	live := [][]byte{[]byte("final-a"), []byte("final-b")}
	if err := j.Rewrite(live); err != nil {
		t.Fatal(err)
	}
	if j.Size() >= before {
		t.Fatalf("rewrite did not shrink: %d -> %d", before, j.Size())
	}
	// Post-rewrite appends land after the compacted state.
	if err := j.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	got, stats, j2 := replayAll(t, path)
	j2.Close()
	if stats.TornTail || len(got) != 3 {
		t.Fatalf("stats %+v records %q", stats, got)
	}
	for i, want := range []string{"final-a", "final-b", "post"} {
		if string(got[i]) != want {
			t.Fatalf("record %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestJournalRejectsEmptyAndOversized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ops.journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("empty payload must be rejected")
	}
	if err := j.Append(make([]byte, journalMaxPayload+1)); err == nil {
		t.Fatal("oversized payload must be rejected")
	}
}
