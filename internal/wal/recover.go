package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fbdetect/internal/obs"
	"fbdetect/internal/tsdb"
)

// RecoverStats summarizes what recovery found.
type RecoverStats struct {
	// SnapshotSeries is how many series the snapshot restored.
	SnapshotSeries int
	// ReplayedRecords and ReplayedPoints count WAL records applied on top
	// of the snapshot (points already covered by the snapshot still count
	// as replayed; tsdb.AppendBatch makes re-applying them a no-op).
	ReplayedRecords int
	ReplayedPoints  int
	// TornTail reports that the final segment ended in a partial or
	// corrupt record — the expected signature of a crash mid-write — and
	// was truncated back to its last intact record.
	TornTail bool
}

// Recover rebuilds a DB from dir's snapshot plus its WAL segments. The
// final segment may end in a torn record (a crash landed mid-write);
// everything after the last intact record in that segment is discarded
// and the file truncated so subsequent appends extend a clean log. A
// decode failure in any non-final segment is corruption, not a torn
// tail, and fails recovery.
//
// reg (may be nil) receives the replay counters. dbOpts tunes the
// rebuilt store (shard count).
func Recover(dir string, step time.Duration, dbOpts tsdb.Options, reg *obs.Registry) (*tsdb.DB, RecoverStats, error) {
	var stats RecoverStats
	var replayedRecords, replayedPoints, tornTails *obs.Counter
	if reg != nil {
		replayedRecords = reg.NewCounter(MetricReplayedRecords,
			"WAL records replayed during recovery.", nil)
		replayedPoints = reg.NewCounter(MetricReplayedPoints,
			"Points replayed from the WAL during recovery.", nil)
		tornTails = reg.NewCounter(MetricTornTails,
			"Recoveries that found (and truncated) a torn final record.", nil)
	}

	db := tsdb.NewWithOptions(step, dbOpts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("wal: creating dir: %w", err)
	}
	n, err := loadSnapshot(dir, db)
	if err != nil {
		return nil, stats, err
	}
	stats.SnapshotSeries = n

	segs, err := listSegments(dir)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: listing segments: %w", err)
	}
	for si, idx := range segs {
		final := si == len(segs)-1
		path := filepath.Join(dir, segmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, stats, fmt.Errorf("wal: reading segment %d: %w", idx, err)
		}
		off := 0
		for off < len(data) {
			pts, size, derr := decodeRecord(data[off:])
			if derr != nil {
				if !final {
					return nil, stats, fmt.Errorf("wal: segment %d corrupt at offset %d: %w", idx, off, derr)
				}
				// Torn tail: drop everything from the first bad record and
				// truncate the file so the log resumes from intact state.
				stats.TornTail = true
				tornTails.Inc()
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return nil, stats, fmt.Errorf("wal: truncating torn tail of segment %d: %w", idx, terr)
				}
				break
			}
			if _, aerr := db.AppendBatch(pts); aerr != nil {
				return nil, stats, fmt.Errorf("wal: replaying segment %d: %w", idx, aerr)
			}
			stats.ReplayedRecords++
			stats.ReplayedPoints += len(pts)
			replayedRecords.Inc()
			replayedPoints.Add(float64(len(pts)))
			off += size
		}
	}
	return db, stats, nil
}

// Store couples a recovered DB with its open WAL: the durable ingestion
// unit a worker serves. Append is WAL-first — a batch reaches the
// in-memory store (and the caller's acknowledgment) only after the log
// accepted it under its sync policy.
type Store struct {
	DB    *tsdb.DB
	Log   *Log
	Stats RecoverStats
}

// OpenStore recovers (or initializes) the store in dir and opens its WAL
// for appending. dbOpts tunes the rebuilt DB; reg (may be nil) receives
// both replay and append metrics.
func OpenStore(dir string, step time.Duration, opts Options, dbOpts tsdb.Options, reg *obs.Registry) (*Store, error) {
	db, stats, err := Recover(dir, step, dbOpts, reg)
	if err != nil {
		return nil, err
	}
	l, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	l.Instrument(reg)
	return &Store{DB: db, Log: l, Stats: stats}, nil
}

// AppendBatch logs pts durably (per the WAL's sync policy), then applies
// them to the in-memory store. It returns how many points the store
// actually appended — re-sent duplicates log again (the WAL is
// append-only) but apply as no-ops, which keeps recovery idempotent. The
// signature mirrors tsdb.DB.AppendBatch so ingestion endpoints can serve
// either a durable or a purely in-memory store.
func (s *Store) AppendBatch(pts []tsdb.Point) (int, error) {
	if err := s.Log.Append(pts); err != nil {
		return 0, err
	}
	return s.DB.AppendBatch(pts)
}

// Snapshot serializes the current DB and compacts replayed segments.
func (s *Store) Snapshot() error { return s.Log.Snapshot(s.DB) }

// Close flushes and closes the WAL. The DB stays readable.
func (s *Store) Close() error { return s.Log.Close() }
