package tsdb

import (
	"testing"
	"time"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func TestIDRoundTrip(t *testing.T) {
	id := ID("frontfaas", "feed_render", "gcpu")
	svc, ent, met := id.Parts()
	if svc != "frontfaas" || ent != "feed_render" || met != "gcpu" {
		t.Errorf("Parts = %q %q %q", svc, ent, met)
	}
	id2 := ID("tao", "", "throughput")
	svc, ent, met = id2.Parts()
	if svc != "tao" || ent != "" || met != "throughput" {
		t.Errorf("service-level Parts = %q %q %q", svc, ent, met)
	}
	svc, ent, met = MetricID("plain").Parts()
	if svc != "" || ent != "" || met != "plain" {
		t.Errorf("malformed Parts = %q %q %q", svc, ent, met)
	}
}

func TestAppendAndQuery(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 10; i++ {
		if err := db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := db.Query(id, t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Values[0] != 2 || s.Values[2] != 4 {
		t.Errorf("query = %v", s.Values)
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	if err := db.Append(id, t0.Add(5*time.Minute), 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(id, t0, 2); err == nil {
		t.Error("out-of-order append should fail")
	}
}

func TestAppendGapFilling(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	if err := db.Append(id, t0, 7); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(id, t0.Add(3*time.Minute), 9); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Full(id)
	want := []float64{7, 7, 7, 9}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := range want {
		if s.Values[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s.Values[i], want[i])
		}
	}
}

func TestQueryUnknown(t *testing.T) {
	db := New(time.Minute)
	if _, err := db.Query(ID("x", "y", "z"), t0, t0.Add(time.Hour)); err == nil {
		t.Error("unknown metric should error")
	}
	if _, err := db.Full(ID("x", "y", "z")); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestQueryReturnsCopy(t *testing.T) {
	db := New(time.Minute)
	id := ID("s", "e", "m")
	db.Append(id, t0, 1)
	db.Append(id, t0.Add(time.Minute), 2)
	s, _ := db.Full(id)
	s.Values[0] = 99
	s2, _ := db.Full(id)
	if s2.Values[0] != 1 {
		t.Error("Query leaked internal storage")
	}
}

func TestMetricsFilter(t *testing.T) {
	db := New(time.Minute)
	db.Append(ID("a", "x", "m"), t0, 1)
	db.Append(ID("b", "y", "m"), t0, 1)
	db.Append(ID("a", "z", "m"), t0, 1)
	all := db.Metrics("")
	if len(all) != 3 {
		t.Errorf("all metrics = %v", all)
	}
	onlyA := db.Metrics("a")
	if len(onlyA) != 2 {
		t.Errorf("service-a metrics = %v", onlyA)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Error("metrics not sorted")
		}
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestDrop(t *testing.T) {
	db := New(time.Minute)
	id := ID("a", "b", "c")
	db.Append(id, t0, 1)
	db.Drop(id)
	if db.Len() != 0 {
		t.Error("Drop failed")
	}
}

func TestPrune(t *testing.T) {
	db := New(time.Minute)
	id := ID("a", "b", "c")
	for i := 0; i < 10; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	db.Prune(t0.Add(4 * time.Minute))
	s, _ := db.Full(id)
	if s.Len() != 6 || s.Values[0] != 4 {
		t.Errorf("pruned series = %v", s.Values)
	}
	if !s.Start.Equal(t0.Add(4 * time.Minute)) {
		t.Errorf("pruned start = %v", s.Start)
	}
	// Appending after prune continues to work.
	if err := db.Append(id, t0.Add(10*time.Minute), 10); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	db := New(time.Minute)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			id := ID("svc", string(rune('a'+g)), "m")
			for i := 0; i < 100; i++ {
				db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if db.Len() != 8 {
		t.Errorf("Len = %d, want 8", db.Len())
	}
	for _, id := range db.Metrics("svc") {
		s, err := db.Full(id)
		if err != nil || s.Len() != 100 {
			t.Errorf("series %s: len=%d err=%v", id, s.Len(), err)
		}
	}
}

func TestIDWithSlashedEntity(t *testing.T) {
	id := ID("svc", "endpoint:/feed/home", "endpoint_cost")
	svc, ent, met := id.Parts()
	if svc != "svc" || ent != "endpoint:/feed/home" || met != "endpoint_cost" {
		t.Errorf("Parts = %q %q %q", svc, ent, met)
	}
}

func TestVersionCounter(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	if v := db.Version(id); v != 0 {
		t.Errorf("unknown metric version = %d", v)
	}
	db.Append(id, t0, 1)
	v1 := db.Version(id)
	db.Append(id, t0.Add(time.Minute), 2)
	v2 := db.Version(id)
	if v2 <= v1 {
		t.Errorf("version did not advance on append: %d -> %d", v1, v2)
	}
	db.Prune(t0.Add(time.Minute))
	if v3 := db.Version(id); v3 <= v2 {
		t.Errorf("version did not advance on prune: %d -> %d", v2, v3)
	}
}

func TestQueryViewMatchesQuery(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 20; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	from, to := t0.Add(3*time.Minute), t0.Add(11*time.Minute)
	copied, err := db.Query(id, from, to)
	if err != nil {
		t.Fatal(err)
	}
	view, ver, err := db.QueryView(id, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if ver == 0 {
		t.Error("view version = 0 for known metric")
	}
	if view.Len() != copied.Len() || !view.Start.Equal(copied.Start) {
		t.Fatalf("view len=%d start=%v, query len=%d start=%v",
			view.Len(), view.Start, copied.Len(), copied.Start)
	}
	for i := range copied.Values {
		if view.Values[i] != copied.Values[i] {
			t.Fatalf("view[%d] = %v, query = %v", i, view.Values[i], copied.Values[i])
		}
	}
	// In raw mode the view shares the store's backing array — that is the
	// point of RawChunks.
	raw := NewWithOptions(time.Minute, Options{ChunkSize: RawChunks})
	for i := 0; i < 20; i++ {
		raw.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	rview, _, err := raw.QueryView(id, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if &rview.Values[0] != &raw.shardFor(id).series[id].data.head[3] {
		t.Error("raw-mode QueryView copied instead of sharing the backing array")
	}
}

func TestQueryViewStableUnderAppendAndPrune(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 8; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	view, _, err := db.QueryView(id, t0, t0.Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// Appends (including ones forcing the backing array to grow) and a
	// prune must not disturb the snapshot.
	for i := 8; i < 4096; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	db.Prune(t0.Add(6 * time.Minute))
	for i := 0; i < 8; i++ {
		if view.Values[i] != float64(i) {
			t.Fatalf("view[%d] = %v after append+prune, want %v", i, view.Values[i], float64(i))
		}
	}
}

func TestNumMetricsAndIndexAfterDrop(t *testing.T) {
	db := New(time.Minute)
	db.Append(ID("a", "x", "m"), t0, 1)
	db.Append(ID("a", "y", "m"), t0, 1)
	db.Append(ID("b", "z", "m"), t0, 1)
	if n := db.NumMetrics("a"); n != 2 {
		t.Errorf("NumMetrics(a) = %d", n)
	}
	if n := db.NumMetrics(""); n != 3 {
		t.Errorf("NumMetrics() = %d", n)
	}
	db.Drop(ID("a", "x", "m"))
	if n := db.NumMetrics("a"); n != 1 {
		t.Errorf("NumMetrics(a) after drop = %d", n)
	}
	got := db.Metrics("a")
	if len(got) != 1 || got[0] != ID("a", "y", "m") {
		t.Errorf("Metrics(a) after drop = %v", got)
	}
	db.Drop(ID("b", "z", "m"))
	if n := db.NumMetrics("b"); n != 0 {
		t.Errorf("NumMetrics(b) after drop = %d", n)
	}
}

func TestConcurrentAppendAndView(t *testing.T) {
	// Appends grow series while views are read — the race detector proves
	// the zero-copy snapshot discipline holds.
	db := New(time.Minute)
	ids := make([]MetricID, 4)
	for g := range ids {
		ids[g] = ID("svc", string(rune('a'+g)), "m")
		db.Append(ids[g], t0, 0)
	}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(id MetricID) {
			for i := 1; i < 500; i++ {
				db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
			}
			done <- true
		}(ids[g])
		go func(id MetricID) {
			for i := 0; i < 200; i++ {
				view, _, err := db.QueryView(id, t0, t0.Add(500*time.Minute))
				if err != nil {
					t.Error(err)
					break
				}
				var sum float64
				for _, v := range view.Values {
					sum += v
				}
				_ = sum
			}
			done <- true
		}(ids[g])
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
