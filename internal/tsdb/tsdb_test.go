package tsdb

import (
	"testing"
	"time"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func TestIDRoundTrip(t *testing.T) {
	id := ID("frontfaas", "feed_render", "gcpu")
	svc, ent, met := id.Parts()
	if svc != "frontfaas" || ent != "feed_render" || met != "gcpu" {
		t.Errorf("Parts = %q %q %q", svc, ent, met)
	}
	id2 := ID("tao", "", "throughput")
	svc, ent, met = id2.Parts()
	if svc != "tao" || ent != "" || met != "throughput" {
		t.Errorf("service-level Parts = %q %q %q", svc, ent, met)
	}
	svc, ent, met = MetricID("plain").Parts()
	if svc != "" || ent != "" || met != "plain" {
		t.Errorf("malformed Parts = %q %q %q", svc, ent, met)
	}
}

func TestAppendAndQuery(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 10; i++ {
		if err := db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := db.Query(id, t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Values[0] != 2 || s.Values[2] != 4 {
		t.Errorf("query = %v", s.Values)
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	if err := db.Append(id, t0.Add(5*time.Minute), 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(id, t0, 2); err == nil {
		t.Error("out-of-order append should fail")
	}
}

func TestAppendGapFilling(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	if err := db.Append(id, t0, 7); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(id, t0.Add(3*time.Minute), 9); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Full(id)
	want := []float64{7, 7, 7, 9}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := range want {
		if s.Values[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s.Values[i], want[i])
		}
	}
}

func TestQueryUnknown(t *testing.T) {
	db := New(time.Minute)
	if _, err := db.Query(ID("x", "y", "z"), t0, t0.Add(time.Hour)); err == nil {
		t.Error("unknown metric should error")
	}
	if _, err := db.Full(ID("x", "y", "z")); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestQueryReturnsCopy(t *testing.T) {
	db := New(time.Minute)
	id := ID("s", "e", "m")
	db.Append(id, t0, 1)
	db.Append(id, t0.Add(time.Minute), 2)
	s, _ := db.Full(id)
	s.Values[0] = 99
	s2, _ := db.Full(id)
	if s2.Values[0] != 1 {
		t.Error("Query leaked internal storage")
	}
}

func TestMetricsFilter(t *testing.T) {
	db := New(time.Minute)
	db.Append(ID("a", "x", "m"), t0, 1)
	db.Append(ID("b", "y", "m"), t0, 1)
	db.Append(ID("a", "z", "m"), t0, 1)
	all := db.Metrics("")
	if len(all) != 3 {
		t.Errorf("all metrics = %v", all)
	}
	onlyA := db.Metrics("a")
	if len(onlyA) != 2 {
		t.Errorf("service-a metrics = %v", onlyA)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Error("metrics not sorted")
		}
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestDrop(t *testing.T) {
	db := New(time.Minute)
	id := ID("a", "b", "c")
	db.Append(id, t0, 1)
	db.Drop(id)
	if db.Len() != 0 {
		t.Error("Drop failed")
	}
}

func TestPrune(t *testing.T) {
	db := New(time.Minute)
	id := ID("a", "b", "c")
	for i := 0; i < 10; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	db.Prune(t0.Add(4 * time.Minute))
	s, _ := db.Full(id)
	if s.Len() != 6 || s.Values[0] != 4 {
		t.Errorf("pruned series = %v", s.Values)
	}
	if !s.Start.Equal(t0.Add(4 * time.Minute)) {
		t.Errorf("pruned start = %v", s.Start)
	}
	// Appending after prune continues to work.
	if err := db.Append(id, t0.Add(10*time.Minute), 10); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	db := New(time.Minute)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			id := ID("svc", string(rune('a'+g)), "m")
			for i := 0; i < 100; i++ {
				db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if db.Len() != 8 {
		t.Errorf("Len = %d, want 8", db.Len())
	}
	for _, id := range db.Metrics("svc") {
		s, err := db.Full(id)
		if err != nil || s.Len() != 100 {
			t.Errorf("series %s: len=%d err=%v", id, s.Len(), err)
		}
	}
}

func TestIDWithSlashedEntity(t *testing.T) {
	id := ID("svc", "endpoint:/feed/home", "endpoint_cost")
	svc, ent, met := id.Parts()
	if svc != "svc" || ent != "endpoint:/feed/home" || met != "endpoint_cost" {
		t.Errorf("Parts = %q %q %q", svc, ent, met)
	}
}
