package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fbdetect/internal/timeseries"
)

func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {2000, 1024},
	}
	for _, c := range cases {
		db := NewWithOptions(time.Minute, Options{Shards: c.in})
		if db.NumShards() != c.want {
			t.Errorf("Shards %d -> %d stripes, want %d", c.in, db.NumShards(), c.want)
		}
	}
	if n := New(time.Minute).NumShards(); n < 1 || n&(n-1) != 0 {
		t.Errorf("default shard count %d is not a positive power of two", n)
	}
}

// TestAppendBatchMatchesAppend: batched ingestion must produce exactly the
// store per-point Append produces — same series, same values, same gap
// filling — at any shard count.
func TestAppendBatchMatchesAppend(t *testing.T) {
	pts := make([]Point, 0, 300)
	for m := 0; m < 10; m++ {
		id := ID("svc", fmt.Sprintf("sub%d", m), "gcpu")
		for i := 0; i < 30; i++ {
			step := i
			if m%3 == 0 {
				step = i * 3 // gaps exercise the fill path
			}
			pts = append(pts, Point{id, t0.Add(time.Duration(step) * time.Minute), float64(m*100 + i)})
		}
	}
	for _, shards := range []int{1, 4, 16} {
		serial := NewWithOptions(time.Minute, Options{Shards: shards})
		for _, p := range pts {
			if err := serial.Append(p.ID, p.T, p.V); err != nil {
				t.Fatal(err)
			}
		}
		batched := NewWithOptions(time.Minute, Options{Shards: shards})
		n, err := batched.AppendBatch(pts)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(pts) {
			t.Fatalf("shards=%d: appended %d of %d", shards, n, len(pts))
		}
		assertSameContent(t, serial, batched)
	}
}

// TestAppendBatchIdempotent: re-sending an already-ingested batch (the
// crash-recovery re-send path, and WAL replay over a snapshot) must be a
// no-op.
func TestAppendBatchIdempotent(t *testing.T) {
	pts := []Point{
		{ID("svc", "a", "gcpu"), t0, 1},
		{ID("svc", "a", "gcpu"), t0.Add(time.Minute), 2},
		{ID("svc", "b", "gcpu"), t0, 3},
	}
	db := New(time.Minute)
	if n, _ := db.AppendBatch(pts); n != 3 {
		t.Fatalf("first apply appended %d", n)
	}
	ver := db.Version(ID("svc", "a", "gcpu"))
	if n, _ := db.AppendBatch(pts); n != 0 {
		t.Fatalf("re-apply appended %d, want 0", n)
	}
	if got := db.Version(ID("svc", "a", "gcpu")); got != ver {
		t.Errorf("re-apply bumped version %d -> %d", ver, got)
	}
	// A batch mixing stale and fresh points applies only the fresh ones.
	mixed := append(pts, Point{ID("svc", "a", "gcpu"), t0.Add(2 * time.Minute), 4})
	if n, _ := db.AppendBatch(mixed); n != 1 {
		t.Fatalf("mixed apply appended %d, want 1", n)
	}
	s, err := db.Full(ID("svc", "a", "gcpu"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Values[2] != 4 {
		t.Errorf("series after mixed apply = %v", s.Values)
	}
}

func TestRestoreInstallsSeries(t *testing.T) {
	db := New(time.Minute)
	s := timeseries.New(t0, time.Minute, []float64{1, 2, 3})
	id := ID("svc", "sub", "gcpu")
	db.Restore(id, s)
	got, err := db.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Values[2] != 3 {
		t.Errorf("restored series = %v", got.Values)
	}
	if v := db.Version(id); v != 1 {
		t.Errorf("restored version = %d, want 1", v)
	}
	if ms := db.Metrics("svc"); len(ms) != 1 || ms[0] != id {
		t.Errorf("Metrics after restore = %v", ms)
	}
	// Appending continues from the restored end.
	if err := db.Append(id, t0.Add(3*time.Minute), 4); err != nil {
		t.Fatal(err)
	}
	if db.Version(id) != 2 {
		t.Errorf("version after append = %d", db.Version(id))
	}
}

// TestConcurrentAppendAcrossShards hammers appends from many goroutines
// over many metrics while readers list and query — the lock-striping
// correctness test (run under -race via the Makefile race target).
func TestConcurrentAppendAcrossShards(t *testing.T) {
	db := NewWithOptions(time.Minute, Options{Shards: 8})
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := ID("svc", fmt.Sprintf("sub%d_%d", w, i%16), "gcpu")
				if err := db.Append(id, t0.Add(time.Duration(i/16)*time.Minute), float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			db.Metrics("svc")
			db.NumMetrics("svc")
		}
	}()
	wg.Wait()
	<-done
	if got, want := db.Len(), workers*16; got != want {
		t.Errorf("series count = %d, want %d", got, want)
	}
	if got := db.NumMetrics("svc"); got != db.Len() {
		t.Errorf("NumMetrics(svc) = %d, Len = %d", got, db.Len())
	}
}

// assertSameContent fails unless both stores hold identical series.
func assertSameContent(t *testing.T, a, b *DB) {
	t.Helper()
	am, bm := a.Metrics(""), b.Metrics("")
	if len(am) != len(bm) {
		t.Fatalf("metric counts differ: %d vs %d", len(am), len(bm))
	}
	for i, id := range am {
		if bm[i] != id {
			t.Fatalf("metric[%d] = %s vs %s", i, id, bm[i])
		}
		as, err := a.Full(id)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := b.Full(id)
		if err != nil {
			t.Fatal(err)
		}
		if !as.Start.Equal(bs.Start) || as.Len() != bs.Len() {
			t.Fatalf("%s: shape differs: %v vs %v", id, as, bs)
		}
		for j := range as.Values {
			if as.Values[j] != bs.Values[j] {
				t.Fatalf("%s[%d] = %v vs %v", id, j, as.Values[j], bs.Values[j])
			}
		}
	}
}
