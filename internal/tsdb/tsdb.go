// Package tsdb is the in-memory time-series store FBDetect scans. It
// substitutes for Meta's production monitoring store: the pipeline only
// needs windowed range queries over named metrics, which this package
// provides with concurrent-safe ingestion.
//
// Metric identity follows the paper's "metric ID" convention: a metric ID
// concatenates the entity (service, subroutine, or endpoint) and the metric
// name, e.g. "frontfaas/feed_render/gcpu" (paper §5.5.1).
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/timeseries"
)

// MetricID identifies one time series.
type MetricID string

// ID builds a MetricID from service, entity (subroutine/endpoint, may be
// empty for service-level metrics), and metric name.
func ID(service, entity, metric string) MetricID {
	if entity == "" {
		return MetricID(service + "//" + metric)
	}
	return MetricID(service + "/" + entity + "/" + metric)
}

// Parts splits a MetricID into service, entity, and metric name: the
// service is everything before the first '/', the metric everything after
// the last '/', and the entity the middle — so entities may themselves
// contain slashes (endpoint names like "endpoint:/feed/home"). Malformed
// IDs return the whole ID as the metric with empty service and entity.
func (id MetricID) Parts() (service, entity, metric string) {
	s := string(id)
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return "", "", s
	}
	rest := s[i+1:]
	j := strings.LastIndexByte(rest, '/')
	if j < 0 {
		return s[:i], "", rest
	}
	return s[:i], rest[:j], rest[j+1:]
}

// DB is an in-memory time-series database. The zero value is not usable;
// construct with New.
type DB struct {
	step time.Duration

	mu     sync.RWMutex
	series map[MetricID]*timeseries.Series
}

// New returns a DB whose series all share the given step (one point per
// step).
func New(step time.Duration) *DB {
	return &DB{step: step, series: map[MetricID]*timeseries.Series{}}
}

// Step returns the database's sample step.
func (db *DB) Step() time.Duration { return db.step }

// Append adds one point to the metric's series at time t. Points must be
// appended in order; a point earlier than the series end is rejected. Gaps
// are filled by repeating the last value so windows stay regularly spaced
// (production systems interpolate similarly for scan alignment).
func (db *DB) Append(id MetricID, t time.Time, v float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[id]
	if !ok {
		s = timeseries.New(t.Truncate(db.step), db.step, nil)
		db.series[id] = s
	}
	// Compute the raw slot without IndexOf's clamping so gaps are visible.
	slot := int(t.Sub(s.Start) / db.step)
	switch {
	case slot < s.Len():
		return fmt.Errorf("tsdb: out-of-order append to %s at %s", id, t)
	case slot == s.Len():
		s.Append(v)
	default:
		last := v
		if s.Len() > 0 {
			last = s.Values[s.Len()-1]
		}
		for s.Len() < slot {
			s.Append(last)
		}
		s.Append(v)
	}
	return nil
}

// Query returns a copy of the metric's series restricted to [from, to), or
// an error if the metric is unknown.
func (db *DB) Query(id MetricID, from, to time.Time) (*timeseries.Series, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return s.Slice(from, to).Clone(), nil
}

// Full returns a copy of the metric's complete series.
func (db *DB) Full(id MetricID) (*timeseries.Series, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return s.Clone(), nil
}

// Metrics returns all metric IDs, sorted, optionally filtered to one
// service ("" matches all).
func (db *DB) Metrics(service string) []MetricID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]MetricID, 0, len(db.series))
	for id := range db.series {
		if service != "" {
			svc, _, _ := id.Parts()
			if svc != service {
				continue
			}
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of stored series.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series)
}

// Drop removes a metric's series.
func (db *DB) Drop(id MetricID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.series, id)
}

// Prune discards points older than the retention horizon for every series,
// bounding memory for long simulations.
func (db *DB) Prune(before time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for id, s := range db.series {
		if !s.Start.Before(before) {
			continue
		}
		trimmed := s.Slice(before, s.End()).Clone()
		db.series[id] = trimmed
	}
}
