// Package tsdb is the in-memory time-series store FBDetect scans. It
// substitutes for Meta's production monitoring store: the pipeline only
// needs windowed range queries over named metrics, which this package
// provides with concurrent-safe ingestion.
//
// Metric identity follows the paper's "metric ID" convention: a metric ID
// concatenates the entity (service, subroutine, or endpoint) and the metric
// name, e.g. "frontfaas/feed_render/gcpu" (paper §5.5.1).
//
// The store is optimized for the pipeline's hot path: every series carries
// a monotonic version counter (bumped on each mutation) so callers can
// cache derived results keyed by (metric, version), a per-service index
// makes Metrics(service) proportional to that service's metric count, and
// QueryView serves windows zero-copy.
//
// Writes scale with cores: the store is lock-striped into shards keyed by
// a hash of the MetricID (default GOMAXPROCS shards, see Options), so
// concurrent Appends to different series rarely contend on one lock — the
// paper's fleet ingests hundreds of thousands of live series, and a single
// store-wide mutex would serialize every one of them. AppendBatch groups a
// batch by shard and takes each stripe lock once.
package tsdb

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/timeseries"
)

// MetricID identifies one time series.
type MetricID string

// ID builds a MetricID from service, entity (subroutine/endpoint, may be
// empty for service-level metrics), and metric name.
func ID(service, entity, metric string) MetricID {
	if entity == "" {
		return MetricID(service + "//" + metric)
	}
	return MetricID(service + "/" + entity + "/" + metric)
}

// Parts splits a MetricID into service, entity, and metric name: the
// service is everything before the first '/', the metric everything after
// the last '/', and the entity the middle — so entities may themselves
// contain slashes (endpoint names like "endpoint:/feed/home"). Malformed
// IDs return the whole ID as the metric with empty service and entity.
func (id MetricID) Parts() (service, entity, metric string) {
	s := string(id)
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return "", "", s
	}
	rest := s[i+1:]
	j := strings.LastIndexByte(rest, '/')
	if j < 0 {
		return s[:i], "", rest
	}
	return s[:i], rest[:j], rest[j+1:]
}

// service returns the ID's service component without splitting the rest.
func (id MetricID) service() string {
	s := string(id)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return ""
}

// hash is FNV-1a over the ID's bytes, inlined so shard routing never
// allocates.
func (id MetricID) hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h
}

// Point is one observation of one metric — the unit of batched ingestion
// (AppendBatch, the WAL record payload, and the /ingest wire format all
// carry Points).
type Point struct {
	ID MetricID
	T  time.Time
	V  float64
}

// entry pairs a stored series with its monotonic version, bumped on every
// mutation (append, prune). A (metric, version) pair therefore pins the
// exact series content, which is what makes version-keyed caches of
// derived results (STL decompositions, smoothed trends) sound.
type entry struct {
	series  *timeseries.Series
	version uint64
}

// shard is one lock stripe: a private map of series plus the per-service
// index restricted to the IDs that hash here.
type shard struct {
	mu     sync.RWMutex
	series map[MetricID]*entry
	// byService indexes metric IDs per service, kept sorted. Maintained at
	// Append time so Metrics(service) never walks or re-parses the whole
	// store — with ~800k live series per the paper, the per-scan listing
	// must be O(the service's metrics), not O(all metrics).
	byService map[string][]MetricID
}

// Options tunes a DB. The zero value takes defaults.
type Options struct {
	// Shards is the number of lock stripes, rounded up to a power of two
	// (default GOMAXPROCS; 1 degrades to the old single-lock store, which
	// the shard-contention benchmark uses as its baseline).
	Shards int
}

// DB is an in-memory time-series database. The zero value is not usable;
// construct with New or NewWithOptions.
type DB struct {
	step   time.Duration
	shards []*shard
	mask   uint32
}

// New returns a DB whose series all share the given step (one point per
// step), with the default shard count.
func New(step time.Duration) *DB {
	return NewWithOptions(step, Options{})
}

// NewWithOptions returns a DB with explicit tuning.
func NewWithOptions(step time.Duration, opts Options) *DB {
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > 1024 {
		n = 1024
	}
	// Round up to a power of two so routing is a mask, not a modulo.
	n = 1 << bits.Len(uint(n-1))
	if n < 1 {
		n = 1
	}
	db := &DB{step: step, shards: make([]*shard, n), mask: uint32(n - 1)}
	for i := range db.shards {
		db.shards[i] = &shard{
			series:    map[MetricID]*entry{},
			byService: map[string][]MetricID{},
		}
	}
	return db
}

// Step returns the database's sample step.
func (db *DB) Step() time.Duration { return db.step }

// NumShards returns the number of lock stripes.
func (db *DB) NumShards() int { return len(db.shards) }

// shardFor routes an ID to its stripe.
func (db *DB) shardFor(id MetricID) *shard {
	return db.shards[id.hash()&db.mask]
}

// indexAdd inserts id into its service's sorted index. Caller holds sh.mu.
func (sh *shard) indexAdd(id MetricID) {
	svc := id.service()
	ids := sh.byService[svc]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	sh.byService[svc] = ids
}

// indexRemove deletes id from its service's index. Caller holds sh.mu.
func (sh *shard) indexRemove(id MetricID) {
	svc := id.service()
	ids := sh.byService[svc]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i >= len(ids) || ids[i] != id {
		return
	}
	ids = append(ids[:i], ids[i+1:]...)
	if len(ids) == 0 {
		delete(sh.byService, svc)
	} else {
		sh.byService[svc] = ids
	}
}

// appendLocked adds one point to the shard, creating the series on first
// sight and gap-filling as Append documents. stale points (at or before
// the series end) are either rejected or skipped per lenient. Caller
// holds sh.mu. Reports whether the point was appended.
func (sh *shard) appendLocked(step time.Duration, id MetricID, t time.Time, v float64, lenient bool) (bool, error) {
	e, ok := sh.series[id]
	if !ok {
		e = &entry{series: timeseries.New(t.Truncate(step), step, nil)}
		sh.series[id] = e
		sh.indexAdd(id)
	}
	s := e.series
	// Compute the raw slot without IndexOf's clamping so gaps are visible.
	slot := int(t.Sub(s.Start) / step)
	switch {
	case slot < s.Len():
		if lenient {
			return false, nil
		}
		return false, fmt.Errorf("tsdb: out-of-order append to %s at %s", id, t)
	case slot == s.Len():
		s.Append(v)
	default:
		last := v
		if s.Len() > 0 {
			last = s.Values[s.Len()-1]
		}
		s.AppendRepeat(last, slot-s.Len())
		s.Append(v)
	}
	e.version++
	return true, nil
}

// Append adds one point to the metric's series at time t. Points must be
// appended in order; a point earlier than the series end is rejected. Gaps
// are filled by repeating the last value so windows stay regularly spaced
// (production systems interpolate similarly for scan alignment); the fill
// extends the series in one bulk allocation, so a long-gapped series does
// not pay O(gap) appends.
func (db *DB) Append(id MetricID, t time.Time, v float64) error {
	sh := db.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, err := sh.appendLocked(db.step, id, t, v, false)
	return err
}

// AppendBatch adds many points, grouping them by shard so each stripe
// lock is taken once per batch instead of once per point. Within a
// metric, points apply in their order in pts.
//
// Unlike Append, AppendBatch is idempotent: a point at or before its
// series' current end is skipped silently rather than rejected. That is
// the contract durable ingestion needs — WAL replay re-applies records
// that may already be captured in a snapshot, and an ingest client whose
// acknowledgment was lost in a crash re-sends batches the store already
// holds; both must converge on the same content as an uninterrupted run.
// The returned count is the number of points actually appended; the
// remainder were stale duplicates.
func (db *DB) AppendBatch(pts []Point) (int, error) {
	if len(pts) == 0 {
		return 0, nil
	}
	appended := 0
	if len(db.shards) == 1 {
		sh := db.shards[0]
		sh.mu.Lock()
		for _, p := range pts {
			ok, _ := sh.appendLocked(db.step, p.ID, p.T, p.V, true)
			if ok {
				appended++
			}
		}
		sh.mu.Unlock()
		return appended, nil
	}
	// Bucket point indices per shard, preserving batch order within each.
	buckets := make([][]int, len(db.shards))
	for i, p := range pts {
		s := p.ID.hash() & db.mask
		buckets[s] = append(buckets[s], i)
	}
	for si, idx := range buckets {
		if len(idx) == 0 {
			continue
		}
		sh := db.shards[si]
		sh.mu.Lock()
		for _, i := range idx {
			p := pts[i]
			ok, _ := sh.appendLocked(db.step, p.ID, p.T, p.V, true)
			if ok {
				appended++
			}
		}
		sh.mu.Unlock()
	}
	return appended, nil
}

// Restore installs a series wholesale under the given ID, replacing any
// existing series — the bulk-load path snapshot recovery uses instead of
// replaying one Append per point. The restored series starts at version 1
// (a fresh process has no caches to invalidate).
func (db *DB) Restore(id MetricID, s *timeseries.Series) {
	sh := db.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.series[id]; !ok {
		sh.indexAdd(id)
	}
	sh.series[id] = &entry{series: s, version: 1}
}

// Query returns a copy of the metric's series restricted to [from, to), or
// an error if the metric is unknown.
func (db *DB) Query(id MetricID, from, to time.Time) (*timeseries.Series, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return e.series.Slice(from, to).Clone(), nil
}

// QueryView returns the metric's series restricted to [from, to) as a
// zero-copy view sharing the store's backing array, plus the series
// version at snapshot time. The view is a stable snapshot: concurrent
// Appends only write past the view's end (or into a freshly grown array),
// and Prune replaces the backing array rather than truncating it in
// place. Callers must treat the view's Values as read-only; use Query for
// a mutable copy.
func (db *DB) QueryView(id MetricID, from, to time.Time) (*timeseries.Series, uint64, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.series[id]
	if !ok {
		return nil, 0, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return e.series.Slice(from, to), e.version, nil
}

// Version returns the metric's current version counter (0 for unknown
// metrics). The version increases on every mutation of the series, so an
// unchanged version guarantees unchanged content.
func (db *DB) Version(id MetricID) uint64 {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.series[id]; ok {
		return e.version
	}
	return 0
}

// Full returns a copy of the metric's complete series.
func (db *DB) Full(id MetricID) (*timeseries.Series, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return e.series.Clone(), nil
}

// Metrics returns all metric IDs, sorted, optionally filtered to one
// service ("" matches all). The per-service listing reads the maintained
// per-shard indexes — no store walk, no ID parsing — then merges the (at
// most NumShards) sorted runs.
func (db *DB) Metrics(service string) []MetricID {
	var out []MetricID
	if service != "" {
		for _, sh := range db.shards {
			sh.mu.RLock()
			out = append(out, sh.byService[service]...)
			sh.mu.RUnlock()
		}
	} else {
		for _, sh := range db.shards {
			sh.mu.RLock()
			for id := range sh.series {
				out = append(out, id)
			}
			sh.mu.RUnlock()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumMetrics returns how many series the service has without copying the
// index ("" counts the whole store).
func (db *DB) NumMetrics(service string) int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		if service == "" {
			n += len(sh.series)
		} else {
			n += len(sh.byService[service])
		}
		sh.mu.RUnlock()
	}
	return n
}

// Len returns the number of stored series.
func (db *DB) Len() int {
	return db.NumMetrics("")
}

// Drop removes a metric's series.
func (db *DB) Drop(id MetricID) {
	sh := db.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.series[id]; !ok {
		return
	}
	delete(sh.series, id)
	sh.indexRemove(id)
}

// Prune discards points older than the retention horizon for every series,
// bounding memory for long simulations. Pruned series get fresh backing
// arrays (never truncated in place), so outstanding QueryView snapshots
// stay valid; their versions advance so caches keyed on (metric, version)
// invalidate.
func (db *DB) Prune(before time.Time) {
	for _, sh := range db.shards {
		sh.mu.Lock()
		for _, e := range sh.series {
			s := e.series
			if !s.Start.Before(before) {
				continue
			}
			e.series = s.Slice(before, s.End()).Clone()
			e.version++
		}
		sh.mu.Unlock()
	}
}
