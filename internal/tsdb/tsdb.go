// Package tsdb is the in-memory time-series store FBDetect scans. It
// substitutes for Meta's production monitoring store: the pipeline only
// needs windowed range queries over named metrics, which this package
// provides with concurrent-safe ingestion.
//
// Metric identity follows the paper's "metric ID" convention: a metric ID
// concatenates the entity (service, subroutine, or endpoint) and the metric
// name, e.g. "frontfaas/feed_render/gcpu" (paper §5.5.1).
//
// The store is optimized for the pipeline's hot path: every series carries
// a monotonic version counter (bumped on each mutation) and an epoch (a
// content-stability token that survives appends) so callers can cache
// derived results keyed by (metric, version) or (metric, epoch, window),
// a per-service index makes Metrics(service) proportional to that
// service's metric count, and QueryViewStamped serves windows into
// caller-reused scratch buffers.
//
// Values are stored compressed: each series is a run of sealed fixed-size
// chunks (Gorilla-style XOR or scaled-integer encoding, see
// timeseries.EncodeChunk) plus one mutable raw head chunk that appends
// write into. Sealed chunks decode lazily at query time. Options.ChunkSize
// = RawChunks opts a store out of compression, keeping raw arrays and
// zero-copy views.
//
// Writes scale with cores: the store is lock-striped into shards keyed by
// a hash of the MetricID (default GOMAXPROCS shards, see Options), so
// concurrent Appends to different series rarely contend on one lock — the
// paper's fleet ingests hundreds of thousands of live series, and a single
// store-wide mutex would serialize every one of them. AppendBatch groups a
// batch by shard and takes each stripe lock once.
package tsdb

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/timeseries"
)

// MetricID identifies one time series.
type MetricID string

// ID builds a MetricID from service, entity (subroutine/endpoint, may be
// empty for service-level metrics), and metric name.
func ID(service, entity, metric string) MetricID {
	if entity == "" {
		return MetricID(service + "//" + metric)
	}
	return MetricID(service + "/" + entity + "/" + metric)
}

// Parts splits a MetricID into service, entity, and metric name: the
// service is everything before the first '/', the metric everything after
// the last '/', and the entity the middle — so entities may themselves
// contain slashes (endpoint names like "endpoint:/feed/home"). Malformed
// IDs return the whole ID as the metric with empty service and entity.
func (id MetricID) Parts() (service, entity, metric string) {
	s := string(id)
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return "", "", s
	}
	rest := s[i+1:]
	j := strings.LastIndexByte(rest, '/')
	if j < 0 {
		return s[:i], "", rest
	}
	return s[:i], rest[:j], rest[j+1:]
}

// service returns the ID's service component without splitting the rest.
func (id MetricID) service() string {
	s := string(id)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return ""
}

// hash is FNV-1a over the ID's bytes, inlined so shard routing never
// allocates.
func (id MetricID) hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h
}

// Point is one observation of one metric — the unit of batched ingestion
// (AppendBatch, the WAL record payload, and the /ingest wire format all
// carry Points).
type Point struct {
	ID MetricID
	T  time.Time
	V  float64
}

// entry pairs a stored series with two identity counters. version is the
// monotonic mutation counter, bumped on every mutation (append, prune) —
// a (metric, version) pair pins the exact series content, which is what
// makes version-keyed caches of derived results (STL decompositions,
// smoothed trends) sound. epoch is the coarser content-stability token
// ViewStamp documents: fresh on creation, Restore, and Prune, unchanged
// by appends.
type entry struct {
	data    *cseries
	version uint64
	epoch   uint64
}

// shard is one lock stripe: a private map of series plus the per-service
// index restricted to the IDs that hash here.
type shard struct {
	mu     sync.RWMutex
	series map[MetricID]*entry
	// byService indexes metric IDs per service, kept sorted. Maintained at
	// Append time so Metrics(service) never walks or re-parses the whole
	// store — with ~800k live series per the paper, the per-scan listing
	// must be O(the service's metrics), not O(all metrics).
	byService map[string][]MetricID
}

// Options tunes a DB. The zero value takes defaults.
type Options struct {
	// Shards is the number of lock stripes, rounded up to a power of two
	// (default GOMAXPROCS; 1 degrades to the old single-lock store, which
	// the shard-contention benchmark uses as its baseline).
	Shards int
	// ChunkSize is the number of points per sealed compressed chunk
	// (default DefaultChunkSize, clamped to timeseries.MaxChunkPoints).
	// Pass RawChunks to disable compression and store raw float64 arrays
	// with zero-copy views.
	ChunkSize int
}

// DB is an in-memory time-series database. The zero value is not usable;
// construct with New or NewWithOptions.
type DB struct {
	step      time.Duration
	shards    []*shard
	mask      uint32
	chunkSize int // points per sealed chunk; <= 0 means raw storage
}

// New returns a DB whose series all share the given step (one point per
// step), with the default shard count.
func New(step time.Duration) *DB {
	return NewWithOptions(step, Options{})
}

// NewWithOptions returns a DB with explicit tuning.
func NewWithOptions(step time.Duration, opts Options) *DB {
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > 1024 {
		n = 1024
	}
	// Round up to a power of two so routing is a mask, not a modulo.
	n = 1 << bits.Len(uint(n-1))
	if n < 1 {
		n = 1
	}
	cs := opts.ChunkSize
	switch {
	case cs == 0:
		cs = DefaultChunkSize
	case cs < 0:
		cs = 0 // raw mode
	case cs > timeseries.MaxChunkPoints:
		cs = timeseries.MaxChunkPoints
	}
	db := &DB{step: step, shards: make([]*shard, n), mask: uint32(n - 1), chunkSize: cs}
	for i := range db.shards {
		db.shards[i] = &shard{
			series:    map[MetricID]*entry{},
			byService: map[string][]MetricID{},
		}
	}
	return db
}

// Step returns the database's sample step.
func (db *DB) Step() time.Duration { return db.step }

// NumShards returns the number of lock stripes.
func (db *DB) NumShards() int { return len(db.shards) }

// shardFor routes an ID to its stripe.
func (db *DB) shardFor(id MetricID) *shard {
	return db.shards[id.hash()&db.mask]
}

// indexAdd inserts id into its service's sorted index. Caller holds sh.mu.
func (sh *shard) indexAdd(id MetricID) {
	svc := id.service()
	ids := sh.byService[svc]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	sh.byService[svc] = ids
}

// indexRemove deletes id from its service's index. Caller holds sh.mu.
func (sh *shard) indexRemove(id MetricID) {
	svc := id.service()
	ids := sh.byService[svc]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i >= len(ids) || ids[i] != id {
		return
	}
	ids = append(ids[:i], ids[i+1:]...)
	if len(ids) == 0 {
		delete(sh.byService, svc)
	} else {
		sh.byService[svc] = ids
	}
}

// appendLocked adds one point to the shard, creating the series on first
// sight and gap-filling as Append documents. stale points (at or before
// the series end) are either rejected or skipped per lenient. Caller
// holds sh.mu. Reports whether the point was appended.
func (sh *shard) appendLocked(step time.Duration, chunkSize int, id MetricID, t time.Time, v float64, lenient bool) (bool, error) {
	e, ok := sh.series[id]
	if !ok {
		e = &entry{data: newCSeries(t.Truncate(step), step, chunkSize), epoch: nextEpoch()}
		sh.series[id] = e
		sh.indexAdd(id)
	}
	c := e.data
	// Compute the raw slot without indexOf's clamping so gaps are visible.
	slot := int(t.Sub(c.start) / step)
	switch {
	case slot < c.len():
		if lenient {
			return false, nil
		}
		return false, fmt.Errorf("tsdb: out-of-order append to %s at %s", id, t)
	case slot == c.len():
		c.append(v)
	default:
		last := v
		if c.len() > 0 {
			last = c.last
		}
		c.appendRepeat(last, slot-c.len())
		c.append(v)
	}
	e.version++
	return true, nil
}

// Append adds one point to the metric's series at time t. Points must be
// appended in order; a point earlier than the series end is rejected. Gaps
// are filled by repeating the last value so windows stay regularly spaced
// (production systems interpolate similarly for scan alignment); the fill
// extends the series in one bulk allocation, so a long-gapped series does
// not pay O(gap) appends.
func (db *DB) Append(id MetricID, t time.Time, v float64) error {
	sh := db.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, err := sh.appendLocked(db.step, db.chunkSize, id, t, v, false)
	return err
}

// AppendBatch adds many points, grouping them by shard so each stripe
// lock is taken once per batch instead of once per point. Within a
// metric, points apply in their order in pts.
//
// Unlike Append, AppendBatch is idempotent: a point at or before its
// series' current end is skipped silently rather than rejected. That is
// the contract durable ingestion needs — WAL replay re-applies records
// that may already be captured in a snapshot, and an ingest client whose
// acknowledgment was lost in a crash re-sends batches the store already
// holds; both must converge on the same content as an uninterrupted run.
// The returned count is the number of points actually appended; the
// remainder were stale duplicates.
func (db *DB) AppendBatch(pts []Point) (int, error) {
	if len(pts) == 0 {
		return 0, nil
	}
	appended := 0
	if len(db.shards) == 1 {
		sh := db.shards[0]
		sh.mu.Lock()
		for _, p := range pts {
			ok, _ := sh.appendLocked(db.step, db.chunkSize, p.ID, p.T, p.V, true)
			if ok {
				appended++
			}
		}
		sh.mu.Unlock()
		return appended, nil
	}
	// Bucket point indices per shard, preserving batch order within each.
	// The bucket slices come from a pool: steady-state ingestion appends
	// batches continuously, and reallocating per call cost ~13KB/op.
	bs := bucketPool.Get().(*bucketScratch)
	if len(bs.buckets) < len(db.shards) {
		bs.buckets = make([][]int, len(db.shards))
	}
	buckets := bs.buckets[:len(db.shards)]
	for i, p := range pts {
		s := p.ID.hash() & db.mask
		buckets[s] = append(buckets[s], i)
	}
	for si, idx := range buckets {
		if len(idx) == 0 {
			continue
		}
		sh := db.shards[si]
		sh.mu.Lock()
		for _, i := range idx {
			p := pts[i]
			ok, _ := sh.appendLocked(db.step, db.chunkSize, p.ID, p.T, p.V, true)
			if ok {
				appended++
			}
		}
		sh.mu.Unlock()
	}
	for si := range buckets {
		buckets[si] = buckets[si][:0]
	}
	bucketPool.Put(bs)
	return appended, nil
}

// bucketScratch holds AppendBatch's per-shard index buckets between
// calls; the inner slices keep their capacity, so a steady stream of
// similar batches allocates nothing.
type bucketScratch struct {
	buckets [][]int
}

var bucketPool = sync.Pool{New: func() any { return &bucketScratch{} }}

// Restore installs a series wholesale under the given ID, replacing any
// existing series — the bulk-load path snapshot recovery uses instead of
// replaying one Append per point. The restored series starts at version 1
// (a fresh process has no caches to invalidate).
func (db *DB) Restore(id MetricID, s *timeseries.Series) {
	sh := db.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.series[id]; !ok {
		sh.indexAdd(id)
	}
	c := newCSeries(s.Start, s.Step, db.chunkSize)
	c.bulkAppend(s.Values)
	sh.series[id] = &entry{data: c, version: 1, epoch: nextEpoch()}
}

// Query returns a copy of the metric's series restricted to [from, to), or
// an error if the metric is unknown.
func (db *DB) Query(id MetricID, from, to time.Time) (*timeseries.Series, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	c := e.data
	i, j := c.indexOf(from), c.indexOf(to)
	if j < i {
		j = i
	}
	var tmp []float64
	vals, err := c.valuesInto(make([]float64, 0, j-i), i, j, &tmp)
	if err != nil {
		return nil, err
	}
	return timeseries.New(c.timeAt(i), c.step, vals), nil
}

// QueryView returns the metric's series restricted to [from, to) plus the
// series version at snapshot time. In raw mode (Options.ChunkSize ==
// RawChunks) the view is zero-copy, sharing the store's backing array;
// the view is a stable snapshot because concurrent Appends only write
// past its end (or into a freshly grown array) and Prune replaces the
// backing array rather than truncating it in place. Callers must treat
// the view's Values as read-only. In chunked mode (the default) the
// window decodes into a fresh allocation; hot paths should prefer
// QueryViewStamped with a reused Scratch.
func (db *DB) QueryView(id MetricID, from, to time.Time) (*timeseries.Series, uint64, error) {
	s, st, err := db.QueryViewStamped(id, from, to, nil)
	return s, st.Version, err
}

// Version returns the metric's current version counter (0 for unknown
// metrics). The version increases on every mutation of the series, so an
// unchanged version guarantees unchanged content.
func (db *DB) Version(id MetricID) uint64 {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.series[id]; ok {
		return e.version
	}
	return 0
}

// Full returns a copy of the metric's complete series.
func (db *DB) Full(id MetricID) (*timeseries.Series, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	c := e.data
	var tmp []float64
	vals, err := c.valuesInto(make([]float64, 0, c.len()), 0, c.len(), &tmp)
	if err != nil {
		return nil, err
	}
	return timeseries.New(c.start, c.step, vals), nil
}

// Metrics returns all metric IDs, sorted, optionally filtered to one
// service ("" matches all). The per-service listing reads the maintained
// per-shard indexes — no store walk, no ID parsing — then merges the (at
// most NumShards) sorted runs.
func (db *DB) Metrics(service string) []MetricID {
	var out []MetricID
	if service != "" {
		for _, sh := range db.shards {
			sh.mu.RLock()
			out = append(out, sh.byService[service]...)
			sh.mu.RUnlock()
		}
	} else {
		for _, sh := range db.shards {
			sh.mu.RLock()
			for id := range sh.series {
				out = append(out, id)
			}
			sh.mu.RUnlock()
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumMetrics returns how many series the service has without copying the
// index ("" counts the whole store).
func (db *DB) NumMetrics(service string) int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		if service == "" {
			n += len(sh.series)
		} else {
			n += len(sh.byService[service])
		}
		sh.mu.RUnlock()
	}
	return n
}

// Len returns the number of stored series.
func (db *DB) Len() int {
	return db.NumMetrics("")
}

// Drop removes a metric's series.
func (db *DB) Drop(id MetricID) {
	sh := db.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.series[id]; !ok {
		return
	}
	delete(sh.series, id)
	sh.indexRemove(id)
}

// Prune discards points older than the retention horizon for every series,
// bounding memory for long simulations. Pruned series are rebuilt into
// fresh chunks and backing arrays (never truncated in place), so
// outstanding QueryView snapshots stay valid; their versions and epochs
// advance so caches keyed on (metric, version) or (metric, epoch)
// invalidate. Pruning is exact even mid-chunk: overlapping sealed chunks
// are decoded and the surviving points re-sealed.
func (db *DB) Prune(before time.Time) {
	var tmp []float64
	for _, sh := range db.shards {
		sh.mu.Lock()
		for _, e := range sh.series {
			c := e.data
			if !c.start.Before(before) {
				continue
			}
			k := c.indexOf(before)
			vals, err := c.valuesInto(make([]float64, 0, c.len()-k), k, c.len(), &tmp)
			if err != nil {
				// A sealed chunk failing its CRC means in-memory corruption;
				// keep the series untouched rather than truncating it to the
				// decodable prefix.
				continue
			}
			nc := newCSeries(c.timeAt(k), c.step, c.chunkSize)
			nc.bulkAppend(vals)
			e.data = nc
			e.version++
			e.epoch = nextEpoch()
		}
		sh.mu.Unlock()
	}
}
