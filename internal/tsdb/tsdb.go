// Package tsdb is the in-memory time-series store FBDetect scans. It
// substitutes for Meta's production monitoring store: the pipeline only
// needs windowed range queries over named metrics, which this package
// provides with concurrent-safe ingestion.
//
// Metric identity follows the paper's "metric ID" convention: a metric ID
// concatenates the entity (service, subroutine, or endpoint) and the metric
// name, e.g. "frontfaas/feed_render/gcpu" (paper §5.5.1).
//
// The store is optimized for the pipeline's hot path: every series carries
// a monotonic version counter (bumped on each mutation) so callers can
// cache derived results keyed by (metric, version), a per-service index
// makes Metrics(service) proportional to that service's metric count, and
// QueryView serves windows zero-copy.
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"fbdetect/internal/timeseries"
)

// MetricID identifies one time series.
type MetricID string

// ID builds a MetricID from service, entity (subroutine/endpoint, may be
// empty for service-level metrics), and metric name.
func ID(service, entity, metric string) MetricID {
	if entity == "" {
		return MetricID(service + "//" + metric)
	}
	return MetricID(service + "/" + entity + "/" + metric)
}

// Parts splits a MetricID into service, entity, and metric name: the
// service is everything before the first '/', the metric everything after
// the last '/', and the entity the middle — so entities may themselves
// contain slashes (endpoint names like "endpoint:/feed/home"). Malformed
// IDs return the whole ID as the metric with empty service and entity.
func (id MetricID) Parts() (service, entity, metric string) {
	s := string(id)
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return "", "", s
	}
	rest := s[i+1:]
	j := strings.LastIndexByte(rest, '/')
	if j < 0 {
		return s[:i], "", rest
	}
	return s[:i], rest[:j], rest[j+1:]
}

// service returns the ID's service component without splitting the rest.
func (id MetricID) service() string {
	s := string(id)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return ""
}

// entry pairs a stored series with its monotonic version, bumped on every
// mutation (append, prune). A (metric, version) pair therefore pins the
// exact series content, which is what makes version-keyed caches of
// derived results (STL decompositions, smoothed trends) sound.
type entry struct {
	series  *timeseries.Series
	version uint64
}

// DB is an in-memory time-series database. The zero value is not usable;
// construct with New.
type DB struct {
	step time.Duration

	mu     sync.RWMutex
	series map[MetricID]*entry
	// byService indexes metric IDs per service, kept sorted. Maintained at
	// Append time so Metrics(service) never walks or re-parses the whole
	// store — with ~800k live series per the paper, the per-scan listing
	// must be O(the service's metrics), not O(all metrics).
	byService map[string][]MetricID
}

// New returns a DB whose series all share the given step (one point per
// step).
func New(step time.Duration) *DB {
	return &DB{
		step:      step,
		series:    map[MetricID]*entry{},
		byService: map[string][]MetricID{},
	}
}

// Step returns the database's sample step.
func (db *DB) Step() time.Duration { return db.step }

// indexAdd inserts id into its service's sorted index. Caller holds db.mu.
func (db *DB) indexAdd(id MetricID) {
	svc := id.service()
	ids := db.byService[svc]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	db.byService[svc] = ids
}

// indexRemove deletes id from its service's index. Caller holds db.mu.
func (db *DB) indexRemove(id MetricID) {
	svc := id.service()
	ids := db.byService[svc]
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i >= len(ids) || ids[i] != id {
		return
	}
	ids = append(ids[:i], ids[i+1:]...)
	if len(ids) == 0 {
		delete(db.byService, svc)
	} else {
		db.byService[svc] = ids
	}
}

// Append adds one point to the metric's series at time t. Points must be
// appended in order; a point earlier than the series end is rejected. Gaps
// are filled by repeating the last value so windows stay regularly spaced
// (production systems interpolate similarly for scan alignment); the fill
// extends the series in one bulk allocation, so a long-gapped series does
// not pay O(gap) appends.
func (db *DB) Append(id MetricID, t time.Time, v float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.series[id]
	if !ok {
		e = &entry{series: timeseries.New(t.Truncate(db.step), db.step, nil)}
		db.series[id] = e
		db.indexAdd(id)
	}
	s := e.series
	// Compute the raw slot without IndexOf's clamping so gaps are visible.
	slot := int(t.Sub(s.Start) / db.step)
	switch {
	case slot < s.Len():
		return fmt.Errorf("tsdb: out-of-order append to %s at %s", id, t)
	case slot == s.Len():
		s.Append(v)
	default:
		last := v
		if s.Len() > 0 {
			last = s.Values[s.Len()-1]
		}
		s.AppendRepeat(last, slot-s.Len())
		s.Append(v)
	}
	e.version++
	return nil
}

// Query returns a copy of the metric's series restricted to [from, to), or
// an error if the metric is unknown.
func (db *DB) Query(id MetricID, from, to time.Time) (*timeseries.Series, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return e.series.Slice(from, to).Clone(), nil
}

// QueryView returns the metric's series restricted to [from, to) as a
// zero-copy view sharing the store's backing array, plus the series
// version at snapshot time. The view is a stable snapshot: concurrent
// Appends only write past the view's end (or into a freshly grown array),
// and Prune replaces the backing array rather than truncating it in
// place. Callers must treat the view's Values as read-only; use Query for
// a mutable copy.
func (db *DB) QueryView(id MetricID, from, to time.Time) (*timeseries.Series, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.series[id]
	if !ok {
		return nil, 0, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return e.series.Slice(from, to), e.version, nil
}

// Version returns the metric's current version counter (0 for unknown
// metrics). The version increases on every mutation of the series, so an
// unchanged version guarantees unchanged content.
func (db *DB) Version(id MetricID) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if e, ok := db.series[id]; ok {
		return e.version
	}
	return 0
}

// Full returns a copy of the metric's complete series.
func (db *DB) Full(id MetricID) (*timeseries.Series, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.series[id]
	if !ok {
		return nil, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	return e.series.Clone(), nil
}

// Metrics returns all metric IDs, sorted, optionally filtered to one
// service ("" matches all). The per-service listing reads the maintained
// index — no store walk, no ID parsing.
func (db *DB) Metrics(service string) []MetricID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if service != "" {
		ids := db.byService[service]
		out := make([]MetricID, len(ids))
		copy(out, ids)
		return out
	}
	out := make([]MetricID, 0, len(db.series))
	for id := range db.series {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumMetrics returns how many series the service has without copying the
// index ("" counts the whole store).
func (db *DB) NumMetrics(service string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if service == "" {
		return len(db.series)
	}
	return len(db.byService[service])
}

// Len returns the number of stored series.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series)
}

// Drop removes a metric's series.
func (db *DB) Drop(id MetricID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.series[id]; !ok {
		return
	}
	delete(db.series, id)
	db.indexRemove(id)
}

// Prune discards points older than the retention horizon for every series,
// bounding memory for long simulations. Pruned series get fresh backing
// arrays (never truncated in place), so outstanding QueryView snapshots
// stay valid; their versions advance so caches keyed on (metric, version)
// invalidate.
func (db *DB) Prune(before time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, e := range db.series {
		s := e.series
		if !s.Start.Before(before) {
			continue
		}
		e.series = s.Slice(before, s.End()).Clone()
		e.version++
	}
}
