package tsdb

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// fillBoth drives an identical append sequence (quantized fleet-shaped
// values, with gaps) into a chunked and a raw store and returns the two.
func fillBoth(t *testing.T, n int) (chunked, raw *DB, id MetricID) {
	t.Helper()
	chunked = NewWithOptions(time.Minute, Options{ChunkSize: 100})
	raw = NewWithOptions(time.Minute, Options{ChunkSize: RawChunks})
	id = ID("svc", "sub", "gcpu")
	rng := rand.New(rand.NewSource(17))
	k := 5000.0
	for i := 0; i < n; i++ {
		k += math.Round(rng.NormFloat64() * 50)
		v := k / 1e5
		if rng.Intn(20) == 0 {
			i += rng.Intn(5) // leave a gap; the store fills it
		}
		ts := t0.Add(time.Duration(i) * time.Minute)
		if err := chunked.Append(id, ts, v); err != nil {
			t.Fatal(err)
		}
		if err := raw.Append(id, ts, v); err != nil {
			t.Fatal(err)
		}
	}
	return chunked, raw, id
}

// mustEqualSeries compares two series bit-for-bit.
func mustEqualSeries(t *testing.T, got, want interface {
	Len() int
}, gotVals, wantVals []float64, gotStart, wantStart time.Time) {
	t.Helper()
	if got.Len() != want.Len() || !gotStart.Equal(wantStart) {
		t.Fatalf("series shape: got (len %d, start %v), want (len %d, start %v)",
			got.Len(), gotStart, want.Len(), wantStart)
	}
	for i := range wantVals {
		if math.Float64bits(gotVals[i]) != math.Float64bits(wantVals[i]) {
			t.Fatalf("value %d: %x != %x", i, math.Float64bits(gotVals[i]), math.Float64bits(wantVals[i]))
		}
	}
}

func TestChunkedMatchesRaw(t *testing.T) {
	chunked, raw, id := fillBoth(t, 1000)
	cf, err := chunked.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := raw.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSeries(t, cf, rf, cf.Values, rf.Values, cf.Start, rf.Start)

	// Windowed queries at awkward offsets (mid-chunk, chunk-aligned,
	// head-only, everything).
	spans := [][2]int{{0, 1000}, {37, 412}, {100, 200}, {950, 1000}, {0, 100}, {99, 101}, {500, 500}}
	var sc Scratch
	for _, sp := range spans {
		from, to := t0.Add(time.Duration(sp[0])*time.Minute), t0.Add(time.Duration(sp[1])*time.Minute)
		cq, err := chunked.Query(id, from, to)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := raw.Query(id, from, to)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSeries(t, cq, rq, cq.Values, rq.Values, cq.Start, rq.Start)

		cv, _, err := chunked.QueryViewStamped(id, from, to, &sc)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSeries(t, cv, rq, cv.Values, rq.Values, cv.Start, rq.Start)

		start, n, _, err := chunked.ViewBounds(id, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if n != cv.Len() || !start.Equal(cv.Start) {
			t.Fatalf("ViewBounds (%v, %d) disagrees with view (%v, %d)", start, n, cv.Start, cv.Len())
		}
	}
}

func TestChunkedPruneMatchesRaw(t *testing.T) {
	chunked, raw, id := fillBoth(t, 1000)
	// Mid-chunk horizon: point 137 of 100-point chunks.
	horizon := t0.Add(137 * time.Minute)
	chunked.Prune(horizon)
	raw.Prune(horizon)
	cf, err := chunked.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := raw.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSeries(t, cf, rf, cf.Values, rf.Values, cf.Start, rf.Start)
	if !cf.Start.Equal(horizon) {
		t.Fatalf("pruned start = %v, want %v", cf.Start, horizon)
	}
}

func TestEpochSemantics(t *testing.T) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	db.Append(id, t0, 1)
	_, _, st1, err := db.ViewBounds(id, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Epoch == 0 {
		t.Fatal("epoch = 0 for live series")
	}
	// Appends bump the version but keep the epoch: existing windows'
	// content cannot change.
	for i := 1; i < 300; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	_, _, st2, err := db.ViewBounds(id, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch != st1.Epoch {
		t.Errorf("epoch changed across appends: %d -> %d", st1.Epoch, st2.Epoch)
	}
	if st2.Version <= st1.Version {
		t.Errorf("version did not advance across appends: %d -> %d", st1.Version, st2.Version)
	}
	// Prune rewrites history: fresh epoch.
	db.Prune(t0.Add(10 * time.Minute))
	_, _, st3, err := db.ViewBounds(id, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if st3.Epoch == st2.Epoch {
		t.Error("epoch unchanged across prune")
	}
	// Restore rewrites history: fresh epoch.
	s, err := db.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	db.Restore(id, s)
	_, _, st4, err := db.ViewBounds(id, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if st4.Epoch == st3.Epoch {
		t.Error("epoch unchanged across restore")
	}
	// Distinct series get distinct epochs.
	id2 := ID("svc", "other", "gcpu")
	db.Append(id2, t0, 1)
	_, _, st5, err := db.ViewBounds(id2, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if st5.Epoch == st4.Epoch {
		t.Error("two series share an epoch")
	}
}

func TestScratchReuseNoCorruption(t *testing.T) {
	db := NewWithOptions(time.Minute, Options{ChunkSize: 50})
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 400; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	var sc Scratch
	// A later view recycles the scratch; the values must be the new
	// window's, and re-querying the first window must reproduce it.
	v1, _, err := db.QueryViewStamped(id, t0, t0.Add(100*time.Minute), &sc)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]float64{}, v1.Values...)
	v2, _, err := db.QueryViewStamped(id, t0.Add(200*time.Minute), t0.Add(250*time.Minute), &sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v2.Values {
		if v2.Values[i] != float64(200+i) {
			t.Fatalf("second view[%d] = %v, want %v", i, v2.Values[i], float64(200+i))
		}
	}
	v3, _, err := db.QueryViewStamped(id, t0, t0.Add(100*time.Minute), &sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if v3.Values[i] != first[i] {
			t.Fatalf("re-queried view[%d] = %v, want %v", i, v3.Values[i], first[i])
		}
	}
}

func TestStorageStatsCompression(t *testing.T) {
	// A long quantized fleet-shaped series must compress to <= 2
	// bytes/point overall (sealed chunks dominate the raw head).
	db := New(time.Minute) // default chunk size
	rng := rand.New(rand.NewSource(23))
	ids := [4]MetricID{}
	for w := range ids {
		ids[w] = ID("svc", "sub"+string(rune('a'+w)), "gcpu")
	}
	const n = 20000
	for w, id := range ids {
		k := float64(1000 * (w + 1))
		for i := 0; i < n; i++ {
			k += math.Round(rng.NormFloat64() * 20)
			if k < 0 {
				k = 0
			}
			db.Append(id, t0.Add(time.Duration(i)*time.Minute), k/1e5)
		}
	}
	st := db.StorageStats()
	if st.Series != len(ids) || st.Points != int64(len(ids)*n) {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.SealedPoints+st.HeadPoints != st.Points {
		t.Fatalf("sealed %d + head %d != total %d", st.SealedPoints, st.HeadPoints, st.Points)
	}
	if bpp := st.BytesPerPoint(); bpp > 2 {
		t.Errorf("storage = %.3f bytes/point, want <= 2 (%+v)", bpp, st)
	}
	// The raw control stores 8 bytes/point.
	raw := NewWithOptions(time.Minute, Options{ChunkSize: RawChunks})
	raw.Append(ids[0], t0, 1)
	if st := raw.StorageStats(); st.SealedChunks != 0 || st.HeadPoints != 1 {
		t.Errorf("raw stats = %+v", st)
	}
}

func TestRestoreRoundTripsThroughChunks(t *testing.T) {
	db := NewWithOptions(time.Minute, Options{ChunkSize: 64})
	id := ID("svc", "sub", "gcpu")
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), rng.NormFloat64())
	}
	snap, err := db.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	db2 := NewWithOptions(time.Minute, Options{ChunkSize: 64})
	db2.Restore(id, snap)
	got, err := db2.Full(id)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSeries(t, got, snap, got.Values, snap.Values, got.Start, snap.Start)
	// Appending after a restore continues the grid seamlessly.
	if err := db2.Append(id, t0.Add(500*time.Minute), 42); err != nil {
		t.Fatal(err)
	}
	if v, err := db2.Query(id, t0.Add(500*time.Minute), t0.Add(501*time.Minute)); err != nil || v.Values[0] != 42 {
		t.Fatalf("post-restore append: %v %v", v, err)
	}
}
