package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func BenchmarkAppend(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
}

func BenchmarkQueryWindow(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 100000; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	from := t0.Add(50000 * time.Minute)
	to := from.Add(1000 * time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(id, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAppendParallel drives 8 goroutines appending to disjoint metric
// sets — the shard-contention benchmark behind the benchdiff speedup
// gate. The single-lock variant (Shards: 1) is the pre-sharding store;
// the sharded variant must beat it by the factor the gate enforces.
func benchAppendParallel(b *testing.B, opts Options) {
	const (
		workers      = 8
		perWorkerIDs = 64 // spread each worker over many series so shard routing stays uniform
	)
	db := NewWithOptions(time.Minute, opts)
	ids := make([][]MetricID, workers)
	for w := range ids {
		ids[w] = make([]MetricID, perWorkerIDs)
		for m := range ids[w] {
			ids[w][m] = ID("svc", fmt.Sprintf("w%d_m%d", w, m), "gcpu")
		}
	}
	per := b.N/workers + 1
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := ids[w]
			for i := 0; i < per; i++ {
				db.Append(mine[i%perWorkerIDs], t0.Add(time.Duration(i/perWorkerIDs)*time.Minute), float64(i))
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkAppendParallel(b *testing.B) {
	benchAppendParallel(b, Options{Shards: 16})
}

func BenchmarkAppendParallelSingleLock(b *testing.B) {
	benchAppendParallel(b, Options{Shards: 1})
}

func BenchmarkAppendBatch(b *testing.B) {
	db := New(time.Minute)
	const batch = 512
	pts := make([]Point, batch)
	ids := [8]MetricID{}
	for w := range ids {
		ids[w] = ID("svc", "sub"+string(rune('a'+w)), "gcpu")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := i * (batch / len(ids))
		for j := range pts {
			pts[j] = Point{ids[j%len(ids)], t0.Add(time.Duration(base+j/len(ids)) * time.Minute), float64(j)}
		}
		db.AppendBatch(pts)
	}
}

// BenchmarkChunkAppend measures per-point append cost into the chunked
// store (including amortized chunk sealing) on quantized fleet-shaped
// values, and reports the steady-state storage density as "bytes/point" —
// the custom metric the benchdiff -bytes-per-point ceiling gates. The
// series is topped up outside the timer so the density reflects sealed
// chunks rather than a mostly-raw head at small b.N.
func BenchmarkChunkAppend(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	vals := quantizedValues(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), vals[i%len(vals)])
	}
	b.StopTimer()
	for i := b.N; i < 20000; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), vals[i%len(vals)])
	}
	b.ReportMetric(db.StorageStats().BytesPerPoint(), "bytes/point")
}

// BenchmarkChunkIterate measures decoding a 540-point detection window
// (the pipeline's 9-hour scan span) out of sealed chunks into a reused
// scratch buffer.
func BenchmarkChunkIterate(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	vals := quantizedValues(20000)
	for i, v := range vals {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), v)
	}
	const window = 540
	from := t0.Add(time.Duration(len(vals)-window) * time.Minute)
	to := t0.Add(time.Duration(len(vals)) * time.Minute)
	var sc Scratch
	b.SetBytes(window * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := db.QueryViewStamped(id, from, to, &sc)
		if err != nil {
			b.Fatal(err)
		}
		if v.Len() != window {
			b.Fatalf("window = %d points", v.Len())
		}
	}
}

// quantizedValues builds a deterministic random walk on the decimal grid
// k/1e5 — the shape sampled-profiler counters take after fleet-side
// quantization.
func quantizedValues(n int) []float64 {
	vals := make([]float64, n)
	k, state := 5000.0, uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		state = state*6364136223846793005 + 1442695040888963407
		k += float64(int64(state>>33)%41 - 20)
		if k < 0 {
			k = 0
		}
		vals[i] = k / 1e5
	}
	return vals
}

func BenchmarkMetricsListing(b *testing.B) {
	db := New(time.Minute)
	for i := 0; i < 1000; i++ {
		db.Append(ID("svc", string(rune('a'+i%26))+string(rune('a'+i/26%26))+string(rune('a'+i/676)), "m"), t0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Metrics("svc")
	}
}
