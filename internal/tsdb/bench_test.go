package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func BenchmarkAppend(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
}

func BenchmarkQueryWindow(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 100000; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	from := t0.Add(50000 * time.Minute)
	to := from.Add(1000 * time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(id, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAppendParallel drives 8 goroutines appending to disjoint metric
// sets — the shard-contention benchmark behind the benchdiff speedup
// gate. The single-lock variant (Shards: 1) is the pre-sharding store;
// the sharded variant must beat it by the factor the gate enforces.
func benchAppendParallel(b *testing.B, opts Options) {
	const (
		workers      = 8
		perWorkerIDs = 64 // spread each worker over many series so shard routing stays uniform
	)
	db := NewWithOptions(time.Minute, opts)
	ids := make([][]MetricID, workers)
	for w := range ids {
		ids[w] = make([]MetricID, perWorkerIDs)
		for m := range ids[w] {
			ids[w][m] = ID("svc", fmt.Sprintf("w%d_m%d", w, m), "gcpu")
		}
	}
	per := b.N/workers + 1
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := ids[w]
			for i := 0; i < per; i++ {
				db.Append(mine[i%perWorkerIDs], t0.Add(time.Duration(i/perWorkerIDs)*time.Minute), float64(i))
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkAppendParallel(b *testing.B) {
	benchAppendParallel(b, Options{Shards: 16})
}

func BenchmarkAppendParallelSingleLock(b *testing.B) {
	benchAppendParallel(b, Options{Shards: 1})
}

func BenchmarkAppendBatch(b *testing.B) {
	db := New(time.Minute)
	const batch = 512
	pts := make([]Point, batch)
	ids := [8]MetricID{}
	for w := range ids {
		ids[w] = ID("svc", "sub"+string(rune('a'+w)), "gcpu")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := i * (batch / len(ids))
		for j := range pts {
			pts[j] = Point{ids[j%len(ids)], t0.Add(time.Duration(base+j/len(ids)) * time.Minute), float64(j)}
		}
		db.AppendBatch(pts)
	}
}

func BenchmarkMetricsListing(b *testing.B) {
	db := New(time.Minute)
	for i := 0; i < 1000; i++ {
		db.Append(ID("svc", string(rune('a'+i%26))+string(rune('a'+i/26%26))+string(rune('a'+i/676)), "m"), t0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Metrics("svc")
	}
}
