package tsdb

import (
	"testing"
	"time"
)

func BenchmarkAppend(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
}

func BenchmarkQueryWindow(b *testing.B) {
	db := New(time.Minute)
	id := ID("svc", "sub", "gcpu")
	for i := 0; i < 100000; i++ {
		db.Append(id, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	from := t0.Add(50000 * time.Minute)
	to := from.Add(1000 * time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(id, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricsListing(b *testing.B) {
	db := New(time.Minute)
	for i := 0; i < 1000; i++ {
		db.Append(ID("svc", string(rune('a'+i%26))+string(rune('a'+i/26%26))+string(rune('a'+i/676)), "m"), t0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Metrics("svc")
	}
}
