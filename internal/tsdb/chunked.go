package tsdb

import (
	"fmt"
	"sync/atomic"
	"time"

	"fbdetect/internal/timeseries"
)

// DefaultChunkSize is the number of points per sealed chunk when Options
// leaves ChunkSize zero. 120 points is two hours of minutely data — small
// enough that a partially-overlapping window decodes little excess, large
// enough to amortize the per-chunk header and CRC to a fraction of a byte
// per point.
const DefaultChunkSize = 120

// RawChunks disables chunk compression when passed as Options.ChunkSize:
// series stay as raw float64 arrays and QueryView is zero-copy, matching
// the pre-compression store. Equivalence tests and memory-insensitive
// callers use it as the control.
const RawChunks = -1

// epochCounter issues process-unique series epochs; see entry.epoch.
var epochCounter atomic.Uint64

func nextEpoch() uint64 { return epochCounter.Add(1) }

// sealedChunk is one immutable compressed block of chunkSize points.
type sealedChunk struct {
	data  []byte
	count int
}

// cseries stores one series as sealed compressed chunks plus a mutable
// raw head. Appends go to the head; when the head reaches chunkSize
// points its oldest chunkSize values are encoded (timeseries.EncodeChunk)
// and sealed. Sealed chunks all hold exactly chunkSize points, so the
// chunks overlapping an index range are directly addressable.
//
// With chunkSize <= 0 nothing is ever sealed (raw mode) and head is the
// whole series, readable zero-copy.
type cseries struct {
	start       time.Time
	step        time.Duration
	chunkSize   int
	sealed      []sealedChunk
	sealedPts   int
	sealedBytes int
	head        []float64
	last        float64 // most recent value; valid when len() > 0
}

func newCSeries(start time.Time, step time.Duration, chunkSize int) *cseries {
	return &cseries{start: start, step: step, chunkSize: chunkSize}
}

func (c *cseries) raw() bool { return c.chunkSize <= 0 }

func (c *cseries) len() int { return c.sealedPts + len(c.head) }

func (c *cseries) end() time.Time { return c.timeAt(c.len()) }

func (c *cseries) timeAt(i int) time.Time {
	return c.start.Add(time.Duration(i) * c.step)
}

// indexOf mirrors timeseries.Series.IndexOf: the index of the sample
// covering t, clamped to [0, len].
func (c *cseries) indexOf(t time.Time) int {
	if c.step <= 0 {
		return 0
	}
	i := int(t.Sub(c.start) / c.step)
	if i < 0 {
		return 0
	}
	if n := c.len(); i > n {
		return n
	}
	return i
}

// append adds one value to the head, sealing full chunks.
func (c *cseries) append(v float64) {
	if c.head == nil && !c.raw() {
		// Size the scratch to exactly one chunk up front: Go's doubling
		// growth would otherwise settle at the next power of two above
		// chunkSize, and at 10x series density that slack is real memory.
		c.head = make([]float64, 0, c.chunkSize)
	}
	c.head = append(c.head, v)
	c.last = v
	c.seal()
}

// appendRepeat adds n copies of v (gap filling), sealing as it goes.
func (c *cseries) appendRepeat(v float64, n int) {
	if n <= 0 {
		return
	}
	if c.raw() {
		for i := 0; i < n; i++ {
			c.head = append(c.head, v)
		}
		c.last = v
		return
	}
	for n > 0 {
		space := c.chunkSize - len(c.head)
		take := n
		if take > space {
			take = space
		}
		for i := 0; i < take; i++ {
			c.head = append(c.head, v)
		}
		n -= take
		c.seal()
	}
	c.last = v
}

// seal encodes full chunkSize prefixes of the head into sealed chunks.
// The head is reused (copy-down) so a series in steady state owns exactly
// one chunkSize-capacity scratch array.
func (c *cseries) seal() {
	if c.raw() {
		return
	}
	for len(c.head) >= c.chunkSize {
		enc, err := timeseries.EncodeChunk(c.timeAt(c.sealedPts), c.step, c.head[:c.chunkSize])
		if err != nil {
			// chunkSize is validated at construction (0 < chunkSize <=
			// MaxChunkPoints) and the step is the DB's, so encoding a full
			// head prefix cannot fail.
			panic(fmt.Sprintf("tsdb: seal chunk: %v", err))
		}
		c.sealed = append(c.sealed, sealedChunk{data: enc, count: c.chunkSize})
		c.sealedPts += c.chunkSize
		c.sealedBytes += len(enc)
		c.head = append(c.head[:0], c.head[c.chunkSize:]...)
	}
	if cap(c.head) > c.chunkSize {
		// A bulk append (restore, prune rebuild, long gap fill) grew the
		// scratch past one chunk; shrink it back so steady state owns
		// exactly chunkSize capacity per series.
		c.head = append(make([]float64, 0, c.chunkSize), c.head...)
	}
}

// bulkAppend appends values in order (restore and prune-rebuild path).
func (c *cseries) bulkAppend(values []float64) {
	if len(values) == 0 {
		return
	}
	c.head = append(c.head, values...)
	c.last = values[len(values)-1]
	c.seal()
}

// valuesInto appends the index range [i, j) of the series to dst,
// decoding overlapping sealed chunks. Chunks fully inside the range
// decode straight into dst; partially-overlapping boundary chunks decode
// into *tmp first. Both buffers grow as needed and are reusable across
// calls.
func (c *cseries) valuesInto(dst []float64, i, j int, tmp *[]float64) ([]float64, error) {
	if i < 0 {
		i = 0
	}
	if n := c.len(); j > n {
		j = n
	}
	if i >= j {
		return dst, nil
	}
	if i < c.sealedPts {
		cs := c.chunkSize
		for k := i / cs; k < len(c.sealed) && k*cs < j; k++ {
			base := k * cs
			lo, hi := i-base, j-base
			if lo < 0 {
				lo = 0
			}
			if hi > cs {
				hi = cs
			}
			if lo == 0 && hi == cs {
				_, _, out, err := timeseries.DecodeChunk(c.sealed[k].data, dst)
				if err != nil {
					return dst, fmt.Errorf("tsdb: sealed chunk %d: %w", k, err)
				}
				dst = out
				continue
			}
			buf, err := func() ([]float64, error) {
				_, _, out, err := timeseries.DecodeChunk(c.sealed[k].data, (*tmp)[:0])
				return out, err
			}()
			if err != nil {
				return dst, fmt.Errorf("tsdb: sealed chunk %d: %w", k, err)
			}
			*tmp = buf
			dst = append(dst, buf[lo:hi]...)
		}
	}
	if j > c.sealedPts {
		lo := i - c.sealedPts
		if lo < 0 {
			lo = 0
		}
		dst = append(dst, c.head[lo:j-c.sealedPts]...)
	}
	return dst, nil
}

// Scratch is a caller-owned reusable decode buffer for QueryViewStamped.
// A zero Scratch is ready to use; each call recycles the buffers, so a
// view is valid only until the same Scratch's next use.
type Scratch struct {
	buf []float64
	tmp []float64
}

// ViewStamp pins the identity of a series snapshot.
type ViewStamp struct {
	// Version increases on every mutation (append, prune, restore); an
	// unchanged version guarantees unchanged content.
	Version uint64
	// Epoch is a process-unique content-stability token: it survives
	// appends — stored values are never rewritten in place, so any window
	// [start, start+n) observed under an epoch has identical content
	// whenever the same (epoch, start, n) triple is observed again — and
	// changes whenever history can be rewritten (series creation, Restore,
	// Prune). Caches of window-derived results key on (metric, epoch,
	// window) and stay warm across appends.
	Epoch uint64
}

// QueryViewStamped returns the metric's series restricted to [from, to)
// along with its ViewStamp. In chunked mode the window decodes into sc's
// reusable buffer (allocating only on first use or growth); the returned
// series is valid until sc's next use. In raw mode the view is zero-copy
// as QueryView documents and sc is untouched. A nil sc uses a throwaway
// buffer.
func (db *DB) QueryViewStamped(id MetricID, from, to time.Time, sc *Scratch) (*timeseries.Series, ViewStamp, error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.series[id]
	if !ok {
		return nil, ViewStamp{}, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	st := ViewStamp{Version: e.version, Epoch: e.epoch}
	c := e.data
	i, j := c.indexOf(from), c.indexOf(to)
	if j < i {
		j = i
	}
	if c.raw() {
		return timeseries.New(c.timeAt(i), c.step, c.head[i:j]), st, nil
	}
	if sc == nil {
		sc = &Scratch{}
	}
	vals, err := c.valuesInto(sc.buf[:0], i, j, &sc.tmp)
	sc.buf = vals
	if err != nil {
		return nil, ViewStamp{}, err
	}
	return timeseries.New(c.timeAt(i), c.step, vals), st, nil
}

// ViewBounds resolves the window [from, to) to its grid placement — the
// start time and point count QueryViewStamped would return — plus the
// series' current ViewStamp, without decoding any chunk. Callers with
// stamp-keyed caches check for a hit first and only pay for decoding on a
// miss.
func (db *DB) ViewBounds(id MetricID, from, to time.Time) (start time.Time, n int, st ViewStamp, err error) {
	sh := db.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.series[id]
	if !ok {
		return time.Time{}, 0, ViewStamp{}, fmt.Errorf("tsdb: unknown metric %q", id)
	}
	c := e.data
	i, j := c.indexOf(from), c.indexOf(to)
	if j < i {
		j = i
	}
	return c.timeAt(i), j - i, ViewStamp{Version: e.version, Epoch: e.epoch}, nil
}

// StorageStats aggregates the store's in-memory footprint.
type StorageStats struct {
	Series       int
	Points       int64 // total stored points (sealed + head)
	SealedChunks int
	SealedPoints int64
	SealedBytes  int64 // compressed payload bytes, including headers and CRCs
	HeadPoints   int64
	HeadBytes    int64 // raw head capacity in bytes (8 * cap)
}

// TotalBytes is the value-storage footprint: compressed sealed bytes plus
// raw head capacity. Per-series bookkeeping (map entries, struct headers)
// is excluded; it is amortized across chunks and independent of history
// length.
func (st StorageStats) TotalBytes() int64 { return st.SealedBytes + st.HeadBytes }

// BytesPerPoint is TotalBytes over stored points (0 for an empty store).
func (st StorageStats) BytesPerPoint() float64 {
	if st.Points == 0 {
		return 0
	}
	return float64(st.TotalBytes()) / float64(st.Points)
}

// StorageStats walks every shard and sums the storage footprint.
func (db *DB) StorageStats() StorageStats {
	var st StorageStats
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, e := range sh.series {
			c := e.data
			st.Series++
			st.Points += int64(c.len())
			st.SealedChunks += len(c.sealed)
			st.SealedPoints += int64(c.sealedPts)
			st.SealedBytes += int64(c.sealedBytes)
			st.HeadPoints += int64(len(c.head))
			st.HeadBytes += int64(cap(c.head)) * 8
		}
		sh.mu.RUnlock()
	}
	return st
}
