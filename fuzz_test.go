package fbdetect

import (
	"encoding/binary"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/changepoint"
	"fbdetect/internal/sax"
)

// FuzzParseConfig: arbitrary JSON either yields a valid config or an
// error, never a panic or an invalid config.
func FuzzParseConfig(f *testing.F) {
	f.Add(`{"windows": {"historic": "10h", "analysis": "1h"}}`)
	f.Add(`{"threshold": 0.1}`)
	f.Add(`{`)
	f.Add(`{"windows": {"historic": "-1h", "analysis": "1h"}}`)
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseConfig(strings.NewReader(s))
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseConfig returned invalid config: %v", verr)
		}
	})
}

// fuzzSeries decodes a fuzz byte payload into a float64 series, 8 bytes
// per point. Every bit pattern is a valid float64, so the decoder gives
// the fuzzer direct reach to NaNs, infinities, denormals, and extreme
// magnitudes.
func fuzzSeries(data []byte) []float64 {
	xs := make([]float64, len(data)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return xs
}

// floatBytes is the inverse of fuzzSeries, for seeding the corpus.
func floatBytes(xs ...float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// repeatFloats seeds step-like shapes: a points of va then b points of vb.
func repeatFloats(a int, va float64, b int, vb float64) []byte {
	xs := make([]float64, 0, a+b)
	for i := 0; i < a; i++ {
		xs = append(xs, va)
	}
	for i := 0; i < b; i++ {
		xs = append(xs, vb)
	}
	return floatBytes(xs...)
}

// FuzzChangepointSegmenter: the DP segmenter must uphold its structural
// invariants on any series — NaNs, constants, alternating values, extreme
// magnitudes — without panicking: split indices stay in range and sorted,
// segment bounds are respected, and the segment count honors the cap.
func FuzzChangepointSegmenter(f *testing.F) {
	f.Add(repeatFloats(10, 1, 10, 2), 4, 3)
	f.Add(repeatFloats(20, 0, 0, 0), 3, 2)
	f.Add(floatBytes(1, 2, 1, 2, 1, 2, 1, 2), 4, 1)
	f.Add(floatBytes(math.NaN(), 1, math.NaN(), 2, 3, 4, 5, 6), 3, 2)
	f.Add(floatBytes(math.Inf(1), math.Inf(-1), 1e308, -1e308, 5e-324), 2, 1)
	f.Fuzz(func(t *testing.T, data []byte, maxSegments, minSegment int) {
		if len(data) > 8*512 {
			return // cap the series length, not the value range
		}
		xs := fuzzSeries(data)
		if maxSegments > 64 {
			maxSegments = 64
		}

		cut, _ := changepoint.NormalLossSplit(xs, minSegment)
		minSeg := minSegment
		if minSeg < 1 {
			minSeg = 1
		}
		if cut != 0 && (cut < minSeg || cut > len(xs)-minSeg) {
			t.Fatalf("NormalLossSplit(%d pts, minSegment=%d) = %d out of range", len(xs), minSegment, cut)
		}

		cuts := changepoint.MultiSplit(xs, maxSegments, minSegment, 0.05)
		if !sort.IntsAreSorted(cuts) {
			t.Fatalf("MultiSplit cuts unsorted: %v", cuts)
		}
		if maxSegments >= 2 && len(cuts) > maxSegments-1 {
			t.Fatalf("MultiSplit produced %d cuts for maxSegments=%d", len(cuts), maxSegments)
		}
		for i, c := range cuts {
			if c <= 0 || c >= len(xs) {
				t.Fatalf("cut %d out of (0, %d): %v", c, len(xs), cuts)
			}
			if i > 0 && c == cuts[i-1] {
				t.Fatalf("duplicate cut: %v", cuts)
			}
		}

		res := changepoint.Detect(xs, changepoint.Options{})
		if res.Found && (res.Index < 0 || res.Index >= len(xs)) {
			t.Fatalf("Detect index %d out of range for %d points", res.Index, len(xs))
		}
	})
}

// FuzzSAXEncoder: encoding any series must not panic, and every produced
// letter must be a valid bucket index — including on adversarial input
// (NaN-only data, constant series, alternating extremes). This target
// found the int(NaN) conversion path that produced negative letters and
// made Word.String index below the alphabet.
func FuzzSAXEncoder(f *testing.F) {
	f.Add(floatBytes(1, 2, 3, 4, 5))
	f.Add(floatBytes(7, 7, 7, 7))
	f.Add(floatBytes(math.NaN(), 1, 2))
	f.Add(floatBytes(math.NaN(), math.NaN()))
	f.Add(floatBytes(math.Inf(1), math.Inf(-1), 0))
	f.Add(floatBytes(-math.MaxFloat64, math.MaxFloat64))
	f.Add(floatBytes(1e-310, 2e-310)) // denormal-scale range
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8*512 {
			return
		}
		xs := fuzzSeries(data)
		enc, err := sax.NewEncoderForData(xs)
		if err != nil {
			return // no finite data, nothing to encode
		}
		lo, hi := enc.Range()
		if math.IsNaN(lo) || math.IsNaN(hi) || hi <= lo {
			t.Fatalf("encoder accepted degenerate range [%v, %v]", lo, hi)
		}
		word := enc.Encode(xs)
		for i, l := range word.Letters {
			if l < 0 || l >= enc.Buckets() {
				t.Fatalf("letter %d at point %d (value %v) outside [0, %d)",
					l, i, xs[i], enc.Buckets())
			}
		}
		_ = word.String() // must not index outside the alphabet
		_ = word.ValidLetters()
		if word.MaxLetter() >= enc.Buckets() {
			t.Fatalf("MaxLetter %d outside bucket range", word.MaxLetter())
		}
		if ref := enc.Encode(xs[:len(xs)/2]); word.InvalidFraction(ref) < 0 ||
			word.InvalidFraction(ref) > 1 {
			t.Fatalf("InvalidFraction outside [0, 1]")
		}
	})
}

// FuzzReadCSV: arbitrary CSV either ingests cleanly or errors; ingested
// databases answer queries without panicking.
func FuzzReadCSV(f *testing.F) {
	f.Add("time,metric,value\n2024-08-01T00:00:00Z,m,1\n")
	f.Add("time,metric,value\n")
	f.Add("x\n")
	f.Add("time,metric,value\n2024-08-01T00:00:00Z,a/b/c,1\n2024-08-01T00:01:00Z,a/b/c,2\n")
	f.Fuzz(func(t *testing.T, s string) {
		db, err := ReadCSV(strings.NewReader(s), time.Minute)
		if err != nil {
			return
		}
		for _, id := range db.Metrics("") {
			if _, err := db.Full(id); err != nil {
				t.Fatalf("ingested metric unreadable: %v", err)
			}
		}
	})
}
