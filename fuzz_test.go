package fbdetect

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseConfig: arbitrary JSON either yields a valid config or an
// error, never a panic or an invalid config.
func FuzzParseConfig(f *testing.F) {
	f.Add(`{"windows": {"historic": "10h", "analysis": "1h"}}`)
	f.Add(`{"threshold": 0.1}`)
	f.Add(`{`)
	f.Add(`{"windows": {"historic": "-1h", "analysis": "1h"}}`)
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseConfig(strings.NewReader(s))
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseConfig returned invalid config: %v", verr)
		}
	})
}

// FuzzReadCSV: arbitrary CSV either ingests cleanly or errors; ingested
// databases answer queries without panicking.
func FuzzReadCSV(f *testing.F) {
	f.Add("time,metric,value\n2024-08-01T00:00:00Z,m,1\n")
	f.Add("time,metric,value\n")
	f.Add("x\n")
	f.Add("time,metric,value\n2024-08-01T00:00:00Z,a/b/c,1\n2024-08-01T00:01:00Z,a/b/c,2\n")
	f.Fuzz(func(t *testing.T, s string) {
		db, err := ReadCSV(strings.NewReader(s), time.Minute)
		if err != nil {
			return
		}
		for _, id := range db.Metrics("") {
			if _, err := db.Full(id); err != nil {
				t.Fatalf("ingested metric unreadable: %v", err)
			}
		}
	})
}
