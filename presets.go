package fbdetect

import (
	"time"

	"fbdetect/internal/timeseries"
)

// The preset constructors below reproduce the twelve workload
// configurations of the paper's Table 1. Thresholds for gCPU metrics are
// absolute fractions (a "0.005%" detection threshold is 0.00005), and the
// CT presets use relative thresholds.

func preset(name string, threshold float64, relative bool,
	rerun, hist, analysis, extended time.Duration) Config {
	return Config{
		Name:              name,
		Threshold:         threshold,
		RelativeThreshold: relative,
		RerunInterval:     rerun,
		Windows: timeseries.WindowConfig{
			Historic: hist,
			Analysis: analysis,
			Extended: extended,
		},
	}
}

const day = 24 * time.Hour

// FrontFaaSLarge detects large (3%) regressions quickly for the PHP
// serverless platform.
func FrontFaaSLarge() Config {
	return preset("FrontFaaS (large)", 0.03, false, 30*time.Minute, 10*day, 3*time.Hour, 0)
}

// FrontFaaSSmall detects tiny (0.005%) regressions for the PHP serverless
// platform, waiting longer to collect more data.
func FrontFaaSSmall() Config {
	return preset("FrontFaaS (small)", 0.00005, false, 2*time.Hour, 10*day, 4*time.Hour, 6*time.Hour)
}

// PythonFaaSLarge detects 0.5% regressions for the Python serverless
// platform.
func PythonFaaSLarge() Config {
	return preset("PythonFaaS (large)", 0.005, false, time.Hour, 10*day, 6*time.Hour, 0)
}

// PythonFaaSSmall detects 0.03% regressions for the Python serverless
// platform.
func PythonFaaSSmall() Config {
	return preset("PythonFaaS (small)", 0.0003, false, 4*time.Hour, 10*day, 6*time.Hour, 6*time.Hour)
}

// TAOFrontFaaS detects 0.05% regressions in TAO's FrontFaaS traffic.
func TAOFrontFaaS() Config {
	return preset("TAO (FrontFaaS)", 0.0005, false, 2*time.Hour, 10*day, 4*time.Hour, day)
}

// TAONonFrontFaaS detects 0.05% regressions in TAO's other traffic.
func TAONonFrontFaaS() Config {
	return preset("TAO (non-FrontFaaS)", 0.0005, false, time.Hour, 10*day, day, 6*time.Hour)
}

// AdServingShort detects 0.2% regressions for the ads services.
func AdServingShort() Config {
	return preset("AdServing (short)", 0.002, false, 6*time.Hour, 10*day, day, 12*time.Hour)
}

// AdServingLong detects 0.1% regressions over long windows; it favors the
// long-term detection path.
func AdServingLong() Config {
	c := preset("AdServing (long)", 0.001, false, day, 16*day, 9*day, 0)
	c.LongTerm = true
	return c
}

// InvoicerShort detects 0.5% regressions for the 16-server Invoicer
// service, using long windows and high sampling to accumulate data.
func InvoicerShort() Config {
	return preset("Invoicer (short)", 0.005, false, 12*time.Hour, 14*day, day, day)
}

// CTSupplyShort detects 5% relative drops in Kraken-probed per-server max
// throughput.
func CTSupplyShort() Config {
	return preset("CT-supply (short)", 0.05, true, 12*time.Hour, 7*day, day, day)
}

// CTSupplyLong is the long-window variant of CT-supply.
func CTSupplyLong() Config {
	c := preset("CT-supply (long)", 0.05, true, 12*time.Hour, 10*day, 7*day, day)
	c.LongTerm = true
	return c
}

// CTDemand detects 5% relative increases in total peak demand.
func CTDemand() Config {
	return preset("CT-demand", 0.05, true, 12*time.Hour, 7*day, day, 0)
}

// Presets returns all Table 1 configurations in the paper's row order.
func Presets() []Config {
	return []Config{
		FrontFaaSLarge(), FrontFaaSSmall(),
		PythonFaaSLarge(), PythonFaaSSmall(),
		TAOFrontFaaS(), TAONonFrontFaaS(),
		AdServingShort(), AdServingLong(),
		InvoicerShort(),
		CTSupplyShort(), CTSupplyLong(), CTDemand(),
	}
}
