// Package fbdetect is an open reproduction of FBDetect ("Catching Tiny
// Performance Regressions at Hyperscale through In-Production Monitoring",
// SOSP 2024): an in-production performance-regression detection pipeline
// that catches regressions as small as 0.005% by combining
// subroutine-level stack-trace sampling (the gCPU metric) with a stack of
// statistical filters — change-point detection, a went-away detector for
// transient issues, STL-based seasonality filtering, cost-shift analysis,
// SOM and pairwise deduplication, and root-cause ranking.
//
// # Quick start
//
//	db := fbdetect.NewDB(time.Minute)
//	// ... ingest metrics with db.Append(fbdetect.ID("svc", "sub", "gcpu"), t, v) ...
//	det, err := fbdetect.NewDetector(fbdetect.Config{
//		Threshold: 0.0005,
//		Windows: fbdetect.WindowConfig{
//			Historic: 10 * 24 * time.Hour,
//			Analysis: 4 * time.Hour,
//			Extended: 6 * time.Hour,
//		},
//	}, db, nil, nil)
//	res, err := det.Scan("svc", time.Now())
//	for _, r := range res.Reported { fmt.Println(r) }
//
// Preset configurations matching the paper's Table 1 are available from
// Presets and the per-workload constructors (FrontFaaSSmall, InvoicerShort,
// and so on).
//
// The package also exports the substrate the reproduction is evaluated
// on: a fleet simulator (NewFleetService) that generates realistic service
// telemetry with injectable regressions, transient issues, and seasonal
// load, plus the PyPerf stack-reconstruction algorithm (MergeStack) and
// the Kraken throughput prober used by Capacity Triage.
package fbdetect

import (
	"io"
	"time"

	"fbdetect/internal/changelog"
	"fbdetect/internal/core"
	"fbdetect/internal/report"
	"fbdetect/internal/stacktrace"
	"fbdetect/internal/timeseries"
	"fbdetect/internal/tsdb"
)

// Core detection types.
type (
	// Config configures one detection job (thresholds, windows, and
	// per-stage tuning); see the paper's Table 1 presets in presets.go.
	Config = core.Config
	// WindowConfig is the historic/analysis/extended window layout of the
	// paper's Figure 4.
	WindowConfig = timeseries.WindowConfig
	// Detector is the FBDetect pipeline: change-point detection, went-away
	// and seasonality filtering, deduplication, cost-shift analysis, and
	// root-cause ranking (Figure 6).
	Detector = core.Pipeline
	// Regression is one detected regression with its magnitude, change
	// point, and ranked root-cause candidates.
	Regression = core.Regression
	// RootCauseCandidate is a ranked candidate change for a regression.
	RootCauseCandidate = core.RootCauseCandidate
	// ScanResult is the outcome of one Detector.Scan.
	ScanResult = core.ScanResult
	// Funnel counts regression candidates surviving each pipeline stage
	// (the paper's Table 3).
	Funnel = core.Funnel
	// WentAwayConfig, SeasonalityConfig, CostShiftConfig, PopShiftConfig,
	// DedupConfig and RootCauseConfig tune individual stages.
	WentAwayConfig    = core.WentAwayConfig
	SeasonalityConfig = core.SeasonalityConfig
	CostShiftConfig   = core.CostShiftConfig
	PopShiftConfig    = core.PopShiftConfig
	DedupConfig       = core.DedupConfig
	RootCauseConfig   = core.RootCauseConfig
	// PopulationShift is one candidate regression the pop-shift stage
	// reclassified as a population mix change (generation rollout,
	// regional failover, traffic migration) rather than a behavior
	// regression; collected in ScanResult.PopulationShifts.
	PopulationShift = core.PopulationShift
	// SampleProvider supplies stack-trace samples for cost-shift analysis
	// and root-cause attribution.
	SampleProvider = core.SampleProvider
	// CostDomain and DomainDetector support custom cost-shift domains.
	CostDomain     = core.CostDomain
	DomainDetector = core.DomainDetector
)

// Storage and change-tracking types.
type (
	// DB is the in-memory time-series store the detector scans.
	DB = tsdb.DB
	// MetricID identifies one time series ("service/entity/metric").
	MetricID = tsdb.MetricID
	// Series is a regularly spaced time series.
	Series = timeseries.Series
	// ChangeLog records deployed code and configuration changes for
	// root-cause analysis.
	ChangeLog = changelog.Log
	// Change is one deployed code or configuration change.
	Change = changelog.Change
)

// Stack-trace types (paper §4).
type (
	// Frame is one stack frame with optional class and metadata.
	Frame = stacktrace.Frame
	// Trace is a stack trace, root first.
	Trace = stacktrace.Trace
	// SampleSet aggregates weighted stack-trace samples and answers gCPU
	// queries.
	SampleSet = stacktrace.SampleSet
)

// Change kinds recorded in a ChangeLog.
const (
	CodeChange   = changelog.Code
	ConfigChange = changelog.Config
)

// NewDB returns a time-series store whose series share the given step.
func NewDB(step time.Duration) *DB { return tsdb.New(step) }

// ID builds a MetricID from service, entity (subroutine or endpoint; may
// be empty for service-level metrics), and metric name.
func ID(service, entity, metric string) MetricID { return tsdb.ID(service, entity, metric) }

// NewDetector builds a detection pipeline over db. log (for root-cause
// analysis) and samples (for cost-shift analysis and gCPU attribution) may
// be nil, disabling those features.
func NewDetector(cfg Config, db *DB, log *ChangeLog, samples SampleProvider) (*Detector, error) {
	return core.NewPipeline(cfg, db, log, samples)
}

// Monitor runs a Detector continuously, scanning watched services at the
// re-run interval as FBDetect does in production.
type Monitor = core.Monitor

// PlannedChange and PlannedChangeRegistry suppress regressions explained
// by known operational events (planned capacity changes, feature
// launches) — the paper's §8 extension.
type (
	PlannedChange         = core.PlannedChange
	PlannedChangeRegistry = core.PlannedChangeRegistry
)

// NewMonitor wraps a detector with periodic scanning; interval 0 falls
// back to the config's RerunInterval (then 1h).
func NewMonitor(det *Detector, interval time.Duration) (*Monitor, error) {
	return core.NewMonitor(det, interval)
}

// Ticket is a rendered regression report for developers.
type Ticket = report.Ticket

// TicketFor renders a regression as a ticket, resolving root-cause change
// IDs against log (which may be nil).
func TicketFor(r *Regression, log *ChangeLog) Ticket {
	return report.ForRegression(r, log)
}

// WriteScanReport renders a scan result — funnel summary plus one ticket
// per reported regression — to w.
func WriteScanReport(w io.Writer, res *ScanResult, log *ChangeLog) error {
	return report.WriteScan(w, res, log)
}

// NewSampleSet returns an empty stack-trace sample set.
func NewSampleSet() *SampleSet { return stacktrace.NewSampleSet() }

// ReadFolded parses collapsed stack traces ("frame;frame count" lines, as
// produced by perf/pprof flame-graph tooling) into a SampleSet — the
// integration point for real profiler output.
func ReadFolded(r io.Reader) (*SampleSet, error) { return stacktrace.ReadFolded(r) }

// WriteFolded renders a SampleSet in collapsed form for flame-graph
// tooling.
func WriteFolded(w io.Writer, ss *SampleSet) error { return stacktrace.WriteFolded(w, ss) }

// ParseTrace builds a Trace from "A->B->C" notation.
func ParseTrace(s string) Trace { return stacktrace.ParseTrace(s) }

// SetFrameMetadata returns a copy of the frame annotated with metadata,
// for metadata-annotated regression detection (paper §3).
func SetFrameMetadata(f Frame, metadata string) Frame {
	return stacktrace.SetFrameMetadata(f, metadata)
}
