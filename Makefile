# FBDetect build/verify entry points. `make check` is what CI runs.
GO ?= go

.PHONY: build test vet race bench-obs check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The obs registry, the scan-trace ring buffer, and the HTTP middleware
# are all written for concurrent use; keep them honest under the race
# detector, along with the pipeline and workers that call them.
race:
	$(GO) test -race ./internal/obs/... ./internal/distributed/... ./internal/core/...

# Instrumentation-overhead benchmark (paper §6.6 discipline: the
# detector's own observability must stay under ~5% of scan cost).
bench-obs:
	$(GO) test -run - -bench BenchmarkObsOverhead -benchmem ./internal/core/

check: build vet test race
