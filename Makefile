# FBDetect build/verify entry points. `make check` is what CI runs.
GO ?= go
FUZZTIME ?= 10s
# Packages that define Fuzz* targets (go can only fuzz one package at a time).
FUZZ_PKGS = . ./internal/stacktrace ./internal/wal ./internal/pprofparse ./internal/evalharness/replay ./internal/timeseries ./internal/popshift ./internal/controlplane

.PHONY: build test vet race lint fuzz-smoke bench-obs bench bench-gate bench-baseline eval eval-gate eval-baseline eval-replay eval-replay-baseline crashtest server-smoke profdiff-demo check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The obs registry, the scan-trace ring buffer, the HTTP middleware, and
# the resilience layer (retry/breaker/hedge and their fake clock) are all
# written for concurrent use; keep them honest under the race detector,
# along with the pipeline and workers that call them. The tsdb is included
# for its zero-copy QueryView snapshots, which concurrent appends must
# never disturb.
race:
	$(GO) test -race ./internal/obs/... ./internal/distributed/... ./internal/core/... ./internal/resilience/... ./internal/tsdb/... ./internal/wal/... ./internal/evalharness/... ./internal/controlplane/...

# Static analysis. The tools are not vendored; when missing locally the
# target degrades to a notice (CI installs and enforces them).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI installs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (CI installs it)"; \
	fi

# Run every fuzz target briefly: the seeded corpus plus $(FUZZTIME) of
# randomized exploration each, so parser regressions surface in CI
# without a long dedicated fuzzing run.
fuzz-smoke:
	@for pkg in $(FUZZ_PKGS); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "fuzz $$pkg $$f"; \
			$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME) $$pkg || exit 1; \
		done; \
	done

# Instrumentation-overhead benchmark (paper §6.6 discipline: the
# detector's own observability must stay under ~5% of scan cost).
bench-obs:
	$(GO) test -run - -bench BenchmarkObsOverhead -benchmem ./internal/core/

# Scan hot-path benchmarks, gated against the committed baseline: more
# than a 20% ns/op regression on any benchmark fails the build.
# BENCH_GATE_FLAGS can relax the threshold (e.g. -threshold 0.5 on noisy
# shared runners). The tsdb append benchmarks join the run so the
# -speedup gate can require the sharded DB to beat a single-lock one by
# 2x under parallel load (only enforced at GOMAXPROCS >= 4; 1-2 core
# machines print a notice instead). Two further in-run gates are
# machine-independent and always enforced: warm checkpointed scans must
# beat the no-checkpoint control by 5x (:any — an algorithmic win, no
# cores needed), and the chunked store must hold fleet-shaped data at
# <= 2 bytes/point.
BENCH_GATE = BenchmarkPipeline$$|BenchmarkScanThroughput$$|BenchmarkScanThroughputNoCheckpoint$$|BenchmarkWarmScanIncremental$$
BENCH_TSDB = BenchmarkAppendParallel$$|BenchmarkAppendParallelSingleLock$$|BenchmarkAppendBatch$$|BenchmarkChunkAppend$$|BenchmarkChunkIterate$$
BENCH_PPROF = BenchmarkPprofParse$$
BENCH_EDIV = BenchmarkEDivisive$$|BenchmarkEDivisiveStreamAppend$$
bench-gate:
	$(GO) test -run - -bench '$(BENCH_GATE)' -benchmem -benchtime 5x . | tee BENCH_current.txt
	$(GO) test -run - -bench '$(BENCH_TSDB)' -benchmem -benchtime 5x ./internal/tsdb/ | tee -a BENCH_current.txt
	$(GO) test -run - -bench '$(BENCH_PPROF)' -benchmem -benchtime 5x ./internal/pprofparse/ | tee -a BENCH_current.txt
	$(GO) test -run - -bench '$(BENCH_EDIV)' -benchmem -benchtime 5x ./internal/edivisive/ | tee -a BENCH_current.txt
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.txt -current BENCH_current.txt \
		-speedup BenchmarkAppendParallelSingleLock:BenchmarkAppendParallel:2,BenchmarkScanThroughputNoCheckpoint:BenchmarkScanThroughput:5:any \
		-bytes-per-point BenchmarkChunkAppend:2 $(BENCH_GATE_FLAGS)

# Re-record the committed baseline (run on the reference machine after an
# intentional performance change, and commit the result).
bench-baseline:
	$(GO) test -run - -bench '$(BENCH_GATE)' -benchmem -benchtime 5x . | tee BENCH_baseline.txt
	$(GO) test -run - -bench '$(BENCH_TSDB)' -benchmem -benchtime 5x ./internal/tsdb/ | tee -a BENCH_baseline.txt
	$(GO) test -run - -bench '$(BENCH_PPROF)' -benchmem -benchtime 5x ./internal/pprofparse/ | tee -a BENCH_baseline.txt
	$(GO) test -run - -bench '$(BENCH_EDIV)' -benchmem -benchtime 5x ./internal/edivisive/ | tee -a BENCH_baseline.txt

# CI bench job: the overhead microbenchmark, the gated hot-path
# benchmarks, plus the full evaluation report written to BENCH_report.json
# for artifact upload.
bench: bench-obs bench-gate
	$(GO) run ./cmd/benchreport -skip-slow -overhead-ms 500 -json BENCH_report.json

# Ground-truth accuracy harness (see internal/evalharness). `eval` writes
# the full report; `eval-gate` additionally fails when precision, recall,
# suppression, dedup-collapse, or root-cause floors drop below the
# committed EVAL_baseline.json.
EVAL_SEED ?= 1
eval:
	$(GO) run ./cmd/fbdetect-eval -seed $(EVAL_SEED) -out EVAL_report.json

eval-gate:
	$(GO) run ./cmd/fbdetect-eval -seed $(EVAL_SEED) -out EVAL_report.json -baseline EVAL_baseline.json -gate

# Re-derive the committed accuracy floors from a fresh run (after an
# intentional detection-quality change; review and commit the result).
eval-baseline:
	$(GO) run ./cmd/fbdetect-eval -seed $(EVAL_SEED) -write-baseline EVAL_baseline.json -margin 0.1

# CI-regression replay: score the batch detector families (E-divisive,
# CUSUM, DP) against the committed Mozilla-format sample with its
# sheriff-labeled alerts, write REPLAY_report.json, and fail when any
# per-family floor in REPLAY_baseline.json is violated.
REPLAY_DATA ?= internal/evalharness/replay/testdata/mozsample
eval-replay:
	$(GO) run ./cmd/fbdetect ci -data $(REPLAY_DATA) -report REPLAY_report.json \
		-baseline REPLAY_baseline.json -gate

# Re-derive the committed replay floors (after an intentional batch
# detector change; review and commit the result).
eval-replay-baseline:
	$(GO) run ./cmd/fbdetect ci -data $(REPLAY_DATA) -write-baseline REPLAY_baseline.json -margin 0.05

# Crash-recovery drill with the real binaries: SIGKILL a durable worker
# mid-ingest, restart it, and require its recovered /scan response to be
# byte-identical to an uninterrupted control worker's.
crashtest:
	bash scripts/crashtest.sh

# Control-plane smoke drill with the real fbdetect-server binary: tenant
# registration, auth rejection, per-tenant isolation, an async backfill
# SIGKILLed mid-job and recovered from its journal, and rate-limit
# isolation between tenants. Set SMOKE_LOG_DIR to keep the server logs.
server-smoke:
	bash scripts/server_smoke.sh

# Real-profile demo: profile an actual Go workload before and after an
# injected slowdown, then require `fbdetect profdiff` to rank the slowed
# function first.
profdiff-demo:
	bash scripts/profdiff_demo.sh

check: build vet lint test race
