#!/usr/bin/env bash
# Real-profile regression demo, the CI counterpart of the profdiff golden
# test but with live runtime/pprof captures instead of committed
# fixtures:
#
#   1. run scripts/profdemo twice — once normal, once with -slow, which
#      triples the work inside main.checksum;
#   2. diff the two captures with `fbdetect profdiff`;
#   3. require main.checksum to top the regressed list.
#
# Profiler sampling is statistical, so the exact deltas vary run to run;
# the ranking must not.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

DURATION="${DURATION:-2s}"

echo "== building binaries"
go build -o "$WORK/profdemo" ./scripts/profdemo
go build -o "$WORK/fbdetect" ./cmd/fbdetect

echo "== capturing baseline profile ($DURATION)"
"$WORK/profdemo" -o "$WORK/before.pb.gz" -duration "$DURATION"
echo "== capturing slowed profile ($DURATION, checksum x3)"
"$WORK/profdemo" -o "$WORK/after.pb.gz" -duration "$DURATION" -slow

echo "== diffing"
"$WORK/fbdetect" profdiff "$WORK/before.pb.gz" "$WORK/after.pb.gz" | tee "$WORK/diff.txt"

echo "== checking that main.checksum tops the regressed list"
top_regressed="$(awk '/^regressed/{flag=1; next} flag && /^ *1\./{print $2; exit}' "$WORK/diff.txt")"
if [ "$top_regressed" != "main.checksum" ]; then
    echo "FAIL: top regressed subroutine is '$top_regressed', want main.checksum" >&2
    exit 1
fi
echo "PASS: main.checksum ranked first"
