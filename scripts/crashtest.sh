#!/usr/bin/env bash
# Crash-recovery drill with the real binaries, the CI counterpart of
# TestCrashRecoveryEquivalence.
#
# One fleetsim process generates deterministic telemetry (with an injected
# regression) and streams the identical batches to two durable workers:
#
#   control: ingests uninterrupted; its /scan response is the reference.
#   crash:   runs with fault-injected fsync delays (widening the kill
#            window), is SIGKILLed mid-stream and restarted — the client
#            retries every unacknowledged batch — then SIGKILLed again
#            (no graceful shutdown) so the state it finally serves comes
#            from WAL recovery alone.
#
# The two /scan responses must be identical modulo the worker's own name.
# (A single generation feeds both workers because the simulator is not
# bit-deterministic across process runs.)
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
trap 'kill -9 $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

CONTROL_PORT="${CONTROL_PORT:-18091}"
CRASH_PORT="${CRASH_PORT:-18092}"
HOURS=9
SCAN_REQ='{"service":"fleetsim","scan_time":"2024-08-01T09:00:00Z"}'

echo "== building binaries"
go build -o "$WORK/worker" ./cmd/fbdetect-worker
go build -o "$WORK/fleetsim" ./cmd/fleetsim

wait_up() { # port
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "worker on port $1 never came up" >&2
    return 1
}

scan() { # port outfile — normalizes the self-reported worker name
    curl -sf -X POST "http://127.0.0.1:$1/scan" -d "$SCAN_REQ" \
        | sed 's/"worker":"[^"]*"/"worker":"W"/' >"$2"
}

echo "== starting control and crash workers"
"$WORK/worker" -listen "127.0.0.1:$CONTROL_PORT" -data-dir "$WORK/control" \
    -wal-sync always -hours $HOURS &>"$WORK/control.log" &
CONTROL_PID=$!
start_crash_worker() {
    "$WORK/worker" -listen "127.0.0.1:$CRASH_PORT" -data-dir "$WORK/crash" \
        -wal-sync always -fsync-delay 40ms -hours $HOURS &>>"$WORK/crash.log" &
    CRASH_PID=$!
    wait_up "$CRASH_PORT"
}
start_crash_worker
wait_up "$CONTROL_PORT"

echo "== streaming one generation to both workers"
"$WORK/fleetsim" -hours $HOURS -stream-steps 5 -regress 2 -seed 5 \
    -stream "http://127.0.0.1:$CONTROL_PORT,http://127.0.0.1:$CRASH_PORT" \
    &>"$WORK/stream.log" &
STREAM_PID=$!
sleep 1
echo "   SIGKILL crash worker (pid $CRASH_PID) with the stream in flight"
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
start_crash_worker
echo "   restarted crash worker (pid $CRASH_PID); stream retries until acknowledged"
if ! wait "$STREAM_PID"; then
    echo "stream failed to complete after restart:" >&2
    cat "$WORK/stream.log" >&2
    exit 1
fi
cat "$WORK/stream.log"

# No graceful shutdown: the state served next comes from recovery alone.
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
start_crash_worker
grep -h "recovered" "$WORK/crash.log" | tail -1 || true

# WAL replay must land in the compressed chunked store, not a raw
# fallback: the final recovery's storage line has to report sealed chunks.
STORAGE_LINE="$(grep -h "sealed chunks" "$WORK/crash.log" | tail -1)"
echo "$STORAGE_LINE"
SEALED="$(echo "$STORAGE_LINE" | sed -n 's/.* \([0-9][0-9]*\) sealed chunks.*/\1/p')"
if [ -z "$SEALED" ] || [ "$SEALED" -eq 0 ]; then
    echo "FAIL: recovered worker reports no sealed chunks; replay did not reach chunked storage" >&2
    exit 1
fi

echo "== scanning both workers"
scan "$CONTROL_PORT" "$WORK/control.json"
scan "$CRASH_PORT" "$WORK/crash.json"
kill -9 "$CONTROL_PID" "$CRASH_PID" 2>/dev/null || true

echo "== comparing /scan responses"
if ! grep -q '"change_point_time"' "$WORK/control.json"; then
    echo "FAIL: control scan reported no regression; the drill needs a non-trivial report" >&2
    cat "$WORK/control.json"
    exit 1
fi
if ! cmp "$WORK/control.json" "$WORK/crash.json"; then
    echo "FAIL: recovered worker's scan differs from the uninterrupted control" >&2
    echo "--- control"; cat "$WORK/control.json"
    echo "--- crash";   cat "$WORK/crash.json"
    exit 1
fi
echo "PASS: recovered scan identical to uninterrupted control ($(wc -c <"$WORK/control.json") bytes)"

# ---------------------------------------------------------------------------
# Control-plane drill: SIGKILL fbdetect-server mid-operation and require the
# journaled job to be requeued on restart and run to a terminal state.
echo "== building fbdetect-server"
go build -o "$WORK/server" ./cmd/fbdetect-server

SERVER_PORT="${SERVER_PORT:-18094}"
SBASE="http://127.0.0.1:$SERVER_PORT"
ADMIN_KEY="crashtest-admin"
start_server() {
    "$WORK/server" -listen "127.0.0.1:$SERVER_PORT" -data-dir "$WORK/server-data" \
        -admin-key "$ADMIN_KEY" -wal-sync always &>>"$WORK/server.log" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "$SBASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "fbdetect-server never came up" >&2
    tail -20 "$WORK/server.log" >&2
    return 1
}

echo "== starting fbdetect-server and submitting a throttled backfill"
start_server
TENANT_KEY="$(curl -sf -X POST -H "Authorization: Bearer $ADMIN_KEY" \
    "$SBASE/admin/tenants" -d '{"name":"crashtest"}' \
    | sed 's/.*"key":"\([^"]*\)".*/\1/')"
OP_LOC="$(curl -sf -D - -o /dev/null -X POST -H "Authorization: Bearer $TENANT_KEY" \
    "$SBASE/operations" \
    -d '{"kind":"backfill","params":{"service":"svc","metric":"m","count":300,"batch":10,"throttle_ms":150}}' \
    | sed -n 's/^[Ll]ocation: *//p' | tr -d '\r')"
if [ -z "$OP_LOC" ]; then
    echo "FAIL: operation POST returned no Location" >&2
    exit 1
fi
sleep 1
echo "   SIGKILL fbdetect-server (pid $SERVER_PID) with $OP_LOC in flight"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "== restarting fbdetect-server: the journaled operation must finish"
start_server
grep -q "requeued 1 in-flight operations" "$WORK/server.log" || {
    echo "FAIL: restart did not requeue the in-flight operation" >&2
    grep recovered "$WORK/server.log" >&2 || true
    exit 1
}
DEADLINE=$((SECONDS + 60))
while :; do
    OP="$(curl -sf -H "Authorization: Bearer $TENANT_KEY" "$SBASE$OP_LOC")"
    case "$OP" in
    *'"status":"succeeded"'*) break ;;
    *'"status":"failed"'*)
        echo "FAIL: recovered operation failed: $OP" >&2
        exit 1
        ;;
    esac
    if [ "$SECONDS" -ge "$DEADLINE" ]; then
        echo "FAIL: recovered operation never reached a terminal state: $OP" >&2
        exit 1
    fi
    sleep 1
done
kill -9 "$SERVER_PID" 2>/dev/null || true
echo "PASS: SIGKILLed server requeued its journaled operation and ran it to completion"
