#!/usr/bin/env bash
# Control-plane smoke drill with the real binary, the CI counterpart of
# the internal/controlplane test suite:
#
#   1. boot fbdetect-server, register two tenants via the admin API
#   2. reject unauthenticated / wrong-key requests with 401
#   3. ingest as tenant A; prove tenant B cannot see A's series
#   4. drive a throttled async backfill to 202 + Location, poll the
#      operation honoring Retry-After
#   5. SIGKILL the server mid-job, restart it, and require the journaled
#      operation to be requeued and run to a terminal succeeded state
#      with no client involvement
#   6. prove one tenant's 429s don't touch another tenant
#
# Set SMOKE_LOG_DIR to keep the server logs (CI uploads them on failure).
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
cleanup() {
    kill -9 $(jobs -p) 2>/dev/null || true
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR"
        cp -f "$WORK"/*.log "$SMOKE_LOG_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

PORT="${SERVER_PORT:-18093}"
BASE="http://127.0.0.1:$PORT"
ADMIN_KEY="smoke-admin-key"

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "== building fbdetect-server"
go build -o "$WORK/server" ./cmd/fbdetect-server

start_server() {
    "$WORK/server" -listen "127.0.0.1:$PORT" -data-dir "$WORK/data" \
        -admin-key "$ADMIN_KEY" -wal-sync always &>>"$WORK/server.log" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "server never came up; log tail:" >&2
    tail -20 "$WORK/server.log" >&2
    return 1
}

# status METHOD PATH KEY [BODY] — prints the HTTP status code.
status() {
    local method=$1 path=$2 key=$3 body=${4:-}
    local args=(-s -o /dev/null -w '%{http_code}' -X "$method" "$BASE$path")
    [ -n "$key" ] && args+=(-H "Authorization: Bearer $key")
    [ -n "$body" ] && args+=(-d "$body")
    curl "${args[@]}"
}

echo "== starting server"
start_server

echo "== registering two tenants"
register_tenant() { # name extra-quota-json
    curl -sf -X POST -H "Authorization: Bearer $ADMIN_KEY" "$BASE/admin/tenants" \
        -d "{\"name\":\"$1\",\"quotas\":$2}"
}
A_JSON="$(register_tenant team-a '{}')"
B_JSON="$(register_tenant team-b '{"rate_per_sec":1,"burst":2}')"
A_KEY="$(echo "$A_JSON" | sed -n 's/.*"key":"\([^"]*\)".*/\1/p')"
B_KEY="$(echo "$B_JSON" | sed -n 's/.*"key":"\([^"]*\)".*/\1/p')"
[ -n "$A_KEY" ] && [ -n "$B_KEY" ] || fail "tenant registration returned no key: $A_JSON / $B_JSON"
echo "   tenants registered"

echo "== auth checks"
[ "$(status POST /ingest '' '{"metric":"web//cpu","time":"2026-08-08T12:00:00Z","value":1}')" = 401 ] \
    || fail "unauthenticated ingest not rejected with 401"
[ "$(status POST /ingest wrong-key '{"metric":"web//cpu","time":"2026-08-08T12:00:00Z","value":1}')" = 401 ] \
    || fail "wrong-key ingest not rejected with 401"
[ "$(status GET /admin/tenants "$A_KEY")" = 401 ] \
    || fail "tenant key unlocked the admin API"
echo "   401s enforced"

echo "== tenant A ingests; tenant B cannot see the series"
# Ten minutely points ending at the scan time.
NDJSON="$(for i in $(seq 0 9); do
    printf '{"metric":"web/host0/cpu","time":"2026-08-08T11:%02d:00Z","value":100}\n' $((50 + i))
done)"
[ "$(status POST /ingest "$A_KEY" "$NDJSON")" = 200 ] || fail "tenant A ingest rejected"
SCAN='{"service":"web","scan_time":"2026-08-08T12:00:00Z"}'
[ "$(status POST /scan "$B_KEY" "$SCAN")" = 404 ] \
    || fail "tenant B can scan tenant A's service (namespace leak)"
echo "   isolation holds"

echo "== async backfill: 202 + Location, then SIGKILL mid-job"
OP_RESP_HEADERS="$WORK/op-headers.txt"
OP_BODY="$(curl -sf -D "$OP_RESP_HEADERS" -X POST -H "Authorization: Bearer $A_KEY" \
    "$BASE/operations" \
    -d '{"kind":"backfill","params":{"service":"web","metric":"cpu","entity":"host1","count":300,"batch":10,"throttle_ms":150,"step_at":200,"factor":1.2}}')"
grep -q "^HTTP/.* 202" "$OP_RESP_HEADERS" || fail "operation POST did not answer 202: $(cat "$OP_RESP_HEADERS")"
LOCATION="$(sed -n 's/^[Ll]ocation: *//p' "$OP_RESP_HEADERS" | tr -d '\r')"
[ -n "$LOCATION" ] || fail "202 without Location header"
echo "   accepted: $LOCATION"

sleep 1  # let the job start (300 points / 10 per batch * 150ms ≈ 4.5s run)
RUNNING="$(curl -sf -H "Authorization: Bearer $A_KEY" "$BASE$LOCATION")"
echo "$RUNNING" | grep -q '"status":"\(pending\|running\)"' \
    || fail "operation not in flight before the kill: $RUNNING"

echo "   SIGKILL server (pid $SERVER_PID) with the backfill running"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "== restart: journaled operation must recover and finish"
start_server
grep -q "requeued 1 in-flight operations" "$WORK/server.log" \
    || fail "restart log does not report the requeued operation: $(grep recovered "$WORK/server.log" | tail -2)"

# Poll the same Location, honoring Retry-After, until terminal.
DEADLINE=$((SECONDS + 60))
while :; do
    RESP_HEADERS="$WORK/poll-headers.txt"
    OP="$(curl -sf -D "$RESP_HEADERS" -H "Authorization: Bearer $A_KEY" "$BASE$LOCATION")" \
        || fail "polling $LOCATION failed after restart"
    case "$OP" in
    *'"status":"succeeded"'*)
        echo "   operation succeeded: $(echo "$OP" | sed -n 's/.*"result":\({[^}]*}\).*/\1/p')"
        break
        ;;
    *'"status":"failed"'*)
        fail "recovered operation failed: $OP"
        ;;
    esac
    [ "$SECONDS" -lt "$DEADLINE" ] || fail "operation never reached a terminal state: $OP"
    RETRY="$(sed -n 's/^[Rr]etry-[Aa]fter: *//p' "$RESP_HEADERS" | tr -d '\r')"
    sleep "${RETRY:-1}"
done

# The recovered + re-run backfill must have landed the series durably.
[ "$(status POST /scan "$A_KEY" "$SCAN")" = 200 ] || fail "tenant A scan failed after recovery"

echo "== rate-limit isolation: B draws 429s, A keeps flowing"
PT='{"metric":"web/host0/cpu","time":"2026-08-08T12:01:00Z","value":100}'
SAW_429=0
for _ in $(seq 1 6); do
    CODE="$(curl -s -o /dev/null -D "$WORK/limit-headers.txt" -w '%{http_code}' \
        -X POST -H "Authorization: Bearer $B_KEY" "$BASE/ingest" -d "$PT")"
    if [ "$CODE" = 429 ]; then
        SAW_429=1
        grep -qi "^retry-after:" "$WORK/limit-headers.txt" \
            || fail "429 carried no Retry-After hint: $(cat "$WORK/limit-headers.txt")"
        break
    fi
done
[ "$SAW_429" = 1 ] || fail "tenant B (rate 1/s, burst 2) never drew a 429 across 6 rapid requests"
[ "$(status POST /ingest "$A_KEY" "$PT")" = 200 ] \
    || fail "tenant A rejected while tenant B is rate-limited (bucket not isolated)"
echo "   429 + Retry-After on B only"

kill -9 "$SERVER_PID" 2>/dev/null || true
echo "PASS: control-plane smoke — auth, isolation, async job crash recovery, rate limits"
