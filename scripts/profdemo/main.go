// Command profdemo is the workload for `make profdiff-demo`: a small CPU
// burner that profiles itself with runtime/pprof and writes the capture
// to -o. With -slow, the checksum function does 3x the work — the
// "regression" the demo expects `fbdetect profdiff` to catch between two
// runs of this binary.
package main

import (
	"flag"
	"log"
	"os"
	"runtime/pprof"
	"time"
)

// checksum is the demo's victim: the function whose cost -slow inflates.
//
//go:noinline
func checksum(data []byte, rounds int) uint64 {
	var h uint64 = 1469598103934665603
	for r := 0; r < rounds; r++ {
		for _, b := range data {
			h = (h ^ uint64(b)) * 1099511628211
		}
	}
	return h
}

// transform is steady-state work that must NOT move between runs.
//
//go:noinline
func transform(data []byte) {
	for i := range data {
		data[i] = data[i]*31 + 7
	}
}

func main() {
	out := flag.String("o", "cpu.pb.gz", "profile output path")
	slow := flag.Bool("slow", false, "inflate checksum's work 3x (the injected regression)")
	dur := flag.Duration("duration", 2*time.Second, "how long to run the workload")
	flag.Parse()

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	defer pprof.StopCPUProfile()

	rounds := 1
	if *slow {
		rounds = 3
	}
	data := make([]byte, 64<<10)
	var sink uint64
	for deadline := time.Now().Add(*dur); time.Now().Before(deadline); {
		transform(data)
		sink += checksum(data, rounds)
	}
	log.Printf("workload done (sink=%d, slow=%v) -> %s", sink, *slow, *out)
}
