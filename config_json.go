package fbdetect

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// jsonConfig is the on-disk representation of a detection job. Durations
// use Go syntax ("10h", "3d" is not valid Go syntax — use "72h").
type jsonConfig struct {
	Name              string  `json:"name"`
	Threshold         float64 `json:"threshold"`
	RelativeThreshold bool    `json:"relative_threshold"`
	RerunInterval     string  `json:"rerun_interval"`
	Windows           struct {
		Historic string `json:"historic"`
		Analysis string `json:"analysis"`
		Extended string `json:"extended"`
	} `json:"windows"`
	Alpha    float64 `json:"alpha"`
	LongTerm bool    `json:"long_term"`
	// Per-metric-name threshold overrides for mixed-scale metric sets.
	MetricThresholds map[string]float64 `json:"metric_thresholds"`
	MetricRelative   map[string]bool    `json:"metric_relative"`
	WentAway         struct {
		SAXBuckets         int     `json:"sax_buckets"`
		SAXValidityPct     float64 `json:"sax_validity_pct"`
		NewPatternFraction float64 `json:"new_pattern_fraction"`
		TrendCoefficient   float64 `json:"trend_coefficient"`
	} `json:"went_away"`
	Seasonality struct {
		ZThreshold float64 `json:"z_threshold"`
		Strength   float64 `json:"strength"`
	} `json:"seasonality"`
	CostShift struct {
		MaxDomainCostRatio       float64 `json:"max_domain_cost_ratio"`
		NegligibleChangeFraction float64 `json:"negligible_change_fraction"`
	} `json:"cost_shift"`
	RootCause struct {
		Lookback string  `json:"lookback"`
		MinScore float64 `json:"min_score"`
		TopK     int     `json:"top_k"`
	} `json:"root_cause"`
}

// ParseConfig reads a detection-job configuration in JSON from r.
// Unset fields keep the library defaults; the windows are required.
func ParseConfig(r io.Reader) (Config, error) {
	var jc jsonConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		return Config{}, fmt.Errorf("fbdetect: parsing config: %w", err)
	}
	cfg := Config{
		Name:              jc.Name,
		Threshold:         jc.Threshold,
		RelativeThreshold: jc.RelativeThreshold,
		Alpha:             jc.Alpha,
		LongTerm:          jc.LongTerm,
		MetricThresholds:  jc.MetricThresholds,
		MetricRelative:    jc.MetricRelative,
	}
	var err error
	parse := func(name, s string) time.Duration {
		if s == "" || err != nil {
			return 0
		}
		d, perr := time.ParseDuration(s)
		if perr != nil {
			err = fmt.Errorf("fbdetect: config field %s: %w", name, perr)
			return 0
		}
		return d
	}
	cfg.RerunInterval = parse("rerun_interval", jc.RerunInterval)
	cfg.Windows.Historic = parse("windows.historic", jc.Windows.Historic)
	cfg.Windows.Analysis = parse("windows.analysis", jc.Windows.Analysis)
	cfg.Windows.Extended = parse("windows.extended", jc.Windows.Extended)
	cfg.WentAway.SAXBuckets = jc.WentAway.SAXBuckets
	cfg.WentAway.SAXValidityPct = jc.WentAway.SAXValidityPct
	cfg.WentAway.NewPatternFraction = jc.WentAway.NewPatternFraction
	cfg.WentAway.TrendCoefficient = jc.WentAway.TrendCoefficient
	cfg.Seasonality.ZThreshold = jc.Seasonality.ZThreshold
	cfg.Seasonality.Strength = jc.Seasonality.Strength
	cfg.CostShift.MaxDomainCostRatio = jc.CostShift.MaxDomainCostRatio
	cfg.CostShift.NegligibleChangeFraction = jc.CostShift.NegligibleChangeFraction
	cfg.RootCause.Lookback = parse("root_cause.lookback", jc.RootCause.Lookback)
	cfg.RootCause.MinScore = jc.RootCause.MinScore
	cfg.RootCause.TopK = jc.RootCause.TopK
	if err != nil {
		return Config{}, err
	}
	if verr := cfg.Validate(); verr != nil {
		return Config{}, verr
	}
	return cfg, nil
}

// LoadConfig reads a detection-job configuration from a JSON file.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ParseConfig(f)
}
