package fbdetect

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// ReadCSV ingests telemetry in the CSV format cmd/fleetsim emits —
// a "time,metric,value" header followed by one row per observation, with
// RFC 3339 timestamps — into a new DB with the given step. Rows may be
// grouped per metric in any order; within a metric they are sorted by
// time before insertion.
//
// This is the file-based integration point: export your monitoring data
// in this shape and scan it offline.
func ReadCSV(r io.Reader, step time.Duration) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("fbdetect: reading CSV header: %w", err)
	}
	if header[0] != "time" || header[1] != "metric" || header[2] != "value" {
		return nil, fmt.Errorf("fbdetect: unexpected CSV header %v, want time,metric,value", header)
	}
	type point struct {
		t time.Time
		v float64
	}
	series := map[MetricID][]point{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("fbdetect: CSV line %d: %w", line, err)
		}
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("fbdetect: CSV line %d: bad timestamp: %w", line, err)
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("fbdetect: CSV line %d: bad value: %w", line, err)
		}
		id := MetricID(rec[1])
		series[id] = append(series[id], point{ts, v})
	}
	db := NewDB(step)
	// Deterministic metric order for reproducible gap-filling.
	ids := make([]MetricID, 0, len(series))
	for id := range series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pts := series[id]
		sort.Slice(pts, func(i, j int) bool { return pts[i].t.Before(pts[j].t) })
		for _, p := range pts {
			if err := db.Append(id, p.t, p.v); err != nil {
				return nil, fmt.Errorf("fbdetect: ingesting %s: %w", id, err)
			}
		}
	}
	return db, nil
}
