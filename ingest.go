package fbdetect

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// csvChunkRows is the per-metric reorder window: rows for one metric are
// buffered, time-sorted, and flushed through AppendBatch in chunks of
// this size, so ingestion memory is bounded by the window (per metric)
// rather than the whole file.
const csvChunkRows = 4096

// ReadCSV ingests telemetry in the CSV format cmd/fleetsim emits —
// a "time,metric,value" header followed by one row per observation, with
// RFC 3339 timestamps — into a new DB with the given step. Rows may be
// grouped per metric in any order; within a metric, rows are sorted by
// time inside a sliding window of csvChunkRows rows before insertion.
// Rows out of order by more than the window are an error, not a silent
// drop.
//
// Rows stream through DB.AppendBatch in chunks rather than accumulating
// in memory first, so a multi-gigabyte export ingests in bounded memory
// with one stripe-lock acquisition per chunk instead of one per row.
//
// This is the file-based integration point: export your monitoring data
// in this shape and scan it offline.
func ReadCSV(r io.Reader, step time.Duration) (*DB, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("fbdetect: reading CSV header: %w", err)
	}
	if header[0] != "time" || header[1] != "metric" || header[2] != "value" {
		return nil, fmt.Errorf("fbdetect: unexpected CSV header %v, want time,metric,value", header)
	}
	db := NewDB(step)
	chunks := map[MetricID][]Point{}
	flush := func(id MetricID) error {
		pts := chunks[id]
		if len(pts) == 0 {
			return nil
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].T.Before(pts[j].T) })
		n, err := db.AppendBatch(pts)
		if err != nil {
			return fmt.Errorf("fbdetect: ingesting %s: %w", id, err)
		}
		if n != len(pts) {
			// AppendBatch silently skips stale points (its idempotent-replay
			// contract); in a file ingest a skip means a duplicate timestamp
			// or a row reordered past the window, and must be surfaced.
			return fmt.Errorf("fbdetect: ingesting %s: %d row(s) duplicated or out of order by more than %d rows",
				id, len(pts)-n, csvChunkRows)
		}
		chunks[id] = pts[:0]
		return nil
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("fbdetect: CSV line %d: %w", line, err)
		}
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("fbdetect: CSV line %d: bad timestamp: %w", line, err)
		}
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("fbdetect: CSV line %d: bad value: %w", line, err)
		}
		id := MetricID(rec[1]) // copies out of the reused record
		chunks[id] = append(chunks[id], Point{ID: id, T: ts, V: v})
		if len(chunks[id]) >= csvChunkRows {
			if err := flush(id); err != nil {
				return nil, err
			}
		}
	}
	// Deterministic final-flush order for reproducible gap-filling.
	ids := make([]MetricID, 0, len(chunks))
	for id := range chunks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := flush(id); err != nil {
			return nil, err
		}
	}
	return db, nil
}
