// Command frontfaas simulates the paper's flagship scenario: a serverless
// platform where a code change regresses one subroutine by a tiny absolute
// amount that is nevertheless a large relative change at the subroutine
// level (paper §2), while a second change is a pure cost-shift refactoring
// that must be filtered (Figure 1(b)), and a transient load spike must not
// be reported (Figure 1(c)).
//
// It demonstrates:
//   - fleet simulation with a generated call tree and diurnal seasonality
//   - detection of the true regression with root-cause ranking
//   - filtering of the cost shift and the transient issue
//   - the Table 3-style funnel report
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"fbdetect"
)

func main() {
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))

	// A web-tier call tree with a few hundred subroutines plus two
	// hand-placed classes the scenario manipulates.
	tree := fbdetect.GenerateCallTree(rng, 200, 4)
	root := tree.Root.Name
	must(tree.AddSubroutine(root, "Feed::render", "Feed", 40))
	must(tree.AddSubroutine(root, "Feed::rank", "Feed", 40))
	must(tree.AddSubroutine(root, "serialize_response", "", 25))

	svc, err := fbdetect.NewFleetService(fbdetect.FleetConfig{
		Name:           "frontfaas",
		Servers:        100000,
		Step:           time.Minute,
		SamplesPerStep: 500000, // fleet-wide samples per minute
		BaseCPU:        0.55,
		CPUNoise:       0.08,
		SeasonalAmp:    0.05,
		SeasonalPeriod: 24 * time.Hour,
		BaseThroughput: 2e6,
		Tree:           tree,
		Seed:           11,
		// Emit only the interesting subroutines plus a sample of others to
		// keep the demo fast.
		EmitSubroutines: emitList(tree, 40,
			"Feed::render", "Feed::rank", "serialize_response"),
	})
	if err != nil {
		log.Fatal(err)
	}

	var changes fbdetect.ChangeLog

	// 1. The true regression: serialize_response gets 8% more expensive.
	svc.ScheduleChange(fbdetect.ScheduledChange{
		At: start.Add(7 * time.Hour),
		Effect: func(tr *fbdetect.CallTree) error {
			return tr.ScaleSelfWeight("serialize_response", 1.08)
		},
		Record: &fbdetect.Change{
			ID:          "D1001",
			Title:       "switch serialize_response to the new encoder",
			Description: "rolls out the v2 wire encoder for response serialization",
			Subroutines: []string{"serialize_response"},
		},
	})

	// 2. The cost shift: rendering work moves from Feed::rank into
	// Feed::render with no total change (Figure 1(b)).
	svc.ScheduleChange(fbdetect.ScheduledChange{
		At: start.Add(7 * time.Hour),
		Effect: func(tr *fbdetect.CallTree) error {
			return tr.ShiftWeight("Feed::rank", "Feed::render", 20)
		},
		Record: &fbdetect.Change{
			ID:          "D1002",
			Title:       "move ranking annotations into render",
			Description: "pure refactor: hoists annotation work from rank to render",
			Subroutines: []string{"Feed::rank", "Feed::render"},
		},
	})

	// 3. A transient load spike that recovers (Figure 1(c)).
	svc.ScheduleIssue(fbdetect.DefaultIssue(fbdetect.LoadSpike,
		start.Add(6*time.Hour), 30*time.Minute))

	db := fbdetect.NewDB(time.Minute)
	end := start.Add(9 * time.Hour)
	fmt.Println("simulating 9h of a 100k-server serverless platform...")
	if err := svc.Run(db, &changes, start, end); err != nil {
		log.Fatal(err)
	}

	cfg := fbdetect.FrontFaaSSmall()
	// The demo compresses Table 1's multi-day windows into hours so it
	// runs in seconds; thresholds keep their meaning.
	cfg.Windows = fbdetect.WindowConfig{
		Historic: 5 * time.Hour,
		Analysis: 3 * time.Hour,
		Extended: time.Hour,
	}
	cfg.Threshold = 0.0005

	det, err := fbdetect.NewDetector(cfg, db, &changes, fbdetect.FleetSamples(svc, 2e6))
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Scan("frontfaas", end)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- funnel (Table 3 style) ---")
	f := res.Funnel
	fmt.Printf("change points:        %d\n", f.ChangePoints)
	fmt.Printf("after went-away:      %d\n", f.AfterWentAway)
	fmt.Printf("after seasonality:    %d\n", f.AfterSeasonality)
	fmt.Printf("after threshold:      %d\n", f.AfterThreshold)
	fmt.Printf("after same-merger:    %d\n", f.AfterSameMerger)
	fmt.Printf("after SOM dedup:      %d\n", f.AfterSOMDedup)
	fmt.Printf("after cost shift:     %d\n", f.AfterCostShift)
	fmt.Printf("reported (pairwise):  %d\n", f.AfterPairwise)

	fmt.Println("\n--- reported regressions ---")
	for _, r := range res.Reported {
		fmt.Printf("%s\n", r)
		for i, rc := range r.RootCauses {
			c := changes.ByID(rc.ChangeID)
			title := "?"
			if c != nil {
				title = c.Title
			}
			fmt.Printf("  root cause #%d: %s (%q) score=%.2f attribution=%.0f%%\n",
				i+1, rc.ChangeID, title, rc.Score, rc.Attribution*100)
		}
	}
	if len(res.Reported) == 0 {
		fmt.Println("(none)")
	}
}

// emitList returns the named subroutines plus a deterministic sample of n
// others from the tree.
func emitList(tree *fbdetect.CallTree, n int, named ...string) []string {
	all := tree.Subroutines()
	sort.Strings(all)
	out := append([]string{}, named...)
	stride := len(all) / n
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(all) && len(out) < n+len(named); i += stride {
		out = append(out, all[i])
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
