// Command quickstart is the minimal FBDetect example: ingest a metric time
// series into the store, scan it, and print the detected regression.
//
// It simulates a subroutine whose gCPU steps from 1.00% to 1.05% midway —
// a 0.05% absolute (5% relative) regression — with realistic sampling
// noise, then runs the detector with a 0.02% threshold.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fbdetect"
)

func main() {
	const step = time.Minute
	db := fbdetect.NewDB(step)
	metric := fbdetect.ID("myservice", "render_feed", "gcpu")

	// Ingest 9 hours of data: 5h baseline at 1.00% gCPU, then a
	// regression to 1.05% for the remaining 4 hours.
	rng := rand.New(rand.NewSource(42))
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	regressionAt := start.Add(7 * time.Hour)
	for t := start; t.Before(start.Add(9 * time.Hour)); t = t.Add(step) {
		mean := 0.0100
		if !t.Before(regressionAt) {
			mean = 0.0105
		}
		v := mean + rng.NormFloat64()*0.0002
		if err := db.Append(metric, t, v); err != nil {
			log.Fatal(err)
		}
	}

	det, err := fbdetect.NewDetector(fbdetect.Config{
		Threshold: 0.0002, // 0.02% absolute gCPU
		Windows: fbdetect.WindowConfig{
			Historic: 5 * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
	}, db, nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	res, err := det.Scan("myservice", start.Add(9*time.Hour))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("change points detected: %d\n", res.Funnel.ChangePoints)
	fmt.Printf("regressions reported:   %d\n", len(res.Reported))
	for _, r := range res.Reported {
		fmt.Printf("  %s\n", r)
		fmt.Printf("    before %.4f%%  after %.4f%%  (injected change was at %s)\n",
			r.Before*100, r.After*100, regressionAt.Format(time.RFC3339))
	}
	if len(res.Reported) == 0 {
		fmt.Println("no regression found — try a lower threshold")
	}
}
