// Command pyperf demonstrates the PyPerf end-to-end stack reconstruction
// of paper §4 (Figure 5): a simulated CPython process whose native stack
// shows only _PyEval_EvalFrameDefault for Python-level calls is merged
// with the interpreter's virtual call stack, yielding a precise stack that
// names Python functions AND the native C libraries they invoke — the
// detail Python-level profilers like Scalene approximate away.
//
// It then runs the sampler against a "live" workload alternating between
// two code paths and prints the resulting gCPU profile.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"fbdetect"
)

func main() {
	// --- Figure 5 walkthrough ---
	proc := fbdetect.PyProcess{
		NativeStack: []string{
			"_start", "main", "Py_RunMain",
			fbdetect.PyEvalFrameSymbol, // maps to handle_request
			"call_function",
			fbdetect.PyEvalFrameSymbol, // maps to compress_payload
			"cfunction_call",
			"zlib_compress", "deflate_fast",
		},
		VCSHead: fbdetect.BuildVCS("handle_request", "compress_payload"),
	}
	merged, err := fbdetect.MergeStack(proc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged end-to-end stack (root -> leaf):")
	for i, frame := range merged {
		fmt.Printf("  %s%s\n", strings.Repeat("  ", i), frame)
	}

	// --- live sampling over an alternating workload ---
	var phase atomic.Int64
	target := func() fbdetect.PyProcess {
		if phase.Load()%3 == 0 {
			// One third of the time: the compression path.
			return proc
		}
		return fbdetect.PyProcess{
			NativeStack: []string{
				"_start", "main", "Py_RunMain",
				fbdetect.PyEvalFrameSymbol, // handle_request
				fbdetect.PyEvalFrameSymbol, // render_template
			},
			VCSHead: fbdetect.BuildVCS("handle_request", "render_template"),
		}
	}
	sampler := fbdetect.NewPySampler(500*time.Microsecond, target)
	sampler.Start()
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		phase.Add(1)
		time.Sleep(100 * time.Microsecond)
	}
	sampler.Stop()

	ss := fbdetect.NewSampleSet()
	for _, folded := range sampler.Stacks() {
		frames := strings.Split(folded, ";")
		tr := make(fbdetect.Trace, len(frames))
		for i, f := range frames {
			tr[i] = fbdetect.Frame{Subroutine: f}
		}
		ss.Add(tr, 1)
	}
	fmt.Printf("\ncaptured %d samples (%d dropped to interpreter races)\n",
		sampler.Count(), sampler.Dropped())
	fmt.Println("gCPU profile from samples:")
	for _, sub := range []string{"handle_request", "render_template", "compress_payload", "zlib_compress"} {
		fmt.Printf("  %-18s %5.1f%%\n", sub, ss.GCPU(sub)*100)
	}
	fmt.Println("\nnote: zlib_compress (a C library) is attributed precisely —")
	fmt.Println("Python-level profilers can only lump it into compress_payload.")
}
