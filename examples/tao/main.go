// Command tao reproduces the paper's TAO workload (§3): FBDetect monitors
// the graph database's per-data-type I/O from upstream serverless
// platforms. A client code change that starts issuing 40% more reads for
// one data type is a per-data-type I/O regression; overall query
// throughput barely moves, so only subroutine/data-type-level monitoring
// catches it.
package main

import (
	"fmt"
	"log"
	"time"

	"fbdetect"
)

func main() {
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	const step = time.Minute

	store := fbdetect.NewTAOStore()
	wl, err := fbdetect.NewTAOWorkload(fbdetect.TAOWorkloadConfig{
		Service: "tao",
		Step:    step,
		Mixes: []fbdetect.TAOTypeMix{
			{DataType: "user", ReadsPerStep: 400, WritesPerStep: 40},
			{DataType: "post", ReadsPerStep: 300, WritesPerStep: 60},
			{DataType: "comment", ReadsPerStep: 2500, WritesPerStep: 250},
			{DataType: "like", ReadsPerStep: 1800, WritesPerStep: 400},
		},
		RateNoise: 0.02,
		Objects:   5000,
		Seed:      3,
	}, store)
	if err != nil {
		log.Fatal(err)
	}

	// The regression: a PythonFaaS change begins re-reading "post"
	// objects on every request — +40% reads for one data type.
	changeAt := start.Add(7 * time.Hour)
	wl.ScheduleMixEvent(fbdetect.TAOMixEvent{
		At: changeAt, DataType: "post", ReadFactor: 1.4,
	})

	var changes fbdetect.ChangeLog
	changes.Record(&fbdetect.Change{
		ID:          "D-cache-bypass",
		Kind:        fbdetect.CodeChange,
		Service:     "tao",
		Title:       "bypass post cache for freshness",
		Description: "fetch post objects directly from tao instead of the edge cache",
		DeployedAt:  changeAt,
	})

	db := fbdetect.NewDB(step)
	end := start.Add(9 * time.Hour)
	fmt.Println("driving the TAO graph store for 9 simulated hours...")
	if err := wl.Run(db, start, end); err != nil {
		log.Fatal(err)
	}
	counts := store.TypeCounts()
	fmt.Printf("store executed %d object gets and %d assoc ranges for 'post'\n",
		counts["post"][0], counts["post"][3])

	det, err := fbdetect.NewDetector(fbdetect.Config{
		Threshold:         0.1, // 10% relative
		RelativeThreshold: true,
		Windows: fbdetect.WindowConfig{
			Historic: 5 * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
		// No stack samples exist for I/O series, so root-cause ranking
		// relies on text similarity and deploy-time correlation alone;
		// lower the confidence bar accordingly.
		RootCause: fbdetect.RootCauseConfig{MinScore: 0.15},
	}, db, &changes, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Scan("tao", end)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchange points: %d, reported: %d\n",
		res.Funnel.ChangePoints, len(res.Reported))
	for _, r := range res.Reported {
		fmt.Printf("  %s\n", r)
		for _, rc := range r.RootCauses {
			fmt.Printf("    suspect: %s (score %.2f)\n", rc.ChangeID, rc.Score)
		}
	}
	// Show that total throughput alone would have hidden the per-type
	// regression.
	thr, _ := db.Full(fbdetect.ID("tao", "", "throughput"))
	cp := thr.IndexOf(changeAt)
	before, after := mean(thr.Values[:cp]), mean(thr.Values[cp:])
	fmt.Printf("\ntotal throughput moved only %+.1f%% — the per-data-type series made the 40%% regression visible\n",
		(after-before)/before*100)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
