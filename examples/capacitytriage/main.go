// Command capacitytriage reproduces the paper's Capacity Triage workload
// (§3): Kraken probes a service's per-server maximum throughput, and
// FBDetect watches for supply-side regressions (max throughput drops) and
// demand-side regressions (total peak requests rise) with the 5% relative
// thresholds of Table 1's CT rows.
//
// Because FBDetect treats increases as regressions, the supply series is
// monitored as "capacity pressure" (reference/value), which rises when
// capacity drops.
package main

import (
	"fmt"
	"log"
	"time"

	"fbdetect"
)

func main() {
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	const step = time.Hour

	ct, err := fbdetect.NewKrakenService(fbdetect.KrakenConfig{
		Name: "adfinder",
		Step: step,
		Server: fbdetect.ServerModel{
			Capacity:    1200,
			BaseLatency: 8 * time.Millisecond,
		},
		PeakDemand:  4.2e6,
		DemandNoise: 0.01,
		Prober: fbdetect.Prober{
			LatencySLO:  80 * time.Millisecond,
			JitterSigma: 0.01,
		},
		Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Supply regression: a runtime upgrade costs 8% capacity midway
	// through what will be the scan's analysis window (day 8.25 of 10).
	ct.ScheduleCapacityEvent(fbdetect.CapacityEvent{
		At: start.Add(8*24*time.Hour + 6*time.Hour), Factor: 0.92,
	})
	// Demand regression: a client bug inflates retry traffic shortly
	// after.
	ct.ScheduleDemandEvent(fbdetect.DemandEvent{
		At: start.Add(8*24*time.Hour + 10*time.Hour), Factor: 1.12,
	})

	rawDB := fbdetect.NewDB(step)
	end := start.Add(10 * 24 * time.Hour)
	fmt.Println("probing max throughput hourly for 10 days (Kraken)...")
	if err := ct.Run(rawDB, start, end); err != nil {
		log.Fatal(err)
	}

	// Re-derive monitorable series: capacity pressure (rises on supply
	// loss) and peak demand (rises on demand regressions).
	monDB := fbdetect.NewDB(step)
	supply, err := rawDB.Full(fbdetect.ID("adfinder", "", "max_throughput"))
	if err != nil {
		log.Fatal(err)
	}
	reference := supply.Values[0]
	for i, v := range supply.Values {
		t := supply.TimeAt(i)
		pressure := reference / v
		if err := monDB.Append(fbdetect.ID("adfinder", "", "capacity_pressure"), t, pressure); err != nil {
			log.Fatal(err)
		}
	}
	demand, err := rawDB.Full(fbdetect.ID("adfinder", "", "peak_demand"))
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range demand.Values {
		if err := monDB.Append(fbdetect.ID("adfinder", "", "peak_demand"), demand.TimeAt(i), v); err != nil {
			log.Fatal(err)
		}
	}

	cfg := fbdetect.CTSupplyShort() // 5% relative, 7d/1d/1d windows
	det, err := fbdetect.NewDetector(cfg, monDB, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Scan("adfinder", end)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchange points: %d, reported: %d\n",
		res.Funnel.ChangePoints, len(res.Reported))
	for _, r := range res.Reported {
		kind := "demand-side"
		if r.Name == "capacity_pressure" {
			kind = "supply-side"
		}
		fmt.Printf("  [%s] %s\n", kind, r)
	}
	if len(res.Reported) == 0 {
		fmt.Println("(none reported)")
	}
}
