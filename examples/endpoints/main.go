// Command endpoints demonstrates endpoint-level regression detection
// (paper §3): an endpoint request spans multiple subroutines across
// threads, and its aggregate cost is monitored alongside subroutine gCPU.
// The scenario regresses one subroutine used by /feed/home, detects the
// endpoint-level regression, and shows the endpoint-prefix cost domain
// filtering a handler split that merely moved cost between sibling
// endpoints.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fbdetect"
)

func main() {
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	const step = time.Minute

	root := &fbdetect.CallNode{Name: "main", SelfWeight: 1, Children: []*fbdetect.CallNode{
		{Name: "feed_rank", SelfWeight: 12},
		{Name: "feed_render", SelfWeight: 18},
		{Name: "profile_load", SelfWeight: 10},
		{Name: "ads_mix", SelfWeight: 8},
		{Name: "story_a", SelfWeight: 9},
		{Name: "story_b", SelfWeight: 3},
	}}
	tree, err := fbdetect.NewCallTree(root)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := fbdetect.NewFleetService(fbdetect.FleetConfig{
		Name:           "web",
		Servers:        20000,
		Step:           step,
		SamplesPerStep: 0, // endpoint-only scenario
		BaseCPU:        0.5,
		BaseThroughput: 1e5,
		Tree:           tree,
		Seed:           4,
	})
	if err != nil {
		log.Fatal(err)
	}

	endpoints := []fbdetect.EndpointSpec{
		{Name: "/feed/home", Subroutines: []string{"feed_rank", "feed_render"}, CostNoise: 0.01},
		{Name: "/feed/profile", Subroutines: []string{"profile_load", "feed_render"}, CostNoise: 0.01},
		{Name: "/story/a", Subroutines: []string{"story_a"}, CostNoise: 0.01},
		{Name: "/story/b", Subroutines: []string{"story_b"}, CostNoise: 0.01},
		{Name: "/ads", Subroutines: []string{"ads_mix"}, CostNoise: 0.01},
	}

	changeAt := start.Add(7 * time.Hour)
	// True endpoint regression: feed_rank slows by 25%, raising
	// /feed/home's aggregate cost.
	svc.ScheduleChange(fbdetect.ScheduledChange{
		At:     changeAt,
		Effect: func(tr *fbdetect.CallTree) error { return tr.ScaleSelfWeight("feed_rank", 1.25) },
	})
	// Handler split an hour earlier: work moves from story_a to story_b;
	// /story/b "regresses" but the /story prefix-domain total is
	// unchanged. (Deployed at a different time than the feed change so
	// PairwiseDedup does not fold the two events into one group.)
	svc.ScheduleChange(fbdetect.ScheduledChange{
		At:     changeAt.Add(-time.Hour),
		Effect: func(tr *fbdetect.CallTree) error { return tr.ShiftWeight("story_a", "story_b", 4) },
	})

	db := fbdetect.NewDB(step)
	end := start.Add(9 * time.Hour)
	fmt.Println("emitting endpoint cost series for 9 simulated hours...")
	if err := svc.EmitEndpoints(db, endpoints, start, end); err != nil {
		log.Fatal(err)
	}

	// Show the tracing machinery that produces endpoint costs in
	// production: aggregate cross-thread spans for /feed/home.
	rng := rand.New(rand.NewSource(9))
	agg := fbdetect.NewTraceAggregator()
	for _, tr := range svc.GenerateTraces(rng, endpoints[0], end.Add(-time.Minute), 100) {
		if err := agg.Record(tr); err != nil {
			log.Fatal(err)
		}
	}
	for _, st := range agg.Snapshot() {
		fmt.Printf("traced %s: %d requests, mean cost %v across %d subroutines\n",
			st.Endpoint, st.Requests, st.MeanCPU.Round(time.Microsecond), len(st.Subroutines))
	}

	cfg := fbdetect.Config{
		Threshold:         0.05, // 5% relative endpoint cost
		RelativeThreshold: true,
		Windows: fbdetect.WindowConfig{
			Historic: 5 * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
	}
	det, err := fbdetect.NewDetector(cfg, db, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Scan("web", end)
	if err != nil {
		log.Fatal(err)
	}

	f := res.Funnel
	fmt.Printf("\nchange points: %d, after SOMDedup: %d, after cost-shift: %d\n",
		f.ChangePoints, f.AfterSOMDedup, f.AfterCostShift)
	for _, r := range res.Reported {
		fmt.Printf("  REPORTED %s\n", r)
	}
	if f.AfterSOMDedup > f.AfterCostShift {
		fmt.Printf("\nthe /story/b handler split was filtered inside the pipeline's "+
			"cost-shift stage (%d candidate(s) removed): its /story prefix-domain "+
			"total was unchanged\n", f.AfterSOMDedup-f.AfterCostShift)
	}
	// The same check is available standalone for ad-hoc investigation:
	for _, id := range db.Metrics("web") {
		_, entity, name := id.Parts()
		if entity != "endpoint:/story/b" || name != "endpoint_cost" {
			continue
		}
		r := &fbdetect.Regression{Service: "web", Entity: entity, Name: name,
			Metric: id, ChangePointTime: changeAt.Add(-time.Hour), Delta: 4, Relative: 1.3}
		v := fbdetect.CheckEndpointCostShift(cfg.CostShift, db, r, cfg.Windows, end)
		fmt.Printf("standalone check on %s: cost shift = %v (domain %s)\n",
			id, v.IsCostShift, v.Domain)
	}
}
