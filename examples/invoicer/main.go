// Command invoicer reproduces the paper's small-service scenario (§3):
// Invoicer runs on just 16 servers, so FBDetect samples aggressively (one
// stack per server per second instead of per minute) and uses long
// windows (14d/1d/1d) to accumulate enough data to detect 0.5% gCPU
// regressions. The demo compresses the windows but keeps the
// high-sampling/small-fleet structure, injecting a 0.6% regression and
// showing it caught.
package main

import (
	"fmt"
	"log"
	"time"

	"fbdetect"
)

func main() {
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

	root := &fbdetect.CallNode{Name: "main", SelfWeight: 2, Children: []*fbdetect.CallNode{
		{Name: "generate_invoice", SelfWeight: 30, Children: []*fbdetect.CallNode{
			{Name: "Tax::compute", Class: "Tax", SelfWeight: 12},
			{Name: "Tax::lookup_rates", Class: "Tax", SelfWeight: 8},
			{Name: "render_pdf", SelfWeight: 25},
		}},
		{Name: "billing_sync", SelfWeight: 23},
	}}
	tree, err := fbdetect.NewCallTree(root)
	if err != nil {
		log.Fatal(err)
	}

	// 16 servers, 1 sample/server/second, aggregated into 10-minute
	// buckets => 9600 samples per step. Aggregating is how a tiny fleet
	// accumulates enough samples per point (paper §3: Invoicer's high
	// sampling rate plus long windows).
	svc, err := fbdetect.NewFleetService(fbdetect.FleetConfig{
		Name:           "invoicer",
		Servers:        16,
		Step:           10 * time.Minute,
		SamplesPerStep: 16 * 600,
		BaseCPU:        0.35,
		CPUNoise:       0.15, // small fleets are noisy
		BaseThroughput: 120,
		Tree:           tree,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}

	var changes fbdetect.ChangeLog
	// render_pdf regresses: gCPU(render_pdf) = 0.25 rises ~2% relative,
	// about a 0.5% absolute gCPU change — right at Invoicer's threshold.
	svc.ScheduleChange(fbdetect.ScheduledChange{
		At: start.Add(30 * time.Hour),
		Effect: func(tr *fbdetect.CallTree) error {
			return tr.ScaleSelfWeight("render_pdf", 1.035)
		},
		Record: &fbdetect.Change{
			ID:          "D55",
			Title:       "embed fonts in rendered PDFs",
			Description: "render_pdf now embeds the full font set",
			Subroutines: []string{"render_pdf"},
		},
	})

	db := fbdetect.NewDB(10 * time.Minute)
	end := start.Add(40 * time.Hour)
	fmt.Println("simulating 40h of the 16-server Invoicer service...")
	if err := svc.Run(db, &changes, start, end); err != nil {
		log.Fatal(err)
	}

	cfg := fbdetect.InvoicerShort()
	// Compress 14d/1d/1d to 28h/8h/4h for the demo.
	cfg.Windows = fbdetect.WindowConfig{
		Historic: 28 * time.Hour,
		Analysis: 8 * time.Hour,
		Extended: 4 * time.Hour,
	}

	det, err := fbdetect.NewDetector(cfg, db, &changes, fbdetect.FleetSamples(svc, 1e5))
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Scan("invoicer", end)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchange points: %d, reported: %d\n",
		res.Funnel.ChangePoints, len(res.Reported))
	for _, r := range res.Reported {
		fmt.Printf("  %s\n", r)
		for _, rc := range r.RootCauses {
			fmt.Printf("    suspect %s (score %.2f)\n", rc.ChangeID, rc.Score)
		}
	}
	if len(res.Reported) == 0 {
		fmt.Println("nothing detected — the regression is at the detection floor " +
			"for a 16-server fleet; rerun with a longer analysis window")
	}
}
