package fbdetect

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"testing"
	"time"

	"fbdetect/internal/tsdb"
)

// TestHelperIngestWorker is not a test: when re-exec'd by
// TestCrashRecoveryEquivalence with FBDETECT_INGEST_HELPER=1 it becomes a
// durable ingest server — a WAL-backed store with fsync-before-ack
// (WALSyncAlways) behind POST /ingest — that runs until the parent kills
// it. A small injected fsync delay widens the window in which a SIGKILL
// lands mid-write, which is exactly the case recovery must absorb.
func TestHelperIngestWorker(t *testing.T) {
	if os.Getenv("FBDETECT_INGEST_HELPER") != "1" {
		t.Skip("helper process for TestCrashRecoveryEquivalence")
	}
	store, err := OpenDurableStore(os.Getenv("FBDETECT_HELPER_DIR"), time.Minute,
		WALOptions{Sync: WALSyncAlways, FsyncDelay: 2 * time.Millisecond})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", os.Getenv("FBDETECT_HELPER_ADDR"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	http.Serve(ln, NewIngestHandler(store, IngestOptions{}))
	os.Exit(0) // unreachable: the parent SIGKILLs us
}

// crashTestFleet builds the deterministic service used on both sides of
// the equivalence check. Two calls produce byte-identical telemetry.
func crashTestFleet(t *testing.T) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tree := GenerateCallTree(rng, 12, 3)
	svc, err := NewFleetService(FleetConfig{
		Name: "crashsvc", Servers: 100, Step: time.Minute,
		SamplesPerStep: 1000, BaseCPU: 0.5, CPUNoise: 0.05,
		BaseThroughput: 2000, Tree: tree, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.ScheduleChange(ScheduledChange{
		At:     crashT0.Add(4 * time.Hour),
		Effect: func(tr *CallTree) error { return tr.ScaleSelfWeight(tree.Subroutines()[3], 1.3) },
	})
	db := NewDB(time.Minute)
	if err := svc.Run(db, nil, crashT0, crashT0.Add(6*time.Hour)); err != nil {
		t.Fatal(err)
	}
	return db
}

var crashT0 = time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)

// dbBatches splits db into per-time-window point batches, the shape a
// streaming client sends.
func dbBatches(t *testing.T, db *DB, stepsPerBatch int) [][]Point {
	t.Helper()
	ids := db.Metrics("")
	steps := 0
	for _, id := range ids {
		s, err := db.Full(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() > steps {
			steps = s.Len()
		}
	}
	var batches [][]Point
	for lo := 0; lo < steps; lo += stepsPerBatch {
		var pts []Point
		for _, id := range ids {
			s, _ := db.Full(id)
			for i := lo; i < lo+stepsPerBatch && i < s.Len(); i++ {
				pts = append(pts, Point{ID: id, T: s.TimeAt(i), V: s.Values[i]})
			}
		}
		batches = append(batches, pts)
	}
	return batches
}

// startHelper launches (or relaunches) the ingest helper over dir and
// waits until it accepts connections.
func startHelper(t *testing.T, dir, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperIngestWorker$")
	cmd.Env = append(os.Environ(),
		"FBDETECT_INGEST_HELPER=1",
		"FBDETECT_HELPER_DIR="+dir,
		"FBDETECT_HELPER_ADDR="+addr,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("helper never came up on " + addr)
	return nil
}

// scanReport runs an identically-configured detection scan over db and
// returns the marshaled result — the unit of equivalence.
func scanReport(t *testing.T, db *DB) []byte {
	t.Helper()
	det, err := NewDetector(Config{
		Threshold: 0.001,
		Windows:   WindowConfig{Historic: 3 * time.Hour, Analysis: 2 * time.Hour, Extended: 30 * time.Minute},
	}, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Scan("crashsvc", crashT0.Add(6*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrashRecoveryEquivalence is the durability contract end to end: a
// client streams a deterministic fleet through /ingest to a WAL-backed
// server; the server is SIGKILLed mid-stream (with a batch in flight) and
// restarted; the client re-sends everything not acknowledged. The
// recovered store must then be byte-identical to an uninterrupted copy of
// the same telemetry — same series, same values, and the same marshaled
// scan report.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash test re-execs the binary; skipped in -short")
	}
	source := crashTestFleet(t)
	batches := dbBatches(t, source, 10)
	if len(batches) < 10 {
		t.Fatalf("only %d batches; too few to crash mid-stream", len(batches))
	}
	// The control is the uninterrupted run: the same batches applied
	// in-process, no crash — and stored raw (uncompressed), so the
	// comparison also proves WAL replay into the default chunked store
	// decodes bit-for-bit against an uncompressed copy.
	control := tsdb.NewWithOptions(time.Minute, tsdb.Options{ChunkSize: tsdb.RawChunks})
	for _, b := range batches {
		if _, err := control.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := startHelper(t, dir, addr)
	defer func() {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	client := NewIngestClient("http://"+addr, nil,
		ScanRetryPolicy{MaxAttempts: 2, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond})
	killAt := len(batches) / 2
	killed := false
	for i := 0; i < len(batches); i++ {
		if i == killAt && !killed {
			// SIGKILL while this batch is in flight: fire the kill
			// concurrently with the send so it can land mid-write. The
			// fsync delay in the helper keeps that window open.
			go func() {
				time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
				cmd.Process.Kill()
			}()
		}
		_, err := client.Send(context.Background(), batches[i])
		if err != nil {
			if killed || i < killAt {
				t.Fatalf("batch %d failed with no crash pending: %v", i, err)
			}
			// The crash. Whether batch i (or even earlier unflushed sends)
			// was acknowledged is unknowable from here — so restart the
			// server and re-send from one batch before the failure; the
			// idempotent store absorbs the overlap.
			killed = true
			cmd.Wait()
			cmd = startHelper(t, dir, addr)
			if i > 0 {
				i -= 2 // retry i-1 and i
			} else {
				i--
			}
			continue
		}
	}
	if !killed {
		// The kill raced ahead of the send budget and every batch landed
		// before it. Extremely unlikely; the run is still valid but the
		// crash path wasn't exercised.
		t.Log("warning: all batches acknowledged before the kill landed")
	}

	// Final SIGKILL: recovery must work from the WAL alone, with no
	// graceful shutdown or snapshot.
	cmd.Process.Kill()
	cmd.Wait()
	cmd = nil

	recovered, err := OpenDurableStore(dir, time.Minute, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()

	wantIDs := control.Metrics("")
	gotIDs := recovered.DB.Metrics("")
	if len(wantIDs) != len(gotIDs) {
		t.Fatalf("recovered %d series, want %d", len(gotIDs), len(wantIDs))
	}
	// The recovered store must actually be the compressed one: enough
	// data went through to seal chunks.
	if ss := recovered.DB.StorageStats(); ss.SealedChunks == 0 {
		t.Fatalf("recovered store sealed no chunks (stats %+v); replay did not exercise chunked storage", ss)
	}
	for _, id := range wantIDs {
		want, err := control.Full(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := recovered.DB.Full(id)
		if err != nil {
			t.Fatalf("series %s missing after recovery: %v", id, err)
		}
		if !got.Start.Equal(want.Start) || got.Len() != want.Len() {
			t.Fatalf("series %s shape: got start=%s len=%d, want start=%s len=%d",
				id, got.Start, got.Len(), want.Start, want.Len())
		}
		for i := range want.Values {
			// NaN payload bits are not preserved by the wire format (every
			// NaN travels as "NaN"); any-NaN equals any-NaN.
			if math.IsNaN(want.Values[i]) && math.IsNaN(got.Values[i]) {
				continue
			}
			if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
				t.Fatalf("series %s diverges at %d: got %v, want %v", id, i, got.Values[i], want.Values[i])
			}
		}
	}

	wantReport := scanReport(t, control)
	gotReport := scanReport(t, recovered.DB)
	if string(wantReport) != string(gotReport) {
		t.Fatalf("scan reports differ after recovery:\ncontrol:   %s\nrecovered: %s", wantReport, gotReport)
	}
}
