package fbdetect

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"fbdetect/internal/distributed"
	"fbdetect/internal/pprofparse"
	"fbdetect/internal/tsdb"
)

// profileSink wires a ProfilesHandler over a fresh in-memory store, the
// serving shape of a durable worker's POST /profiles.
func profileSink(t *testing.T, opts distributed.ProfilesOptions) (*tsdb.DB, *httptest.Server) {
	t.Helper()
	db := tsdb.New(time.Minute)
	srv := httptest.NewServer(distributed.NewProfilesHandler(db, opts))
	t.Cleanup(srv.Close)
	return db, srv
}

func postProfile(t *testing.T, url, service string, at time.Time, contentType string, body []byte) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s?service=%s&time=%s", url, service,
		at.UTC().Format(time.RFC3339)), contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /profiles at %s: status %d", at, resp.StatusCode)
	}
}

//go:noinline
func burnCPU(n int) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += float64(i%7) / float64(i%13+1)
	}
	return s
}

// TestRealProfileRoundTrip captures an actual runtime/pprof CPU profile
// of this test binary, uploads it through POST /profiles exactly as a
// production profiler sidecar would, and checks the hot function arrived
// in the TSDB as a gCPU series — the paper's in-production monitoring
// loop, minus the fleet.
func TestRealProfileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profiling here: %v", err)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		burnCPU(1 << 16)
	}
	pprof.StopCPUProfile()

	// Sanity: the capture itself must contain samples (a starved CI
	// machine may deliver none; that is an environment problem, not a
	// pipeline one).
	p, err := pprofparse.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("runtime/pprof output did not parse: %v", err)
	}
	if len(p.Samples) == 0 {
		t.Skip("CPU profiler delivered no samples on this machine")
	}

	db, srv := profileSink(t, distributed.ProfilesOptions{})
	at := time.Date(2024, 8, 1, 9, 0, 0, 0, time.UTC)
	postProfile(t, srv.URL, "realsvc", at, "application/octet-stream", buf.Bytes())

	if db.Len() == 0 {
		t.Fatal("no series materialized from a real profile")
	}
	s, err := db.Full(ID("realsvc", "fbdetect.burnCPU", "gcpu"))
	if err != nil {
		t.Fatalf("hot function missing from the store (have %d series): %v", db.Len(), err)
	}
	if s.Len() != 1 || s.Values[0] <= 0 || s.Values[0] > 1 {
		t.Fatalf("burnCPU gCPU series = %v, want one value in (0, 1]", s.Values)
	}
	if !s.Start.Equal(at) {
		t.Fatalf("series starts %v, want the explicit upload time %v", s.Start, at)
	}
}

// syntheticProfile renders one minute's folded capture of a small
// service. victimWeight is app.victim's sample count out of ~10000;
// jitter perturbs every bucket so the series carry realistic noise.
func syntheticProfile(rng *rand.Rand, victimWeight int) []byte {
	jitter := func(n int) int { return n + rng.Intn(n/20+1) - n/40 }
	var sb strings.Builder
	fmt.Fprintf(&sb, "app.main;app.handler;app.render %d\n", jitter(3000))
	fmt.Fprintf(&sb, "app.main;app.handler;app.render;app.victim %d\n", jitter(victimWeight))
	fmt.Fprintf(&sb, "app.main;app.handler;app.fetch %d\n", jitter(2500))
	fmt.Fprintf(&sb, "app.main;app.gc %d\n", jitter(800))
	fmt.Fprintf(&sb, "app.main;app.idle %d\n", jitter(10000-3000-2500-800-victimWeight))
	return []byte(sb.String())
}

// TestProfilesToDetectionEndToEnd drives the whole front door: nine hours
// of minute-by-minute profile uploads with a subroutine slowdown injected
// two hours before the end, then a detector scan over the ingested gCPU
// series. The injected victim must be reported at subroutine granularity
// with roughly the injected delta.
func TestProfilesToDetectionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("540 profile uploads")
	}
	db, srv := profileSink(t, distributed.ProfilesOptions{})
	rng := rand.New(rand.NewSource(7))

	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(9 * time.Hour)
	changeAt := end.Add(-2 * time.Hour)
	for at := start; at.Before(end); at = at.Add(time.Minute) {
		weight := 800 // victim at ~8% gCPU
		if !at.Before(changeAt) {
			weight = 1200 // slowdown: ~12%
		}
		postProfile(t, srv.URL, "prodsvc", at, "text/plain", syntheticProfile(rng, weight))
	}

	det, err := NewDetector(Config{
		Threshold: 0.001,
		Windows: WindowConfig{
			Historic: 5 * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
	}, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Scan("prodsvc", end)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reported) == 0 {
		t.Fatalf("nothing reported; funnel: %+v", res.Funnel)
	}
	// The victim must survive every filter stage at subroutine
	// granularity. Its regressed ancestors (app.render, app.handler — the
	// same 4% propagates up the inclusive gCPU of the whole call chain)
	// legitimately detect too, and PairwiseDedup folds the chain into one
	// reported group; the victim is acceptable either as the group's
	// representative or as a member of a reported group.
	var victim *Regression
	for _, r := range res.Reported {
		if r.Entity == "app.victim" {
			victim = r
		}
	}
	if victim == nil {
		for _, g := range det.Groups() {
			var hasReported bool
			for _, m := range g.Members {
				for _, r := range res.Reported {
					if m == r {
						hasReported = true
					}
				}
			}
			if !hasReported {
				continue
			}
			for _, m := range g.Members {
				if m.Entity == "app.victim" {
					victim = m
				}
			}
		}
	}
	if victim == nil {
		var got []string
		for _, r := range res.Reported {
			got = append(got, r.Entity)
		}
		t.Fatalf("injected app.victim slowdown neither reported nor grouped with a report; reported entities: %v, groups: %d",
			got, len(det.Groups()))
	}
	if victim.Delta < 0.02 || victim.Delta > 0.06 {
		t.Errorf("victim delta = %v, want ~0.04 (8%% -> 12%% gCPU)", victim.Delta)
	}
	if gap := victim.ChangePointTime.Sub(changeAt); gap < -30*time.Minute || gap > 30*time.Minute {
		t.Errorf("change point located at %v, want within 30m of %v", victim.ChangePointTime, changeAt)
	}
}
