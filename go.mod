module fbdetect

go 1.22
