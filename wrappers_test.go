package fbdetect

// Tests for the thin public wrappers: each must round-trip to its
// internal implementation.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTicketForAndWriteScanReport(t *testing.T) {
	db := NewDB(time.Minute)
	metric := ID("svc", "sub", "gcpu")
	start := testStart
	for i := 0; i < 540; i++ {
		v := 0.01
		if i >= 420 {
			v = 0.012
		}
		db.Append(metric, start.Add(time.Duration(i)*time.Minute), v)
	}
	det, err := NewDetector(Config{
		Threshold: 0.0005,
		Windows: WindowConfig{
			Historic: 5 * time.Hour, Analysis: 3 * time.Hour, Extended: time.Hour,
		},
	}, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Scan("svc", start.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reported) == 0 {
		t.Fatal("no report to render")
	}
	ticket := TicketFor(res.Reported[0], nil)
	if !strings.Contains(ticket.Title, "svc/sub") {
		t.Errorf("ticket title = %q", ticket.Title)
	}
	var buf bytes.Buffer
	if err := WriteScanReport(&buf, res, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[fbdetect]") {
		t.Error("scan report missing ticket")
	}
}

func TestWriteFoldedPublic(t *testing.T) {
	ss := NewSampleSet()
	ss.Add(ParseTrace("a->b"), 2)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, ss); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFolded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.GCPU("b") != 1 {
		t.Errorf("round trip gCPU = %v", back.GCPU("b"))
	}
}

func TestNewPySamplerPublic(t *testing.T) {
	s := NewPySampler(time.Millisecond, func() PyProcess {
		return PyProcess{
			NativeStack: []string{"_start", PyEvalFrameSymbol},
			VCSHead:     BuildVCS("main_py"),
		}
	})
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	if s.Count() == 0 {
		t.Error("sampler captured nothing")
	}
}

func TestNewXenonRuntimePublic(t *testing.T) {
	rt, err := NewXenonRuntime(4, 0.8, []XenonRequestType{{
		Name: "feed", TrafficShare: 1,
		Phases: []XenonPhase{{Stack: ParseTrace("main->feed"), Weight: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rt == nil {
		t.Fatal("nil runtime")
	}
}

func TestDomainDetectorConstructors(t *testing.T) {
	if NewMetadataDomains() == nil {
		t.Error("nil metadata domains")
	}
	var log ChangeLog
	if NewCommitDomains(&log, time.Hour) == nil {
		t.Error("nil commit domains")
	}
}

func TestTraceAggregatorPublic(t *testing.T) {
	agg := NewTraceAggregator()
	err := agg.Record(&RequestTrace{
		TraceID: "t", Endpoint: "/x",
		Spans: []TraceSpan{{Subroutine: "s", CPU: time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap := agg.Snapshot(); len(snap) != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestCheckEndpointCostShiftPublic(t *testing.T) {
	db := NewDB(time.Minute)
	r := &Regression{}
	v := CheckEndpointCostShift(CostShiftConfig{}, db, r,
		WindowConfig{Historic: time.Hour, Analysis: time.Hour}, testStart)
	if v.IsCostShift {
		t.Error("empty inputs flagged")
	}
}

func TestCorroborateWithCanaryPublic(t *testing.T) {
	r := &Regression{Delta: 0.01, Relative: 0.1, ChangePointTime: testStart}
	r.Metric = ID("s", "e", "gcpu")
	c := CanaryResult{Regressed: true, Relative: 0.1, At: testStart}
	if score := CorroborateWithCanary(r, c, time.Hour); score < 0.9 {
		t.Errorf("score = %v", score)
	}
}

func TestCanaryAnalyzerPublic(t *testing.T) {
	ctrl := []float64{10, 10, 10, 10, 10, 10}
	can := []float64{12, 12, 12, 12, 12, 12.1}
	res, err := (CanaryAnalyzer{}).Compare("cpu", testStart, ctrl, can)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed {
		t.Errorf("canary regression missed: %+v", res)
	}
}

func TestLoadConfigFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	content := `{"threshold": 0.001, "windows": {"historic": "10h", "analysis": "2h"}}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Threshold != 0.001 {
		t.Errorf("threshold = %v", cfg.Threshold)
	}
}

func TestScanWorkerAndCoordinatorPublic(t *testing.T) {
	db := NewDB(time.Minute)
	det, err := NewDetector(Config{
		Threshold: 0.1,
		Windows:   WindowConfig{Historic: time.Hour, Analysis: time.Hour},
	}, db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if NewScanWorker("w", det) == nil {
		t.Error("nil worker")
	}
	if _, err := NewScanCoordinator(nil, nil); err == nil {
		t.Error("empty coordinator accepted")
	}
	if c, err := NewScanCoordinator([]string{"http://x"}, nil); err != nil || c == nil {
		t.Errorf("coordinator: %v", err)
	}
}
