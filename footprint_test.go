package fbdetect

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestFleetStorageFootprint pins the headline storage number: 36 hours
// of quantized fleet telemetry must fit the chunked store at no more than
// 2 bytes per point — the ceiling the bench gate also enforces — versus
// 8 bytes raw. Quantized gCPU series pack as scaled integers; the few
// unquantized service-level series (cpu, throughput) ride along at XOR
// cost and are included in the average.
func TestFleetStorageFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := GenerateCallTree(rng, 60, 3)
	svc, err := NewFleetService(FleetConfig{
		Name: "dense", Servers: 2000, Step: time.Minute,
		SamplesPerStep: 1e4, // 5 samples/server/step: a production profiler rate
		BaseCPU:        0.5, CPUNoise: 0.05,
		BaseThroughput: 1e4, Tree: tree, Seed: 3,
		QuantizeSamples: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(time.Minute)
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	if err := svc.Run(db, nil, start, start.Add(36*time.Hour)); err != nil {
		t.Fatal(err)
	}
	ss := db.StorageStats()
	if ss.SealedChunks == 0 || ss.Points == 0 {
		t.Fatalf("degenerate store: %+v", ss)
	}
	bpp := ss.BytesPerPoint()
	t.Logf("storage: %d series, %d points, %d sealed chunks, %.3f bytes/point",
		ss.Series, ss.Points, ss.SealedChunks, bpp)
	if bpp > 2 {
		t.Errorf("fleet telemetry costs %.3f bytes/point, ceiling is 2", bpp)
	}

	// Every gcpu value must sit exactly on the 1e-4 grid (SamplesPerStep
	// 1e4): quantization differs from the unquantized value by at most
	// half a grid cell and never produces anything finer.
	for _, id := range db.Metrics("dense") {
		if _, _, metric := id.Parts(); metric != "gcpu" {
			continue // service-level series are intentionally unquantized
		}
		s, err := db.Full(id)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range s.Values {
			if math.Round(v*1e4)/1e4 != v {
				t.Fatalf("%s[%d] = %v is off the quantization grid", id, i, v)
			}
		}
	}
}
