package fbdetect_test

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"fbdetect"
)

// Example demonstrates the minimal detection loop: ingest a gCPU series
// with a mid-series regression and scan it.
func Example() {
	db := fbdetect.NewDB(time.Minute)
	metric := fbdetect.ID("svc", "render", "gcpu")
	rng := rand.New(rand.NewSource(1))
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 540; i++ {
		mean := 0.010
		if i >= 420 { // regression in the analysis window
			mean = 0.011
		}
		db.Append(metric, start.Add(time.Duration(i)*time.Minute),
			mean+rng.NormFloat64()*0.0002)
	}
	det, _ := fbdetect.NewDetector(fbdetect.Config{
		Threshold: 0.0005,
		Windows: fbdetect.WindowConfig{
			Historic: 5 * time.Hour,
			Analysis: 3 * time.Hour,
			Extended: time.Hour,
		},
	}, db, nil, nil)
	res, _ := det.Scan("svc", start.Add(9*time.Hour))
	for _, r := range res.Reported {
		fmt.Printf("%s/%s: %.2f%% -> %.2f%%\n", r.Service, r.Entity, r.Before*100, r.After*100)
	}
	// Output:
	// svc/render: 1.00% -> 1.10%
}

// ExampleMergeStack reconstructs an end-to-end Python stack (paper
// Figure 5).
func ExampleMergeStack() {
	p := fbdetect.PyProcess{
		NativeStack: []string{
			"_start", fbdetect.PyEvalFrameSymbol, fbdetect.PyEvalFrameSymbol, "zlib_compress",
		},
		VCSHead: fbdetect.BuildVCS("handle", "compress"),
	}
	merged, _ := fbdetect.MergeStack(p)
	fmt.Println(strings.Join(merged, ";"))
	// Output:
	// _start;handle;compress;zlib_compress
}

// ExampleReadFolded ingests collapsed profiler output and queries gCPU.
func ExampleReadFolded() {
	folded := "main;render;encode 8\nmain;fetch 12\n"
	ss, _ := fbdetect.ReadFolded(strings.NewReader(folded))
	fmt.Printf("gCPU(render) = %.0f%%\n", ss.GCPU("render")*100)
	// Output:
	// gCPU(render) = 40%
}

// ExampleSampleSet_GCPUGroup computes a cost domain's total, used by
// cost-shift analysis.
func ExampleSampleSet_GCPUGroup() {
	ss := fbdetect.NewSampleSet()
	ss.Add(fbdetect.ParseTrace("main->Cache::get"), 3)
	ss.Add(fbdetect.ParseTrace("main->Cache::put"), 1)
	ss.Add(fbdetect.ParseTrace("main->other"), 6)
	domain := map[string]bool{"Cache::get": true, "Cache::put": true}
	fmt.Printf("class domain cost = %.0f%%\n", ss.GCPUGroup(domain)*100)
	// Output:
	// class domain cost = 40%
}
