package fbdetect

import (
	"strings"
	"testing"
	"time"
)

// TestProductionReplay is the repository's soak test: three days of three
// concurrently simulated systems — a serverless web tier with stack
// sampling, a TAO graph store with per-data-type I/O, and a Capacity
// Triage target probed by Kraken — scanned continuously by monitors.
// Each injected regression must be reported (exactly once per underlying
// event), transients must not be, and a clean control service must stay
// silent.
func TestProductionReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day multi-service replay")
	}
	start := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	const step = 5 * time.Minute
	end := start.Add(3 * 24 * time.Hour)
	db := NewDB(step)
	var changes ChangeLog

	// --- web tier with stack sampling ---
	webTree, err := NewCallTree(&CallNode{Name: "main", SelfWeight: 1, Children: []*CallNode{
		{Name: "router", SelfWeight: 5, Children: []*CallNode{
			{Name: "Feed::rank", Class: "Feed", SelfWeight: 20},
			{Name: "Feed::render", Class: "Feed", SelfWeight: 30},
		}},
		{Name: "serialize", SelfWeight: 25},
		{Name: "compress", SelfWeight: 19},
	}})
	if err != nil {
		t.Fatal(err)
	}
	web, err := NewFleetService(FleetConfig{
		Name: "web", Servers: 50000, Step: step,
		SamplesPerStep: 4e5, BaseCPU: 0.55, CPUNoise: 0.08,
		SeasonalAmp: 0.05, SeasonalPeriod: 24 * time.Hour,
		BaseThroughput: 2e5, Tree: webTree, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	webChangeAt := start.Add(60 * time.Hour)
	web.ScheduleChange(ScheduledChange{
		At:     webChangeAt,
		Effect: func(tr *CallTree) error { return tr.ScaleSelfWeight("serialize", 1.2) },
		Record: &Change{ID: "D-web", Title: "serializer rewrite", Subroutines: []string{"serialize"}},
	})
	// Cost shift inside the Feed class at a different time.
	web.ScheduleChange(ScheduledChange{
		At:     start.Add(40 * time.Hour),
		Effect: func(tr *CallTree) error { return tr.ShiftWeight("Feed::rank", "Feed::render", 10) },
		Record: &Change{ID: "D-refactor", Title: "move ranking into render",
			Subroutines: []string{"Feed::rank", "Feed::render"}},
	})
	// A drumbeat of transient issues.
	for at := start.Add(3 * time.Hour); at.Before(end); at = at.Add(9 * time.Hour) {
		web.ScheduleIssue(DefaultIssue(LoadSpike, at, 40*time.Minute))
	}
	if err := web.Run(db, &changes, start, end); err != nil {
		t.Fatal(err)
	}

	// --- clean control service: nothing should ever be reported ---
	ctrlTree, err := NewCallTree(&CallNode{Name: "main", SelfWeight: 1, Children: []*CallNode{
		{Name: "work", SelfWeight: 49},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewFleetService(FleetConfig{
		Name: "control", Servers: 5000, Step: step,
		SamplesPerStep: 1e5, BaseCPU: 0.4, CPUNoise: 0.06,
		BaseThroughput: 1e4, Tree: ctrlTree, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Run(db, nil, start, end); err != nil {
		t.Fatal(err)
	}

	// --- TAO with a per-data-type I/O regression ---
	store := NewTAOStore()
	taoWl, err := NewTAOWorkload(TAOWorkloadConfig{
		Service: "tao", Step: step,
		Mixes: []TAOTypeMix{
			{DataType: "user", ReadsPerStep: 500, WritesPerStep: 50},
			{DataType: "post", ReadsPerStep: 800, WritesPerStep: 100},
		},
		RateNoise: 0.02, Objects: 2000, Seed: 47,
	}, store)
	if err != nil {
		t.Fatal(err)
	}
	taoChangeAt := start.Add(58 * time.Hour)
	taoWl.ScheduleMixEvent(TAOMixEvent{At: taoChangeAt, DataType: "user", ReadFactor: 1.3})
	if err := taoWl.Run(db, start, end); err != nil {
		t.Fatal(err)
	}

	// --- detection: one pipeline per platform ---
	cfg := Config{
		Threshold: 0.0005,
		Windows: WindowConfig{
			Historic: 36 * time.Hour,
			Analysis: 8 * time.Hour,
			Extended: 4 * time.Hour,
		},
	}
	webDet, err := NewDetector(cfg, db, &changes, FleetSamples(web, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	webMon, err := NewMonitor(webDet, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	webMon.Watch("web")
	webMon.Watch("control")
	if err := webMon.RunVirtual(start.Add(cfg.Windows.Total()), end); err != nil {
		t.Fatal(err)
	}

	taoCfg := cfg
	taoCfg.Threshold = 0.1
	taoCfg.RelativeThreshold = true
	taoDet, err := NewDetector(taoCfg, db, &changes, nil)
	if err != nil {
		t.Fatal(err)
	}
	taoMon, err := NewMonitor(taoDet, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	taoMon.Watch("tao")
	if err := taoMon.RunVirtual(start.Add(cfg.Windows.Total()), end); err != nil {
		t.Fatal(err)
	}

	// --- assertions ---
	webReports := webMon.Reports()
	serializeReports, costShiftReports, controlReports := 0, 0, 0
	for _, r := range webReports {
		switch {
		case r.Service == "control":
			controlReports++
		case r.Entity == "serialize" || r.Entity == "main":
			serializeReports++
			// Root cause must rank the true change first.
			if len(r.RootCauses) > 0 && r.RootCauses[0].ChangeID != "D-web" {
				t.Errorf("top root cause = %s, want D-web", r.RootCauses[0].ChangeID)
			}
		case strings.HasPrefix(r.Entity, "Feed::"):
			costShiftReports++
		}
	}
	if serializeReports == 0 {
		t.Error("web serializer regression never reported")
	}
	if serializeReports > 2 {
		t.Errorf("web regression over-reported %d times", serializeReports)
	}
	if costShiftReports != 0 {
		t.Errorf("Feed cost shift reported %d times", costShiftReports)
	}
	if controlReports != 0 {
		t.Errorf("clean control service reported %d regressions", controlReports)
	}

	taoReports := taoMon.Reports()
	userIO := 0
	for _, r := range taoReports {
		if r.Entity == "type:user" && r.Name == "reads_per_step" {
			userIO++
		}
		if r.Entity == "type:post" {
			t.Errorf("unchanged data type reported: %v", r)
		}
	}
	if userIO == 0 {
		t.Error("TAO per-data-type I/O regression never reported")
	}
	if userIO > 2 {
		t.Errorf("TAO regression over-reported %d times", userIO)
	}

	// The funnel must show substantial filtering given the transients.
	funnel, scans := webMon.Stats()
	if scans < 10 {
		t.Errorf("scans = %d", scans)
	}
	if funnel.ChangePoints < 5 {
		t.Errorf("suspiciously few change points: %+v", funnel)
	}
	if funnel.AfterPairwise*3 > funnel.ChangePoints {
		t.Errorf("funnel barely filtered: %+v", funnel)
	}
}
